//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this small vendored crate re-implements exactly the surface the workspace
//! uses: [`rngs::StdRng`] (seeded via [`SeedableRng::seed_from_u64`]), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`]. The generator is a from-scratch
//! xoshiro256** with splitmix64 seeding — deterministic per seed, fast, and
//! emphatically **not** cryptographic. Streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12); every consumer in this workspace only
//! relies on per-seed determinism, not on a specific stream.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform bits; for
/// floats, uniform in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is far below anything the workloads can observe.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * f64::sample(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (subset: only [`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (subset: shuffle and choose).

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i: i32 = rng.gen_range(-64..96);
            assert!((-64..96).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 40_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) produced {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
        assert!(v.choose(&mut rng).is_some());
    }
}
