//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of proptest this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait implemented for ranges and tuples,
//! `prop::collection::vec`,
//! `prop_filter_map`/`prop_map` combinators, the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` attribute, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs via
//!   the normal assertion message;
//! * **deterministic seeding** — each test derives its RNG seed from its
//!   function name, so failures are reproducible across runs;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of returning
//!   `Err(TestCaseError)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

/// The RNG passed to strategies; a deterministic `StdRng`.
pub type TestRng = StdRng;

/// Derives a deterministic RNG for a named property test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use super::TestRng;
    use rand::Rng;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters-and-maps generated values through `f`, regenerating until
        /// `f` returns `Some` (up to an attempt bound).
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 10000 candidates in a row: {}",
                self.whence
            )
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A fixed value as a (degenerate) strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy generating `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors of values from `element`, with a length uniform in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from real proptest.

    pub use super::collection;
    pub use super::strategy;
}

pub mod prelude {
    //! Common imports: `use proptest::prelude::*;`.

    pub use super::prop;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry point; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assertion macro; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion macro; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, u32)> {
        (0..10u32, 0..10u32).prop_filter_map(
            "distinct",
            |(a, b)| if a == b { None } else { Some((a, b)) },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_generate_in_bounds(x in 3..9u32, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0..100u32, 1..17)) {
            prop_assert!(!v.is_empty() && v.len() < 17);
        }

        #[test]
        fn filter_map_filters(p in pair_strategy()) {
            prop_assert_ne!(p.0, p.1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0..5usize) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn seeding_is_per_test_deterministic() {
        let mut a = crate::rng_for("foo");
        let mut b = crate::rng_for("foo");
        let mut c = crate::rng_for("bar");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
