//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`Bencher::iter`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock harness instead of criterion's statistical machinery.
//!
//! Each benchmark is warmed up once, then timed over `sample_size` samples of
//! an adaptively chosen iteration count. The mean time per iteration (and
//! derived throughput, when configured) is printed in a criterion-like,
//! greppable format:
//!
//! ```text
//! group/name              time: 12.345 µs/iter   thrpt: 4.05 Melem/s
//! ```

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Total time spent inside `iter` routines.
    elapsed: Duration,
    /// Total number of iterations executed.
    iterations: u64,
    /// Iterations to run per `iter` call (chosen by the harness).
    batch: u64,
}

impl Bencher {
    /// Times `routine`, running it a harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.batch;
    }
}

/// Per-target measurement settings, shared by groups and bare functions.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            throughput: None,
            measurement_time: Duration::from_millis(500),
        }
    }
}

fn run_target<F: FnMut(&mut Bencher)>(label: &str, settings: &Settings, mut routine: F) {
    // Warm-up / calibration pass: one iteration, to size the batches.
    let mut bencher = Bencher {
        batch: 1,
        ..Default::default()
    };
    routine(&mut bencher);
    if bencher.iterations == 0 {
        // The routine never called `iter`; nothing to measure.
        println!("{label:<48} time: <no iterations>");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let time_budget = settings.measurement_time.as_secs_f64();
    let total_iters = (time_budget / per_iter.max(1e-9)).clamp(1.0, 1e7) as u64;
    let batch = (total_iters / settings.sample_size as u64).max(1);

    let mut measured = Bencher {
        batch,
        ..Default::default()
    };
    for _ in 0..settings.sample_size {
        routine(&mut measured);
    }
    let secs_per_iter = measured.elapsed.as_secs_f64() / measured.iterations.max(1) as f64;
    let time_str = format_time(secs_per_iter);
    match settings.throughput {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / secs_per_iter;
            println!(
                "{label:<48} time: {time_str}/iter   thrpt: {}/s",
                format_count(eps)
            );
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 / secs_per_iter;
            println!(
                "{label:<48} time: {time_str}/iter   thrpt: {}B/s",
                format_count(bps)
            );
        }
        None => println!("{label:<48} time: {time_str}/iter"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.settings.measurement_time = time;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_target(&label, &self.settings, routine);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_target(&label, &self.settings, |b| routine(b, input));
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            name: name.to_string(),
            settings,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let settings = self.settings.clone();
        run_target(id, &settings, routine);
        self
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &p| {
            b.iter(|| p * 2)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(black_box(5), 5);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
        assert!(format_count(5e9).contains('G'));
        assert!(format_count(5e6).contains('M'));
    }
}
