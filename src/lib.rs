//! Repository-level umbrella package.
//!
//! This package exists to anchor the workspace's integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library lives
//! in the [`dyndens`] facade crate and the `crates/` workspace members it
//! re-exports.

pub use dyndens;
