//! Sharded real-time story identification: parallel ingest across shard
//! workers, non-blocking story serving from the merged view.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example sharded_stories
//! ```
//!
//! The same planted-story simulator as `story_identification` feeds a
//! `ShardedStoryPipeline`: posts are turned into edge weight updates on the
//! ingest thread and routed to per-shard DynDens engines, while story reads
//! come from the sequence-numbered `StoryView` without stalling ingest. A
//! second phase pushes a partition-aligned synthetic stream through raw
//! `ShardedDynDens` fleets at 1/2/4 shards to show the ingest scaling and
//! the exactness of the partitioned answer.

use std::time::Instant;

use dyndens::prelude::*;
use dyndens::stream::{ChiSquareCorrelation, ShardedStoryPipeline};
use dyndens::workloads::{TweetSimulator, TweetSimulatorConfig};

fn main() {
    posts_through_sharded_pipeline();
    scaling_on_aligned_stream();
}

fn posts_through_sharded_pipeline() {
    let config = TweetSimulatorConfig {
        n_posts: 20_000,
        n_background_entities: 300,
        ..TweetSimulatorConfig::default()
    };
    let corpus = TweetSimulator::new(config.clone()).generate();
    println!(
        "phase 1: {} simulated posts over {:.1} hours through a 4-shard story pipeline\n",
        corpus.posts.len(),
        config.duration / 3600.0,
    );

    let mut pipeline = ShardedStoryPipeline::new(
        ChiSquareCorrelation::default(),
        2.0 * 3600.0,
        AvgWeight,
        DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.25),
        ShardConfig::new(4).with_max_batch(64),
    );

    // A serving handle that could live on another thread: reads never block
    // the ingest path.
    let view = pipeline.view();

    let checkpoints = [0.5, 1.0];
    let mut next_checkpoint = 0;
    for (i, post) in corpus.posts.iter().enumerate() {
        let names: Vec<String> = corpus.registry.describe(post.entities.iter().copied());
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        pipeline.ingest(post.timestamp, &name_refs);

        let progress = (i + 1) as f64 / corpus.posts.len() as f64;
        if next_checkpoint < checkpoints.len() && progress >= checkpoints[next_checkpoint] {
            // Non-blocking read: whatever the shards have published so far.
            let merged = view.snapshot();
            println!(
                "=== snapshot at {:.1}h: seq {} (per shard {:?}), {} stories tracked ===",
                post.timestamp / 3600.0,
                merged.seq,
                merged.per_shard_seq,
                merged.output_dense_total,
            );
            for (rank, story) in pipeline.top_stories_latest(5).iter().enumerate() {
                println!(
                    "    {}. [density {:.2}] {}",
                    rank + 1,
                    story.density,
                    story.entities.join(", ")
                );
            }
            println!();
            next_checkpoint += 1;
        }
    }

    pipeline.flush();
    let stats = view.stats();
    let (positive, negative) = pipeline.generator().update_counts();
    println!("stream statistics (merged across shards):");
    println!(
        "    posts ingested:        {}",
        pipeline.generator().posts_seen()
    );
    println!(
        "    edge updates routed:   {} positive, {negative} negative",
        positive
    );
    println!("    stories reported now:  {}", pipeline.story_count());
    println!(
        "    engine work: {} updates, {} explorations, {} subgraphs inserted\n",
        stats.updates, stats.explorations, stats.subgraphs_inserted
    );
}

fn scaling_on_aligned_stream() {
    let updates = dyndens_bench_stream(50_000);
    println!("phase 2: 50k partition-aligned updates through raw ShardedDynDens fleets");

    let engine_config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
    let mut baseline: Option<(f64, usize)> = None;
    for n_shards in [1usize, 2, 4] {
        let mut fleet = ShardedDynDens::new(
            AvgWeight,
            engine_config.clone(),
            ShardConfig::new(n_shards)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(128)
                .with_channel_capacity(4096),
        );
        let start = Instant::now();
        for chunk in updates.chunks(512) {
            fleet.apply_batch(chunk);
        }
        fleet.flush();
        let secs = start.elapsed().as_secs_f64();
        let stories = fleet.output_dense_count();
        let (base_secs, base_stories) = *baseline.get_or_insert((secs, stories));
        assert_eq!(
            stories, base_stories,
            "partition-aligned sharding must be lossless"
        );
        println!(
            "    {n_shards} shard(s): {:>8.0} updates/s ({:.2}x), {} output-dense subgraphs",
            updates.len() as f64 / secs,
            base_secs / secs,
            stories,
        );
    }
}

/// A small local copy of the partition-aligned generator's contract (the
/// full-featured one lives in `dyndens-bench`): planted communities drawn
/// from congruence classes mod 4, per-pair weights capped below the
/// too-dense regime.
fn dyndens_bench_stream(n_updates: usize) -> Vec<EdgeUpdate> {
    const ALIGNMENT: u32 = 4;
    let mut state: u64 = 0x9E37_79B9_97F4_A7C1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let groups: Vec<Vec<u32>> = (0..24u32)
        .map(|g| {
            (0..4)
                .map(|i| (g * 8 + i) * ALIGNMENT + g % ALIGNMENT)
                .collect()
        })
        .collect();
    let mut weights = std::collections::HashMap::new();
    let mut updates = Vec::with_capacity(n_updates);
    while updates.len() < n_updates {
        let group = &groups[(next() % groups.len() as u64) as usize];
        let a = group[(next() % group.len() as u64) as usize];
        let b = group[(next() % group.len() as u64) as usize];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let current: f64 = weights.get(&key).copied().unwrap_or(0.0);
        let magnitude = 0.02 + (next() % 1000) as f64 / 10_000.0;
        let delta = if next() % 100 < 15 {
            if current <= 0.0 {
                continue;
            }
            -magnitude.min(current)
        } else {
            magnitude.min(1.45 - current)
        };
        if delta.abs() < 1e-9 {
            continue;
        }
        weights.insert(key, current + delta);
        updates.push(EdgeUpdate::new(VertexId(key.0), VertexId(key.1), delta));
    }
    updates
}
