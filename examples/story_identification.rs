//! End-to-end real-time story identification over a simulated post stream.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p dyndens --example story_identification
//! ```
//!
//! A planted-story tweet simulator stands in for the live social media feed
//! (the paper's Twitter sample is not redistributable). Posts flow through the
//! full pipeline — entity registry, decayed co-occurrence counters, the
//! chi-square + correlation association measure, and the DynDens engine — and
//! the current top stories are printed at a few checkpoints during the
//! simulated day, illustrating how the late-breaking "raid" story overtakes
//! the morning's stories in real time.

use dyndens::prelude::*;
use dyndens::stream::{ChiSquareCorrelation, StoryPipeline};
use dyndens::workloads::{TweetSimulator, TweetSimulatorConfig};

fn main() {
    let config = TweetSimulatorConfig {
        n_posts: 40_000,
        n_background_entities: 400,
        ..TweetSimulatorConfig::default()
    };
    let corpus = TweetSimulator::new(config.clone()).generate();
    println!(
        "simulated corpus: {} posts over {:.1} hours, {} entities, {} planted stories\n",
        corpus.posts.len(),
        config.duration / 3600.0,
        corpus.registry.len(),
        config.stories.len(),
    );

    // The story pipeline: 2-hour mean post life, average-edge-weight density,
    // stories of up to 5 entities with density at least 0.4.
    let mut pipeline = StoryPipeline::new(
        ChiSquareCorrelation::default(),
        2.0 * 3600.0,
        AvgWeight,
        DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.25),
    );

    let checkpoints = [0.25, 0.5, 0.75, 1.0];
    let mut next_checkpoint = 0;
    for (i, post) in corpus.posts.iter().enumerate() {
        // Re-resolve the post through the pipeline's own registry so names and
        // vertices stay consistent.
        let names: Vec<String> = corpus.registry.describe(post.entities.iter().copied());
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        pipeline.ingest(post.timestamp, &name_refs);

        let progress = (i + 1) as f64 / corpus.posts.len() as f64;
        if next_checkpoint < checkpoints.len() && progress >= checkpoints[next_checkpoint] {
            let hour = post.timestamp / 3600.0;
            println!("=== top stories at {hour:.1}h ({} posts seen) ===", i + 1);
            let stories = pipeline.top_stories(5);
            if stories.is_empty() {
                println!("    (no story clears the density threshold yet)");
            }
            for (rank, story) in stories.iter().enumerate() {
                println!(
                    "    {}. [density {:.2}] {}",
                    rank + 1,
                    story.density,
                    story.entities.join(", ")
                );
            }
            println!();
            next_checkpoint += 1;
        }
    }

    let (positive, negative) = pipeline.generator().update_counts();
    println!("stream statistics:");
    println!(
        "    posts ingested:        {}",
        pipeline.generator().posts_seen()
    );
    println!("    positive edge updates: {positive}");
    println!("    negative edge updates: {negative}");
    println!("    stories currently reported: {}", pipeline.story_count());
    let stats = pipeline.engine().stats();
    println!(
        "    engine work: {} explorations, {} cheap explorations, {} subgraphs inserted",
        stats.explorations, stats.cheap_explorations, stats.subgraphs_inserted
    );
}
