//! A remote story reader: connects to a running `story_server` example,
//! mirrors its story sets by following `Poll` deltas, and periodically
//! prints the merged top stories with entity names.
//!
//! Run (while `story_server` is up):
//!
//! ```bash
//! cargo run --release --example story_client                      # 127.0.0.1:7171
//! cargo run --release --example story_client -- 127.0.0.1:9000 10
//! ```
//!
//! Arguments: `[server_addr] [watch_seconds]` (defaults `127.0.0.1:7171`,
//! 10 seconds). This is the out-of-process counterpart of holding a
//! `StoryView`: the follower's mirror advances through exact per-shard
//! `DenseEvent` suffixes, falling back to a resync snapshot only if it lags
//! behind the server's delta retention.

use std::time::{Duration, Instant};

use dyndens::serve::{Client, Follower};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let watch_secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            eprintln!("start the server first: cargo run --release --example story_server");
            std::process::exit(1);
        }
    };
    let (stats, serve_stats, shards) = client.stats().expect("stats request");
    println!(
        "connected to {addr}: {} shards, {} updates ingested so far, \
         {} requests served",
        shards.len(),
        stats.updates,
        serve_stats.requests_served
    );

    let mut follower = Follower::new();
    let start = Instant::now();
    let mut next_report = Duration::ZERO;
    while start.elapsed() < Duration::from_secs(watch_secs) {
        follower.poll(&mut client).expect("poll request");
        if start.elapsed() >= next_report {
            next_report += Duration::from_secs(2);
            let seq: u64 = follower.cursor().iter().sum();
            println!(
                "\nt+{:>4.1}s  cursor seq {seq}  mirrored stories {}  (events {}, resyncs {})",
                start.elapsed().as_secs_f64(),
                follower.story_sets().len(),
                follower.events_applied(),
                follower.resyncs(),
            );
            let (_, stories) = client.top_k(3).expect("topk request");
            for story in &stories {
                let label = if story.entities.is_empty() {
                    story.vertices.to_string()
                } else {
                    story.entities.join(" + ")
                };
                println!("  top: {label:<60} density {:.3}", story.density);
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    let seq: u64 = follower.cursor().iter().sum();
    println!(
        "\nwatched {watch_secs}s: mirror at seq {seq} with {} stories \
         ({} delta events applied, {} resyncs)",
        follower.story_sets().len(),
        follower.events_applied(),
        follower.resyncs(),
    );
}
