//! A remote story reader: connects to a running `story_server` example,
//! subscribes for pushed story-set deltas, and periodically prints the
//! merged top stories with entity names.
//!
//! Run (while `story_server` is up):
//!
//! ```bash
//! cargo run --release --example story_client                      # 127.0.0.1:7171
//! cargo run --release --example story_client -- 127.0.0.1:9000 10
//! cargo run --release --example story_client -- 127.0.0.1:7171 10 --legacy
//! ```
//!
//! Arguments: `[server_addr] [watch_seconds] [--legacy]` (defaults
//! `127.0.0.1:7171`, 10 seconds). The default mode registers one
//! `Subscribe` cursor and lets the server push exact per-shard
//! `DenseEvent` suffixes as shards publish — the out-of-process
//! counterpart of holding a `StoryView`, with a resync snapshot pushed
//! only if the mirror lags behind the server's delta retention (or the
//! shard topology changes). `--legacy` drives the same mirror through the
//! deprecated pull-mode shims (`Client::connect` + `Follower`) to show
//! both generations of the API compile against one server.

use std::time::{Duration, Instant};

use dyndens::serve::{Client, ClientBuilder, Mirror};

fn connect(addr: &str) -> Client {
    match ClientBuilder::new()
        .connect_timeout(Duration::from_secs(2))
        .retries(3)
        .backoff(Duration::from_millis(200))
        .connect(addr)
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            eprintln!("start the server first: cargo run --release --example story_server");
            std::process::exit(1);
        }
    }
}

fn print_top(client: &mut Client) {
    let (_, stories) = client.top_k(3).expect("topk request");
    for story in &stories {
        let label = if story.entities.is_empty() {
            story.vertices.to_string()
        } else {
            story.entities.join(" + ")
        };
        println!("  top: {label:<60} density {:.3}", story.density);
    }
}

/// Push mode: one subscription, deltas arrive as the server publishes.
fn watch_pushed(addr: &str, watch_secs: u64) {
    let mut client = connect(addr);
    let (stats, serve_stats, shards) = client.stats().expect("stats request");
    println!(
        "connected to {addr}: {} shards, {} updates ingested so far, \
         {} requests served",
        shards.len(),
        stats.updates,
        serve_stats.requests_served
    );

    let mut sub = client.subscribe(&[]).expect("subscribe");
    println!("subscribed across {} shards (push mode)", sub.n_shards());
    let mut mirror = Mirror::new();
    let start = Instant::now();
    let mut next_report = Duration::ZERO;
    while start.elapsed() < Duration::from_secs(watch_secs) {
        // Drain whatever the server has pushed since the last look; the
        // mirror applies deltas (or rebases on a pushed resync) exactly.
        while let Some(batch) = sub.try_next().expect("subscription healthy") {
            mirror.apply(&batch).expect("push applies");
        }
        if start.elapsed() >= next_report {
            next_report += Duration::from_secs(2);
            let seq: u64 = mirror.cursor().iter().sum();
            println!(
                "\nt+{:>4.1}s  cursor seq {seq}  mirrored stories {}  (events {}, resyncs {})",
                start.elapsed().as_secs_f64(),
                mirror.story_sets().len(),
                mirror.events_applied(),
                mirror.resyncs(),
            );
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // Unsubscribing hands the same connection back for request/reply use.
    let mut client = sub.unsubscribe().expect("unsubscribe");
    print_top(&mut client);
    let seq: u64 = mirror.cursor().iter().sum();
    println!(
        "\nwatched {watch_secs}s: mirror at seq {seq} with {} stories \
         ({} delta events applied, {} resyncs)",
        mirror.story_sets().len(),
        mirror.events_applied(),
        mirror.resyncs(),
    );
}

/// Pull mode through the deprecated shims: `Client::connect` + `Follower`
/// still compile and poll, so readers built against the v2 API keep working.
#[allow(deprecated)]
fn watch_polled(addr: &str, watch_secs: u64) {
    use dyndens::serve::Follower;

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut follower = Follower::new();
    let start = Instant::now();
    let mut next_report = Duration::ZERO;
    while start.elapsed() < Duration::from_secs(watch_secs) {
        follower.poll(&mut client).expect("poll request");
        if start.elapsed() >= next_report {
            next_report += Duration::from_secs(2);
            let seq: u64 = follower.cursor().iter().sum();
            println!(
                "\nt+{:>4.1}s  cursor seq {seq}  mirrored stories {}  (events {}, resyncs {})",
                start.elapsed().as_secs_f64(),
                follower.story_sets().len(),
                follower.events_applied(),
                follower.resyncs(),
            );
            print_top(&mut client);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let seq: u64 = follower.cursor().iter().sum();
    println!(
        "\nwatched {watch_secs}s (legacy pull mode): mirror at seq {seq} with {} stories",
        follower.story_sets().len(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let legacy = args.iter().any(|a| a == "--legacy");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let addr = positional
        .next()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let watch_secs: u64 = positional.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    if legacy {
        watch_polled(&addr, watch_secs);
    } else {
        watch_pushed(&addr, watch_secs);
    }
}
