//! Using DynDens for dynamic community detection on a synthetic interaction
//! graph, and comparing it against the Stix maximal-clique baseline.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p dyndens --example community_detection
//! ```
//!
//! The paper's conclusion points at online community identification as a
//! second application of Engagement: the entities are now users, the edge
//! weights interaction strengths, and the dense subgraphs tightly-knit user
//! groups. This example plants a handful of communities inside a noisy
//! interaction stream, lets DynDens maintain the dense groups as interactions
//! arrive, and contrasts the output with the maximal cliques maintained by the
//! Stix baseline on the thresholded (unweighted) version of the same graph.

use dyndens::baselines::StixCliques;
use dyndens::prelude::*;
use dyndens::workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    // A synthetic interaction stream: 2 000 users, 20 000 interactions, 90% of
    // them inside planted 10-user groups.
    let workload = SyntheticWorkload::generate(SyntheticConfig::near_clique(2_000, 20_000, 99));
    let updates = workload.updates();
    println!(
        "interaction stream: {} updates over {} users, {} planted communities",
        updates.len(),
        workload.config().n_vertices,
        workload.planted_groups().len()
    );

    // DynDens with AvgDegree density (favouring larger groups), communities of
    // up to 8 users.
    let config = DynDensConfig::new(0.35, 8).with_delta_it_fraction(0.3);
    let mut engine = DynDens::new(AvgDegree, config);

    // Stix maintains maximal cliques of the unweighted graph obtained by
    // keeping interactions whose accumulated weight clears 0.15.
    let mut stix = StixCliques::new();
    let mut accumulated = DynamicGraph::new();

    for update in updates {
        engine.apply_update(*update);
        let (old, new) = accumulated.apply_update(update);
        let was_edge = old >= 0.15;
        let is_edge = new >= 0.15;
        if !was_edge && is_edge {
            stix.insert_edge(update.a, update.b);
        } else if was_edge && !is_edge {
            stix.delete_edge(update.a, update.b);
        }
    }

    println!("\nDynDens:");
    println!("    dense groups maintained:   {}", engine.dense_count());
    println!(
        "    reported communities:      {}",
        engine.output_dense_count()
    );
    let mut top = engine.output_dense_subgraphs();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (set, density) in top.iter().take(5) {
        println!("    community {set}  density {density:.3}");
    }

    println!("\nStix (maximal cliques of the thresholded graph):");
    println!("    maximal cliques maintained: {}", stix.clique_count());
    let mut cliques = stix.cliques();
    cliques.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for clique in cliques.iter().take(5) {
        println!("    clique {clique}  ({} users)", clique.len());
    }

    // How many of the planted communities does each approach recover (at
    // least 4 members appearing together in some reported group)?
    let recovered_by = |groups: &[VertexSet]| -> usize {
        workload
            .planted_groups()
            .iter()
            .filter(|planted| {
                groups
                    .iter()
                    .any(|g| planted.iter().filter(|v| g.contains(**v)).count() >= 4)
            })
            .count()
    };
    let dyndens_groups: Vec<VertexSet> = engine
        .output_dense_subgraphs()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    let stix_groups = stix.cliques();
    println!("\nplanted communities recovered (>= 4 members together):");
    println!(
        "    DynDens: {} / {}",
        recovered_by(&dyndens_groups),
        workload.planted_groups().len()
    );
    println!(
        "    Stix:    {} / {}",
        recovered_by(&stix_groups),
        workload.planted_groups().len()
    );
}
