//! Quick start: maintain dense subgraphs over a hand-written update stream.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p dyndens --example quickstart
//! ```
//!
//! The example builds a small entity graph one edge weight update at a time
//! (mirroring the execution example of the paper, Section 3.1), prints the
//! reported transitions after each update, and finally dumps the maintained
//! output-dense subgraphs.

use dyndens::prelude::*;

fn main() {
    // Report subgraphs of up to 4 entities whose average edge weight reaches
    // 1.0; delta_it = 0.15 controls how many extra (non-reported) subgraphs
    // are maintained to make updates cheap.
    let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
    let mut engine = DynDens::new(AvgWeight, config);

    // A stream of edge weight updates over five entities (0..=4). The first
    // seven updates build the graph of the paper's Figure 2(a); the last one
    // is the update the paper walks through (edge (0, 1) rises to 0.95).
    let stream = [
        (0u32, 2u32, 1.0),
        (0, 3, 1.0),
        (2, 3, 1.0),
        (1, 3, 1.0),
        (1, 2, 1.1),
        (0, 1, 0.80),
        (0, 4, 0.80),
        (0, 1, 0.15),
    ];

    for (step, &(a, b, delta)) in stream.iter().enumerate() {
        let update = EdgeUpdate::new(VertexId(a), VertexId(b), delta);
        let events = engine.apply_update(update);
        println!("step {step}: update ({a}, {b}) by {delta:+}");
        for event in events {
            match event {
                DenseEvent::BecameOutputDense { vertices, density } => {
                    println!("    + {vertices} became a story (density {density:.3})");
                }
                DenseEvent::NoLongerOutputDense { vertices, density } => {
                    println!("    - {vertices} dropped out (density {density:.3})");
                }
            }
        }
    }

    println!("\nmaintained dense subgraphs: {}", engine.dense_count());
    println!("reported (output-dense) subgraphs:");
    let mut reported = engine.output_dense_subgraphs();
    reported.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (vertices, density) in reported {
        println!("    {vertices}  density {density:.3}");
    }

    let stats = engine.stats();
    println!(
        "\nwork done: {} updates, {} explorations, {} cheap explorations, {} candidates examined",
        stats.updates, stats.explorations, stats.cheap_explorations, stats.candidates_examined
    );
}
