//! Dynamic threshold adjustment at runtime (Section 6 of the paper).
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p dyndens --example threshold_tuning
//! ```
//!
//! In practice the "right" density threshold depends on the stream: too low
//! and thousands of subgraphs are reported, too high and nothing is. This
//! example keeps the number of reported stories inside a target band by
//! raising or lowering the threshold incrementally while the stream is being
//! processed, and compares the cost of the incremental adjustment against a
//! full recomputation (`DynDensRecompute`).

use std::time::Instant;

use dyndens::baselines::recompute;
use dyndens::prelude::*;
use dyndens::workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let workload =
        SyntheticWorkload::generate(SyntheticConfig::edge_preferential(3_000, 40_000, 5));
    let updates = workload.updates();
    println!(
        "synthetic stream: {} updates over {} vertices\n",
        updates.len(),
        workload.config().n_vertices
    );

    // Keep the number of reported subgraphs between 50 and 500.
    let (low_watermark, high_watermark) = (50usize, 500usize);
    let mut threshold = 0.9f64;
    let config = DynDensConfig::new(threshold, 6).with_delta_it_fraction(0.3);
    let mut engine = DynDens::new(AvgWeight, config.clone());

    let chunk = updates.len() / 10;
    for (i, batch) in updates.chunks(chunk.max(1)).enumerate() {
        for u in batch {
            engine.apply_update(*u);
        }
        let reported = engine.output_dense_count();
        print!("after batch {i:>2}: threshold {threshold:.3}, {reported:>5} stories reported");

        // Controller: nudge the threshold to stay inside the band.
        if reported > high_watermark {
            threshold *= 1.1;
            let start = Instant::now();
            engine.set_output_threshold(threshold);
            println!(
                "  -> too many, raising threshold to {threshold:.3} ({} stories, {:?})",
                engine.output_dense_count(),
                start.elapsed()
            );
        } else if reported < low_watermark && threshold > 0.2 {
            threshold *= 0.9;
            let start = Instant::now();
            engine.set_output_threshold(threshold);
            println!(
                "  -> too few, lowering threshold to {threshold:.3} ({} stories, {:?})",
                engine.output_dense_count(),
                start.elapsed()
            );
        } else {
            println!();
        }
    }

    // Compare one incremental adjustment against a full recomputation at the
    // same final threshold.
    let target = threshold * 0.9;
    let start = Instant::now();
    engine.set_output_threshold(target);
    let incremental = start.elapsed();

    let start = Instant::now();
    let rebuilt = recompute(
        AvgWeight,
        DynDensConfig::new(target, 6).with_delta_it_fraction(0.3),
        engine.graph(),
    );
    let full = start.elapsed();

    println!("\nfinal threshold {target:.3}:");
    println!(
        "    incremental adjustment: {incremental:?} ({} stories)",
        engine.output_dense_count()
    );
    println!(
        "    full recomputation:     {full:?} ({} stories)",
        rebuilt.output_dense_count()
    );
    if incremental.as_secs_f64() > 0.0 {
        println!(
            "    speedup: {:.1}x",
            full.as_secs_f64() / incremental.as_secs_f64().max(1e-9)
        );
    }
}
