//! A live story server: simulated posts stream through a sharded pipeline
//! while the `dyndens-serve` TCP server exposes the emerging stories to
//! remote readers.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example story_server            # serves on 127.0.0.1:7171
//! cargo run --release --example story_server -- 127.0.0.1:9000 30
//! ```
//!
//! Arguments: `[listen_addr] [serve_seconds]` (defaults `127.0.0.1:7171`,
//! 15 seconds). While the server runs, point the companion example at it:
//!
//! ```bash
//! cargo run --release --example story_client -- 127.0.0.1:7171
//! ```
//!
//! The planted-story tweet simulator provides the post stream; ingest is
//! paced across the serving window so a polling client observes stories
//! forming and fading in real time. Entity names are published into the
//! server's name table as they are interned, so remote stories arrive
//! human-readable.

use std::time::{Duration, Instant};

use dyndens::prelude::*;
use dyndens::serve::StoryServer;
use dyndens::stream::{ChiSquareCorrelation, ShardedStoryPipeline};
use dyndens::workloads::{TweetSimulator, TweetSimulatorConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let serve_secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(15);

    let config = TweetSimulatorConfig {
        n_posts: 20_000,
        n_background_entities: 300,
        ..TweetSimulatorConfig::default()
    };
    let corpus = TweetSimulator::new(config).generate();
    println!("simulated {} posts", corpus.posts.len());

    let mut pipeline = ShardedStoryPipeline::new(
        ChiSquareCorrelation::default(),
        2.0 * 3600.0,
        AvgWeight,
        DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.25),
        ShardConfig::new(2).with_max_batch(64),
    );

    let server = StoryServer::builder(pipeline.view())
        .workers(2)
        .max_connections(1024)
        .bind(&addr)
        .expect("bind story server");
    let names = server.names();
    println!(
        "serving on {} for {serve_secs}s (TopK / Poll / Stats / Subscribe)",
        server.local_addr()
    );

    // Pace the corpus across the serving window so stories evolve while
    // clients watch. Names reach the table before the updates that use them
    // are routed, mirroring the entity journal's ordering discipline.
    let window = Duration::from_secs(serve_secs);
    let start = Instant::now();
    let per_post = window / corpus.posts.len() as u32;
    let mut next_report = window / 4;
    for (i, post) in corpus.posts.iter().enumerate() {
        let entities: Vec<String> = corpus.registry.describe(post.entities.iter().copied());
        let refs: Vec<&str> = entities.iter().map(String::as_str).collect();
        pipeline.ingest(post.timestamp, &refs);
        if i % 64 == 0 {
            names.publish(pipeline.entity_names());
        }
        // Sleep only while ahead of schedule; on slow machines ingest simply
        // runs flat out and the rest of the window serves a finished stream.
        let target = per_post * i as u32;
        if let Some(ahead) = target.checked_sub(start.elapsed()) {
            if !ahead.is_zero() {
                std::thread::sleep(ahead.min(Duration::from_millis(5)));
            }
        }
        if start.elapsed() >= next_report {
            next_report += window / 4;
            let seq: u64 = pipeline.per_shard_seq().iter().sum();
            let top = pipeline.top_stories_latest(1);
            println!(
                "t+{:>4.1}s  seq {seq:>7}  requests {:>6}  subscribers {}  top story: {}",
                start.elapsed().as_secs_f64(),
                server.requests_served(),
                server.subscribers(),
                top.first()
                    .map(|s| format!("{} (density {:.2})", s.entities.join(" + "), s.density))
                    .unwrap_or_else(|| "none yet".to_string()),
            );
        }
    }
    pipeline.flush();
    names.publish(pipeline.entity_names());

    // Serve the finished stream for whatever remains of the window.
    while start.elapsed() < window {
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("\nfinal top stories:");
    for story in pipeline.top_stories(5) {
        println!(
            "  {:<60} density {:.3}",
            story.entities.join(" + "),
            story.density
        );
    }
    println!(
        "served {} requests; shutting down",
        server.requests_served()
    );
}
