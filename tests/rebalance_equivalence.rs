//! Live shard rebalancing equivalence: splitting a hot shard **mid-stream**
//! must yield story sets bit-identical to a deployment that never split,
//! while ingest on untouched shards keeps flowing during the split.
//!
//! The workload is the canonical partition-aligned 50k-update stream
//! (communities drawn from congruence classes mod 8, weights below the
//! too-dense regime). Under `ShardFn::Modulo` with 2 base shards, the
//! routing bits consulted by splits are the binary digits of `v / 2`, so
//! communities stay aligned through two levels of splitting — the
//! partitioning invariant holds before *and* after every split, which is
//! what makes the comparison exact down to the score bits.
//!
//! The oracle's rebalance leg (see `dyndens_workloads::oracle`) covers the
//! blocking split+merge path on every workload; this suite keeps the
//! concurrency-sensitive variants — an [`IngestHandle`] feeding the fleet
//! from inside the `Parked` phase — plus crash-reopen of changed topologies.

mod support;

use dyndens::prelude::*;
use dyndens::shard::DeltaCatchUp;
use support::{
    canonical_stream, engine_config, persistence_every, shard_config, sorted_bits, temp_dir, CHUNK,
};

/// The headline acceptance test: a persistent 2-shard deployment ingests the
/// 50k stream; mid-stream, the hot shard is split (checkpoint + WAL-slice
/// replay) while an [`IngestHandle`] concurrently feeds the fleet — updates
/// for the splitting shard park, updates for the untouched shard are applied
/// *during* the split (asserted deterministically from inside the split's
/// `Parked` phase). The final maintained family must match a never-split run
/// bit for bit, the work ledger must count every update exactly once, and a
/// crash + reopen must recover the refined topology with the same answer.
#[test]
fn split_mid_stream_matches_never_split_bit_identically() {
    let updates = canonical_stream();

    // Never-split reference.
    let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
    for chunk in updates.chunks(CHUNK) {
        reference.apply_batch(chunk);
    }
    let want = sorted_bits(reference.dense_subgraphs());
    assert!(want.len() >= 10, "degenerate workload");
    assert_eq!(reference.stats().updates, updates.len() as u64);
    drop(reference);

    let dir = temp_dir("rebeq");
    let persistence = || persistence_every(&dir, 16);

    let mut fleet = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(2),
        persistence(),
    )
    .unwrap();
    let (head, rest) = updates.split_at(20_000);
    let (mid, tail) = rest.split_at(10_000);
    for chunk in head.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();

    // Split shard 0 while the mid tranche flows in through an IngestHandle.
    // The observer runs inside the split, after the parent is quiesced and
    // before the refined routing commits — the deterministic window in which
    // slot-0 updates park and slot-1 updates must still be applied.
    let handle = fleet.ingest_handle();
    let view = fleet.view();
    let seq0_at_park = std::cell::Cell::new(0u64);
    let concurrent_applied = std::cell::Cell::new(0u64);
    let report = fleet
        .split_shard_with(0, |phase| {
            if phase == SplitPhase::Parked {
                seq0_at_park.set(view.shard_seq(0));
                let untouched_before = view.shard_seq(1);
                for chunk in mid.chunks(128) {
                    handle.apply_batch(chunk);
                }
                // The untouched shard must make progress while the split
                // shard is down: wait for its worker to apply something.
                while view.shard_seq(1) == untouched_before {
                    std::thread::yield_now();
                }
                concurrent_applied.set(view.shard_seq(1) - untouched_before);
                // The split shard itself is quiescent: everything routed to
                // it is parking, nothing is applied.
                assert_eq!(view.shard_seq(0), seq0_at_park.get());
            }
        })
        .unwrap();
    assert!(
        concurrent_applied.get() > 0,
        "untouched shard applied no batches during the split"
    );
    assert!(
        report.parked_updates > 0,
        "the mid tranche must have parked updates for the split shard"
    );
    assert_eq!(report.slot, 0);
    assert_eq!(report.new_slot, 2);
    assert_eq!(
        report.snapshot_seq + report.replayed_updates,
        report.parent_seq,
        "children = checkpoint + filtered WAL slice up to the quiesce point"
    );
    assert_eq!(fleet.n_shards(), 3);
    assert_eq!(view.n_shards(), 3, "pre-split views observe the growth");
    // Pollers of the split slot resync: the slot's ring restarted empty at
    // the split point, so every pre-split cursor (strictly below it) finds
    // its suffix gone — exactly the post-crash-recovery behaviour.
    assert_eq!(
        fleet
            .view()
            .deltas_since(0, seq0_at_park.get().saturating_sub(1)),
        DeltaCatchUp::Resync
    );
    assert!(fleet
        .view()
        .delta_coverage_from(0)
        .is_none_or(|from| from >= seq0_at_park.get()));

    for chunk in tail.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.validate().unwrap();
    let got = sorted_bits(fleet.dense_subgraphs());
    assert_eq!(got.len(), want.len());
    for ((gs, gd), (ws, wd)) in got.iter().zip(&want) {
        assert_eq!(gs, ws, "maintained sets diverge after the split");
        assert_eq!(*gd, *wd, "score bits diverge on {gs}");
    }
    // The ledger counts every update exactly once across the split: rebuild
    // replay counts nothing, the slot-keeping child adopts the parent's
    // counters, parked updates are applied (and counted) by the children.
    assert_eq!(fleet.stats().updates, updates.len() as u64);

    // Crash + reopen: the generational manifest recovers all three shards
    // and the identical answer, still under the base ShardConfig::new(2).
    drop(fleet);
    let reopened = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(2),
        persistence(),
    )
    .unwrap();
    assert_eq!(reopened.n_shards(), 3);
    assert_eq!(reopened.recovery_reports().len(), 3);
    assert_eq!(reopened.shard_map().generation(), 1);
    assert_eq!(sorted_bits(reopened.dense_subgraphs()), want);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The merge acceptance test: a persistent deployment splits a shard
/// mid-stream, keeps ingesting, then **merges the pair back** mid-stream —
/// while an [`IngestHandle`] concurrently feeds the fleet from inside the
/// merge's `Parked` phase (updates for either quiesced sibling park, updates
/// for the untouched shard are applied *during* the merge). The final
/// maintained family must match a fleet that never changed topology bit for
/// bit, the ledger must count every update exactly once, pollers of the
/// merged slot must resync, and a crash + reopen must recover the coarsened
/// topology with the same answer.
#[test]
fn merge_mid_stream_matches_never_merged_bit_identically() {
    let updates = canonical_stream();

    // Never-refined reference.
    let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
    for chunk in updates.chunks(CHUNK) {
        reference.apply_batch(chunk);
    }
    let want = sorted_bits(reference.dense_subgraphs());
    assert!(want.len() >= 10, "degenerate workload");
    drop(reference);

    let dir = temp_dir("mergeeq");
    let persistence = || persistence_every(&dir, 16);

    let mut fleet = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(2),
        persistence(),
    )
    .unwrap();
    let (head, rest) = updates.split_at(15_000);
    let (between, rest) = rest.split_at(15_000);
    let (during, tail) = rest.split_at(10_000);

    for chunk in head.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();
    let split = fleet.split_shard(0).unwrap();
    assert_eq!(split.new_slot, 2);
    for chunk in between.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();

    // Merge the siblings back while the `during` tranche flows in through an
    // IngestHandle. Inside the Parked phase both siblings are quiesced —
    // their updates park — while the untouched shard keeps applying.
    let handle = fleet.ingest_handle();
    let view = fleet.view();
    let merged_seq_at_park = std::cell::Cell::new(0u64);
    let concurrent_applied = std::cell::Cell::new(0u64);
    let report = fleet
        .merge_shards_with(0, 2, |phase| {
            if phase == MergePhase::Parked {
                merged_seq_at_park.set(view.shard_seq(0) + view.shard_seq(2));
                let untouched_before = view.shard_seq(1);
                for chunk in during.chunks(128) {
                    handle.apply_batch(chunk);
                }
                while view.shard_seq(1) == untouched_before {
                    std::thread::yield_now();
                }
                concurrent_applied.set(view.shard_seq(1) - untouched_before);
                // Both quiesced siblings are frozen at their park points.
                assert_eq!(
                    view.shard_seq(0) + view.shard_seq(2),
                    merged_seq_at_park.get()
                );
            }
        })
        .unwrap();
    assert!(
        concurrent_applied.get() > 0,
        "untouched shard applied no batches during the merge"
    );
    assert!(
        report.parked_updates > 0,
        "the during tranche must have parked updates for the merging pair"
    );
    assert_eq!(report.slot, 0);
    assert_eq!(report.freed_slot, 2);
    assert_eq!(report.moved_slot, None);
    assert_eq!(report.child_engines, split.child_engines);
    assert_eq!(report.merged_seq, merged_seq_at_park.get());
    assert_eq!(report.generation, 2);
    assert_eq!(fleet.n_shards(), 2);
    assert_eq!(view.n_shards(), 2, "pre-merge views observe the shrink");
    // Pollers of the merged slot resync: its ring restarted empty at the
    // merge point, exactly like after a split or crash recovery.
    assert_eq!(
        fleet
            .view()
            .deltas_since(0, merged_seq_at_park.get().saturating_sub(1)),
        DeltaCatchUp::Resync
    );
    assert!(fleet
        .view()
        .delta_coverage_from(0)
        .is_none_or(|from| from >= merged_seq_at_park.get()));

    for chunk in tail.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.validate().unwrap();
    let got = sorted_bits(fleet.dense_subgraphs());
    assert_eq!(got.len(), want.len());
    for ((gs, gd), (ws, wd)) in got.iter().zip(&want) {
        assert_eq!(gs, ws, "maintained sets diverge after the merge");
        assert_eq!(*gd, *wd, "score bits diverge on {gs}");
    }
    // Split + merge is ledger-neutral: every update counted exactly once.
    assert_eq!(fleet.stats().updates, updates.len() as u64);

    // Crash + reopen: the manifest's coarsened topology recovers two shards
    // (the merged engine plus the untouched base engine) and the same bits.
    drop(fleet);
    let reopened = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(2),
        persistence(),
    )
    .unwrap();
    assert_eq!(reopened.n_shards(), 2);
    assert_eq!(reopened.shard_map().generation(), 2);
    assert_eq!(sorted_bits(reopened.dense_subgraphs()), want);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The backend-parameterized run: for every pluggable maintenance backend,
/// splitting mid-stream and merging the siblings back (the engine-side
/// `partition_by`/`absorb` paths under that backend's implementation) must
/// match an untouched-topology fleet of the same backend bit for bit.
#[test]
fn every_backend_split_merge_matches_untouched_topology() {
    let oracle = support::Oracle::from_updates("canonical-8k", support::backend_stream());
    support::for_each_backend(|backend| {
        oracle
            .run_backend_legs(backend, &[support::Leg::Rebalance])
            .assert_passed();
    });
}

/// Two successive splits of the same base slot exercise depth-2 routing bits
/// (still community-aligned at alignment 8 over 2 base shards) on the
/// in-memory partition path.
#[test]
fn repeated_in_memory_splits_stay_exact() {
    let updates = support::shard_aligned_stream(20_000, 8, 77);
    let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
    for chunk in updates.chunks(CHUNK) {
        reference.apply_batch(chunk);
    }
    let want = sorted_bits(reference.dense_subgraphs());
    drop(reference);

    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
    let thirds = updates.len() / 3;
    for chunk in updates[..thirds].chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    let first = fleet.split_shard(0).unwrap();
    assert_eq!(first.generation, 1);
    for chunk in updates[thirds..2 * thirds].chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    // Split slot 0 again: its route-trie leaf now sits at depth 1, so the
    // second split consults routing bit 1.
    let second = fleet.split_shard(0).unwrap();
    assert_eq!(second.generation, 2);
    assert_eq!(fleet.n_shards(), 4);
    for chunk in updates[2 * thirds..].chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.validate().unwrap();
    assert_eq!(sorted_bits(fleet.dense_subgraphs()), want);
    assert_eq!(fleet.stats().updates, updates.len() as u64);
    // Four live workers, every one of them owning real work by now.
    let per_shard = fleet.view().per_shard_seq();
    assert_eq!(per_shard.len(), 4);
    assert!(per_shard.iter().all(|&s| s > 0), "{per_shard:?}");
}

/// A serving-layer follower spanning a split: its stale cursor is rebased by
/// the server (no error round-trip) and the mirrored story sets stay
/// byte-identical to the in-process view.
#[test]
fn follower_resyncs_cleanly_across_a_split() {
    use dyndens::serve::{Client, Mirror, StoryServer};

    let updates = support::shard_aligned_stream(8_000, 8, 5);
    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), support::serve_shard_config(2));
    let server = StoryServer::bind("127.0.0.1:0", fleet.view()).unwrap();
    let mut client = Client::builder().connect(server.local_addr()).unwrap();
    let mut follower = Mirror::new();

    let (head, tail) = updates.split_at(4_000);
    for chunk in head.chunks(128) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();
    follower.poll(&mut client).unwrap();
    assert_eq!(follower.cursor().len(), 2);

    let report = fleet.split_shard(0).unwrap();
    assert_eq!(report.new_slot, 2);
    for chunk in tail.chunks(128) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();

    // The next poll carries a 2-entry cursor against a 3-shard server: the
    // reply rebases the follower onto the new topology.
    let resyncs_before = follower.resyncs();
    follower.poll(&mut client).unwrap();
    assert_eq!(follower.cursor().len(), 3);
    assert!(follower.resyncs() > resyncs_before);

    // The rebased mirror tracks the in-process story sets across the new
    // topology (densities delivered by deltas may lag until the next resync,
    // as on any delta-followed shard — set membership is exact).
    let view = fleet.view();
    let mut expect: Vec<(VertexSet, f64)> = (0..view.n_shards())
        .flat_map(|s| view.shard_snapshot(s).top_stories.clone())
        .collect();
    expect.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(
        follower.vertex_sets(),
        expect.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>()
    );

    // A fresh follower bootstraps against the post-split topology purely via
    // resync snapshots: byte-identical sets *and* densities.
    let mut late = Mirror::new();
    while late.poll(&mut client).unwrap() {}
    let got = late.story_sets();
    assert_eq!(late.cursor().len(), 3);
    assert_eq!(got.len(), expect.len());
    for ((gs, gd), (ws, wd)) in got.iter().zip(&expect) {
        assert_eq!(gs, ws);
        assert_eq!(gd.to_bits(), wd.to_bits());
    }
}
