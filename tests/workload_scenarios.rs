//! Every scenario workload, proven bit-exact through the full stack by the
//! differential oracle: sharded 1/2/4 fleets vs. a single engine,
//! kill-and-recover mid-stream, split+merge mid-stream, and a push-fed
//! serve mirror — one test per workload, all four legs each.
//!
//! Generator-shape invariants (burst skew, single-class funneling,
//! preferential concentration, story evolution / zombie decay) live next to
//! the generators in `crates/workloads`; this suite asserts the end-to-end
//! contract: whatever shape the adversary takes, the stack's answers stay
//! bit-identical to the single-engine reference.

use dyndens::workloads::{
    AdversarialSkew, DocCorpus, FlashCrowd, GeoPartitioned, Oracle, OracleReport, Workload,
    WorkloadStream,
};

fn run(workload: &dyn Workload, n_updates: usize) -> OracleReport {
    let report = Oracle::new(workload).run();
    assert_eq!(report.workload, workload.name());
    assert_eq!(report.n_updates, n_updates);
    assert_eq!(report.legs.len(), 4, "all four legs must run");
    assert!(
        report.output_dense > 0,
        "{}: degenerate workload, no output-dense stories",
        report.workload
    );
    report.assert_bit_exact();
    report
}

#[test]
fn flash_crowd_is_bit_exact_through_the_full_stack() {
    run(&FlashCrowd::new(12_000, 2026), 12_000);
}

#[test]
fn adversarial_skew_is_bit_exact_through_the_full_stack() {
    let w = AdversarialSkew::new(12_000, 2026);
    let report = run(&w, 12_000);
    // The adversary funnels everything into one congruence class, so the
    // dense stories all live there too — and the stack still answers
    // exactly, it just answers from one hot shard.
    assert!(report.output_dense > 0);
}

#[test]
fn doc_corpus_is_bit_exact_through_the_full_stack() {
    let w = DocCorpus::new(2_000, 2026);
    // The post-shaped stream and its lowering describe the same corpus.
    match w.stream() {
        WorkloadStream::Posts(docs) => assert_eq!(docs.len(), 2_000),
        WorkloadStream::Updates(_) => panic!("doc corpus must stream documents"),
    }
    let n = w.updates().len();
    assert!(n > 0);
    run(&w, n);
}

#[test]
fn geo_partitioned_is_bit_exact_through_the_full_stack() {
    run(&GeoPartitioned::new(12_000, 2026), 12_000);
}
