//! Determinism and equivalence tests for the sharded subsystem.
//!
//! The central acceptance property: on a partition-aligned stream (each
//! planted community's edges owned by one shard, weights below the too-dense
//! regime — see `dyndens_bench::shard_aligned_stream`), `ShardedDynDens`
//! with N ∈ {1, 2, 4} shards reports **exactly** the output-dense set of a
//! single `DynDens` engine fed the same 50k-update stream.

use dyndens::prelude::*;
use dyndens_bench::shard_aligned_stream;

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

fn sorted_output(mut sets: Vec<(VertexSet, f64)>) -> Vec<(VertexSet, f64)> {
    sets.sort_by(|a, b| a.0.cmp(&b.0));
    sets
}

#[test]
fn sharded_matches_single_engine_on_50k_update_stream() {
    let updates = shard_aligned_stream(50_000, 8, 2012);

    // Ground truth: the single-threaded engine over the interleaved stream.
    let mut reference = DynDens::new(AvgWeight, engine_config());
    let mut events = Vec::new();
    for u in &updates {
        reference.apply_update_into(*u, &mut events);
        events.clear();
    }
    reference.validate().unwrap();
    // The workload must stay below the too-dense regime, otherwise the
    // partitioning invariant (and this comparison) would not be exact.
    assert_eq!(
        reference.stats().star_markers_created,
        0,
        "workload entered the too-dense regime"
    );
    let want = sorted_output(reference.output_dense_subgraphs());
    assert!(
        want.len() >= 10,
        "degenerate workload: only {} output-dense subgraphs",
        want.len()
    );

    for n_shards in [1usize, 2, 4] {
        let mut sharded = ShardedDynDens::new(
            AvgWeight,
            engine_config(),
            ShardConfig::new(n_shards)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(64),
        );
        for chunk in updates.chunks(256) {
            sharded.apply_batch(chunk);
        }
        sharded.validate().unwrap();
        let got = sorted_output(sharded.output_dense());

        assert_eq!(
            got.len(),
            want.len(),
            "{n_shards} shards: {} output-dense subgraphs, single engine has {}",
            got.len(),
            want.len()
        );
        for ((gs, gd), (ws, wd)) in got.iter().zip(&want) {
            assert_eq!(gs, ws, "{n_shards} shards: sets diverge");
            assert!(
                (gd - wd).abs() < 1e-9,
                "{n_shards} shards: density of {gs} diverges ({gd} vs {wd})"
            );
        }

        // The merged work ledger accounts for every update exactly once.
        let stats = sharded.stats();
        assert_eq!(stats.updates, updates.len() as u64);
        assert_eq!(stats.updates, reference.stats().updates);

        // The non-blocking view agrees on volume and serves the densest
        // stories first.
        let view = sharded.view();
        let merged = view.snapshot();
        assert_eq!(merged.seq, updates.len() as u64);
        assert_eq!(merged.output_dense_total, want.len());
        for pair in merged.stories.windows(2) {
            assert!(
                pair[0].1 >= pair[1].1 - 1e-12,
                "view stories not sorted by density"
            );
        }
    }
}

#[test]
fn sharded_ingest_is_deterministic_across_runs() {
    // Same stream, same shard count, different interleavings of worker
    // scheduling: per-shard FIFO routing makes the result deterministic.
    let updates = shard_aligned_stream(10_000, 4, 7);
    let mut answers = Vec::new();
    for _run in 0..3 {
        let mut sharded = ShardedDynDens::new(
            AvgWeight,
            engine_config(),
            ShardConfig::new(4)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(32),
        );
        // Mix the single-update and batched ingest paths.
        let (head, tail) = updates.split_at(updates.len() / 2);
        for u in head {
            sharded.apply_update(*u);
        }
        sharded.apply_batch(tail);
        answers.push(sorted_output(sharded.output_dense()));
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

#[test]
fn hashed_sharding_still_unions_disjoint_communities() {
    // With hashed sharding the residue classes no longer align with shards,
    // but communities are vertex-disjoint and never too-dense, so every
    // community's edges still share an owner shard only if its vertices'
    // minimum happens to; instead of exactness we check the weaker, always
    // guaranteed properties: determinism, validity, and soundness of every
    // reported subgraph with respect to its own shard's slice.
    let updates = shard_aligned_stream(10_000, 8, 99);
    let mut sharded = ShardedDynDens::new(
        AvgWeight,
        engine_config(),
        ShardConfig::new(4).with_max_batch(64),
    );
    sharded.apply_batch(&updates);
    sharded.validate().unwrap();
    let got = sharded.output_dense();
    // Deterministic repeat.
    let mut again = ShardedDynDens::new(
        AvgWeight,
        engine_config(),
        ShardConfig::new(4).with_max_batch(64),
    );
    again.apply_batch(&updates);
    assert_eq!(sorted_output(got), sorted_output(again.output_dense()));
}
