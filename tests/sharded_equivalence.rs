//! Determinism and equivalence tests for the sharded subsystem.
//!
//! The central acceptance property: on a partition-aligned stream (each
//! planted community's edges owned by one shard, weights below the too-dense
//! regime — see `dyndens_workloads::shard_aligned_stream`), `ShardedDynDens`
//! with N ∈ {1, 2, 4} shards reports **exactly** the output-dense set of a
//! single `DynDens` engine fed the same 50k-update stream. The comparison
//! itself lives in the differential oracle (`dyndens_workloads::oracle`);
//! this suite runs its sharded leg on the canonical stream and keeps the
//! view-consistency and determinism checks that sit outside the oracle.

mod support;

use dyndens::prelude::*;
use support::{canonical_stream, engine_config, shard_config, sorted_sets, Leg, Oracle};

#[test]
fn sharded_matches_single_engine_on_50k_update_stream() {
    let report = Oracle::from_updates("canonical", canonical_stream()).run_legs(&[Leg::Sharded]);
    assert!(
        report.output_dense >= 10,
        "degenerate workload: only {} output-dense subgraphs",
        report.output_dense
    );
    report.assert_bit_exact();
}

#[test]
fn every_backend_sharded_matches_its_own_single_engine() {
    // The backend-parameterized run of the headline property: for every
    // pluggable maintenance backend, a 1/2/4-shard fleet of that backend is
    // bit-identical to a single engine of the same backend (plus the
    // quality comparison against the DynDens referee).
    let oracle = Oracle::from_updates("canonical-8k", support::backend_stream());
    support::for_each_backend(|backend| {
        let report = oracle.run_backend_legs(backend, &[Leg::Sharded]);
        assert!(
            report.output_dense > 0,
            "{}: degenerate stream",
            backend.kind()
        );
        report.assert_passed();
    });
}

#[test]
fn view_snapshot_agrees_with_ledger_and_sorts_by_density() {
    let updates = canonical_stream();
    let mut sharded = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(4));
    for chunk in updates.chunks(support::CHUNK) {
        sharded.apply_batch(chunk);
    }
    sharded.flush();
    let total = sharded.output_dense().len();

    // The non-blocking view agrees on volume and serves the densest stories
    // first.
    let view = sharded.view();
    let merged = view.snapshot();
    assert_eq!(merged.seq, updates.len() as u64);
    assert_eq!(merged.output_dense_total, total);
    for pair in merged.stories.windows(2) {
        assert!(
            pair[0].1 >= pair[1].1 - 1e-12,
            "view stories not sorted by density"
        );
    }
}

#[test]
fn sharded_ingest_is_deterministic_across_runs() {
    // Same stream, same shard count, different interleavings of worker
    // scheduling: per-shard FIFO routing makes the result deterministic.
    let updates = support::shard_aligned_stream(10_000, 4, 7);
    let mut answers = Vec::new();
    for _run in 0..3 {
        let mut sharded = ShardedDynDens::new(
            AvgWeight,
            engine_config(),
            shard_config(4).with_max_batch(32),
        );
        // Mix the single-update and batched ingest paths.
        let (head, tail) = updates.split_at(updates.len() / 2);
        for u in head {
            sharded.apply_update(*u);
        }
        sharded.apply_batch(tail);
        answers.push(sorted_sets(sharded.output_dense()));
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

#[test]
fn hashed_sharding_still_unions_disjoint_communities() {
    // With hashed sharding the residue classes no longer align with shards,
    // but communities are vertex-disjoint and never too-dense, so every
    // community's edges still share an owner shard only if its vertices'
    // minimum happens to; instead of exactness we check the weaker, always
    // guaranteed properties: determinism, validity, and soundness of every
    // reported subgraph with respect to its own shard's slice.
    let updates = support::shard_aligned_stream(10_000, 8, 99);
    let hashed = |_| {
        ShardedDynDens::new(
            AvgWeight,
            engine_config(),
            ShardConfig::new(4).with_max_batch(64),
        )
    };
    let mut sharded = hashed(());
    sharded.apply_batch(&updates);
    sharded.validate().unwrap();
    let got = sharded.output_dense();
    // Deterministic repeat.
    let mut again = hashed(());
    again.apply_batch(&updates);
    assert_eq!(sorted_sets(got), sorted_sets(again.output_dense()));
}
