//! Cross-crate integration tests: simulated posts → association measures →
//! DynDens → ranked stories.

use dyndens::prelude::*;
use dyndens::stream::{ChiSquareCorrelation, LogLikelihoodRatio, StoryPipeline};
use dyndens::workloads::{TweetSimulator, TweetSimulatorConfig};

fn small_corpus() -> dyndens::workloads::SimulatedCorpus {
    let config = TweetSimulatorConfig {
        n_posts: 8_000,
        n_background_entities: 150,
        ..TweetSimulatorConfig::default()
    };
    TweetSimulator::new(config).generate()
}

#[test]
fn weighted_pipeline_surfaces_planted_stories() {
    let corpus = small_corpus();
    let updates = corpus.to_updates(ChiSquareCorrelation::default(), Some(2.0 * 3600.0));
    assert!(!updates.is_empty());

    let mut engine = DynDens::new(
        AvgWeight,
        DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.25),
    );
    for u in &updates {
        engine.apply_update(*u);
    }
    engine.validate().unwrap();

    // At least half of the always-active planted stories should have a facet
    // reported as output-dense at the end of the day.
    let reported = engine.output_dense_subgraphs();
    let mut recovered = 0;
    let mut active_stories = 0;
    for (idx, story) in corpus.story_vertices.iter().enumerate() {
        // Skip windowed stories that ended early (their association decayed).
        let script = &dyndens::workloads::tweets::default_stories()[idx];
        if script.end < 20.0 * 3600.0 {
            continue;
        }
        active_stories += 1;
        let hit = reported
            .iter()
            .any(|(set, _)| set.iter().filter(|v| story.contains(v)).count() >= 2);
        if hit {
            recovered += 1;
        }
    }
    assert!(active_stories >= 3);
    assert!(
        recovered * 2 >= active_stories,
        "only {recovered} of {active_stories} active stories were recovered"
    );
}

#[test]
fn unweighted_pipeline_produces_unit_edges_and_cliques() {
    let corpus = small_corpus();
    let updates = corpus.to_updates(LogLikelihoodRatio::default(), Some(2.0 * 3600.0));
    // Every positive update on the unweighted dataset corresponds to an edge
    // appearing (weight 0 -> 1), every negative one to an edge disappearing.
    let mut graph = DynamicGraph::new();
    for u in &updates {
        graph.apply_update(u);
    }
    for (_, _, w) in graph.edges() {
        assert!((w - 1.0).abs() < 1e-6, "unexpected non-unit weight {w}");
    }

    // DynDens over the unweighted stream with T = 1 maintains cliques.
    let mut engine = DynDens::new(
        AvgWeight,
        DynDensConfig::new(1.0, 5).with_delta_it_fraction(0.5),
    );
    for u in &updates {
        engine.apply_update(*u);
    }
    engine.validate().unwrap();
    for (set, _) in engine.output_dense_subgraphs() {
        // Every reported subgraph is a clique in the thresholded graph.
        let members: Vec<VertexId> = set.iter().collect();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                assert!(engine.graph().weight(a, b) > 0.99, "{set} is not a clique");
            }
        }
    }
}

#[test]
fn story_pipeline_ranks_with_diversity() {
    let corpus = small_corpus();
    let mut pipeline = StoryPipeline::new(
        ChiSquareCorrelation::default(),
        2.0 * 3600.0,
        AvgWeight,
        DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.25),
    );
    for post in &corpus.posts {
        let names: Vec<String> = corpus.registry.describe(post.entities.iter().copied());
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        pipeline.ingest(post.timestamp, &refs);
    }
    let stories = pipeline.top_stories(6);
    assert!(!stories.is_empty());
    // Diversity ranking: the top two stories must not be near-duplicates.
    if stories.len() >= 2 {
        let overlap = stories[0].vertices.intersection_size(&stories[1].vertices);
        assert!(
            overlap < stories[0].vertices.len(),
            "top two stories are identical: {:?} / {:?}",
            stories[0].entities,
            stories[1].entities
        );
    }
    // Adjusted density ordering is non-increasing.
    for pair in stories.windows(2) {
        assert!(pair[0].adjusted_density >= pair[1].adjusted_density - 1e-9);
    }
}

#[test]
fn measure_choice_changes_the_update_stream_but_both_replay_consistently() {
    let corpus = small_corpus();
    let weighted = corpus.to_updates(ChiSquareCorrelation::default(), Some(2.0 * 3600.0));
    let unweighted = corpus.to_updates(LogLikelihoodRatio::default(), Some(2.0 * 3600.0));
    assert_ne!(weighted.len(), unweighted.len());

    // Replaying either stream leaves every weight non-negative.
    for updates in [&weighted, &unweighted] {
        let mut graph = DynamicGraph::new();
        for u in updates.iter() {
            graph.apply_update(u);
        }
        for (_, _, w) in graph.edges() {
            assert!(w >= -1e-9);
        }
    }
}
