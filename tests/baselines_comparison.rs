//! Cross-crate integration tests comparing DynDens against the baseline
//! algorithms on workload-generator streams (moderate scale versions of the
//! paper's Section 5.2 and 6.2 comparisons).

use dyndens::baselines::{recompute, BruteForce, Grasp, GraspConfig, StixCliques};
use dyndens::prelude::*;
use dyndens::workloads::{SyntheticConfig, SyntheticWorkload};

/// A small unweighted-style workload (boolean weights).
fn boolean_workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig::node_preferential_boolean(60, 1_500, 17))
}

#[test]
fn dyndens_all_cliques_match_stix_expansion() {
    // On an unweighted graph with AvgWeight and T = 1, Engagement asks for
    // all cliques of cardinality <= Nmax; Stix maintains the maximal cliques,
    // whose bounded-size subsets must coincide with DynDens' answer.
    let n_max = 4;
    let workload = boolean_workload();
    let mut engine = DynDens::with_vertex_capacity(
        AvgWeight,
        DynDensConfig::new(1.0, n_max).with_delta_it_fraction(0.5),
        workload.config().n_vertices,
    );
    let mut stix = StixCliques::new();
    for u in workload.updates() {
        engine.apply_update(*u);
        stix.apply_unweighted_update(u.a, u.b, u.is_positive());
    }
    engine.validate().unwrap();

    let mut dyndens_cliques: Vec<VertexSet> = engine
        .output_dense_subgraphs()
        .into_iter()
        .map(|(s, _)| s)
        .filter(|s| {
            // Exclude subgraphs only dense by virtue of very heavy edges; with
            // boolean weights every output-dense subgraph is a clique, but the
            // index may also track dense-but-not-output subgraphs we ignore.
            s.len() <= n_max
        })
        .collect();
    // Star-covered cliques (supersets of too-dense subgraphs) also count.
    let mut stix_cliques = stix.all_cliques_up_to(n_max);
    for clique in &stix_cliques {
        assert!(
            engine.is_tracked_dense(clique),
            "clique {clique} known to Stix is not tracked by DynDens"
        );
    }
    dyndens_cliques.retain(|s| stix_cliques.contains(s));
    dyndens_cliques.sort();
    stix_cliques.sort();
    // Every explicit DynDens output-dense subgraph must be one of Stix's
    // cliques (soundness in the other direction).
    for s in engine.output_dense_subgraphs().iter().map(|(s, _)| s) {
        assert!(stix_cliques.contains(s), "DynDens reports non-clique {s}");
    }
}

#[test]
fn grasp_recall_is_partial_but_precise() {
    let workload = SyntheticWorkload::generate(SyntheticConfig::near_clique(300, 4_000, 23));
    let n_max = 5;
    let threshold = 0.05;

    let mut engine = DynDens::with_vertex_capacity(
        AvgWeight,
        DynDensConfig::new(threshold, n_max).with_delta_it_fraction(0.3),
        workload.config().n_vertices,
    );
    let mut grasp = Grasp::new(
        AvgWeight,
        threshold,
        GraspConfig {
            iterations_per_update: 2,
            alpha: 0.5,
            n_max,
            seed: 7,
        },
    );
    for u in workload.updates() {
        engine.apply_update(*u);
        grasp.apply_update(*u);
    }
    engine.validate().unwrap();

    let truth: Vec<VertexSet> = engine
        .output_dense_subgraphs()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    assert!(
        !truth.is_empty(),
        "the workload should produce output-dense subgraphs"
    );

    // Precision: everything GRASP found is genuinely output-dense right now.
    let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, threshold, n_max, 0.01);
    for set in grasp.found() {
        let score = grasp.graph().score(set);
        assert!(
            fam.is_output_dense(score, set.len()),
            "GRASP false positive {set}"
        );
    }

    // Recall: positive but typically below 1 — GRASP samples the answer.
    let recall = grasp.recall_against(&truth);
    assert!(recall > 0.0, "GRASP found nothing");
    assert!(recall <= 1.0 + 1e-9);
}

#[test]
fn incremental_engine_matches_recompute_on_synthetic_streams() {
    for (seed, config) in [
        (1u64, SyntheticConfig::random(80, 2_000, 1)),
        (2, SyntheticConfig::edge_preferential(80, 2_000, 2)),
        (3, SyntheticConfig::node_preferential(80, 2_000, 3)),
    ] {
        let workload = SyntheticWorkload::generate(config);
        let engine_config = DynDensConfig::new(0.8, 5).with_delta_it_fraction(0.3);
        let mut incremental = DynDens::with_vertex_capacity(
            AvgWeight,
            engine_config.clone(),
            workload.config().n_vertices,
        );
        for u in workload.updates() {
            incremental.apply_update(*u);
        }
        incremental.validate().unwrap();
        let rebuilt = recompute(AvgWeight, engine_config, incremental.graph());
        // The reported set must coincide up to implicit representation: every
        // explicit answer of one engine is tracked by the other.
        for (set, _) in rebuilt.output_dense_subgraphs() {
            assert!(
                incremental.is_tracked_dense(&set),
                "seed {seed}: missing {set}"
            );
        }
        for (set, _) in incremental.output_dense_subgraphs() {
            assert!(
                rebuilt.is_tracked_dense(&set),
                "seed {seed}: spurious {set}"
            );
        }
    }
}

#[test]
fn threshold_update_agrees_with_recompute_on_synthetic_graphs() {
    // A smaller-scale version of the Section 6.2 experiment: run at T = 1.0,
    // then lower to 0.8 incrementally and compare against DynDensRecompute.
    let workload = SyntheticWorkload::generate(SyntheticConfig::random(60, 1_500, 10));
    let base = DynDensConfig::new(1.0, 5)
        .with_delta_it_fraction(0.3)
        .with_implicit_too_dense(false);
    let mut engine =
        DynDens::with_vertex_capacity(AvgWeight, base.clone(), workload.config().n_vertices);
    for u in workload.updates() {
        engine.apply_update(*u);
    }
    engine.set_output_threshold(0.8);
    engine.validate().unwrap();

    let lowered = DynDensConfig::new(0.8, 5)
        .with_delta_it_fraction(0.3)
        .with_implicit_too_dense(false);
    let reference = recompute(AvgWeight, lowered, engine.graph());
    let mut got: Vec<VertexSet> = engine
        .output_dense_subgraphs()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    let mut want: Vec<VertexSet> = reference
        .output_dense_subgraphs()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    got.sort();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn goldberg_densest_subgraph_is_at_least_as_dense_as_any_reported_story() {
    // Kept small: the brute-force oracle below enumerates every vertex subset
    // of cardinality up to Nmax, which is C(n, <=Nmax) subsets — a 200-vertex
    // graph with Nmax = 6 (the original seed scale) is ~10^10 subsets and
    // can never finish.
    let workload = SyntheticWorkload::generate(SyntheticConfig::near_clique(48, 1_200, 5));
    let mut graph = DynamicGraph::new();
    for u in workload.updates() {
        graph.apply_update(u);
    }
    let densest = dyndens::baselines::densest_subgraph(&graph, 1e-6).expect("graph has edges");
    // The offline Top-1 answer under S_n = n upper-bounds the AvgDegree
    // density of every subgraph, including anything DynDens would report.
    let fam = ThresholdFamily::with_delta_it_fraction(AvgDegree, 0.05, 4, 0.2);
    let dense = BruteForce::dense_subgraphs(&graph, &fam);
    for (set, score) in dense {
        let avg_degree_density = score / set.len() as f64;
        assert!(avg_degree_density <= densest.density + 1e-6);
    }
}
