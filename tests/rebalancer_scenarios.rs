//! Rebalancer policy behaviour under the adversary workloads, pinning the
//! production thresholds (60% split share, 5% merge share) against the two
//! scenarios they were designed for:
//!
//! * `flash_crowd` must **fire** the rebalancer — at least one split lands
//!   inside the burst window, none before it, and the fleet never merges
//!   while the burst is on;
//! * `adversarial_skew` must **not** cause a split storm — the windowed-rate
//!   hysteresis (the share window resets on every topology change, and a
//!   fresh window must fill before the next decision) caps an all-updates-
//!   in-one-class adversary at one split per re-established window.
//!
//! The decision cadence uses `scenario_policy`: the queue-depth trigger is
//! disabled (decisions are taken after `flush`, queues drained) so every
//! verdict is a deterministic function of the stream alone.

mod support;

use dyndens::prelude::*;
use dyndens::workloads::oracle::scenario_policy;
use dyndens::workloads::{AdversarialSkew, FlashCrowd, Workload};
use support::{engine_config, shard_config};

/// Ingests `updates` in `window`-sized tranches, consulting the rebalancer
/// after each; returns `(split_ends, merge_ends)` — the stream positions at
/// which a split/merge fired (splits are executed, merges only picked).
fn drive(updates: &[EdgeUpdate], window: usize) -> (Vec<(usize, usize)>, Vec<usize>) {
    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
    let mut rebalancer = Rebalancer::new(scenario_policy(window as u64));
    let mut splits = Vec::new();
    let mut merges = Vec::new();
    for (i, chunk) in updates.chunks(window).enumerate() {
        fleet.apply_batch(chunk);
        fleet.flush();
        let end = i * window + chunk.len();
        if let Some(slot) = rebalancer.pick(&fleet) {
            fleet.split_shard(slot).unwrap();
            splits.push((end, slot));
        }
        if rebalancer.pick_merge(&fleet).is_some() {
            merges.push(end);
        }
    }
    fleet.validate().unwrap();
    assert_eq!(fleet.stats().updates, updates.len() as u64);
    (splits, merges)
}

#[test]
fn flash_crowd_fires_the_rebalancer_inside_the_burst() {
    let workload = FlashCrowd::new(24_000, 2026);
    let updates = workload.updates();
    let burst = workload.burst_range();
    let window = 2_400;
    let (splits, merges) = drive(&updates, window);

    assert!(
        !splits.is_empty(),
        "the flash crowd must trip the skew trigger"
    );
    assert!(
        splits.len() <= 3,
        "split storm: {} splits from one burst: {splits:?}",
        splits.len()
    );
    for &(end, _) in &splits {
        assert!(
            end > burst.start,
            "split at stream position {end} predates the burst ({burst:?})"
        );
    }
    // The first split lands while the crowd is still flashing: within one
    // decision window of the first window fully inside the burst.
    let first = splits[0].0;
    assert!(
        first <= burst.end + window,
        "first split at {first} came only after the burst ({burst:?}) cooled"
    );
    // Hysteresis on the way down: the hot child is never merged back while
    // the burst is still running.
    assert!(
        merges.iter().all(|&end| end > burst.end),
        "merged mid-burst: {merges:?} (burst {burst:?})"
    );
}

#[test]
fn adversarial_skew_does_not_cause_a_split_storm() {
    let workload = AdversarialSkew::new(24_000, 2026);
    let updates = workload.updates();
    let window = 6_000;
    let (splits, merges) = drive(&updates, window);

    // The skew is absolute (100% of updates in one class), so the trigger
    // must fire...
    assert!(
        !splits.is_empty(),
        "an all-in-one-class adversary must trip the skew trigger"
    );
    // ...but the window reset on every topology change caps the storm: with
    // 4 decision points, at most every *other* one can split (establish,
    // split, re-establish, split).
    assert!(
        splits.len() <= 2,
        "split storm: {} splits in 4 windows: {splits:?}",
        splits.len()
    );
    // Every split targets the one shard that owns the adversary's class —
    // class 0 keeps routing bit 0 at every depth, so the hot slot never
    // changes.
    assert!(
        splits.iter().all(|&(_, slot)| slot == 0),
        "split picked a cold shard: {splits:?}"
    );
    // Consecutive splits are at least one full window apart (hysteresis).
    for pair in splits.windows(2) {
        assert!(
            pair[1].0 - pair[0].0 >= 2 * window,
            "back-to-back splits without a re-established window: {splits:?}"
        );
    }
    // The near-empty split children never lure the policy into merging:
    // their hot sibling disqualifies every candidate pair.
    assert!(merges.is_empty(), "merged under absolute skew: {merges:?}");
}
