//! Property tests over the post → update pipeline and across-crate invariants.

use dyndens::prelude::*;
use dyndens::stream::{
    AssociationMeasure, ChiSquareCorrelation, EdgeUpdateGenerator, LogLikelihoodRatio, Post,
};
use proptest::prelude::*;

/// Strategy for small random posts over a bounded entity universe.
fn posts_strategy(n_entities: u32, max_posts: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0..n_entities, 0..4usize),
        1..max_posts,
    )
}

fn to_posts(raw: &[Vec<u32>]) -> Vec<Post> {
    raw.iter()
        .enumerate()
        .map(|(i, ids)| Post::new(i as f64 * 60.0, ids.iter().map(|&v| VertexId(v)).collect()))
        .collect()
}

fn check_pipeline<M: AssociationMeasure>(measure: M, posts: &[Post]) {
    let mut generator = EdgeUpdateGenerator::new(measure, 2.0 * 3600.0);
    let mut graph = DynamicGraph::new();
    let mut engine = DynDens::new(
        AvgWeight,
        DynDensConfig::new(0.5, 4).with_delta_it_fraction(0.3),
    );
    for post in posts {
        for update in generator.process_post(post) {
            // Updates are always well-formed and keep weights non-negative.
            assert!(update.delta.is_finite());
            let (_, new_weight) = graph.apply_update(&update);
            assert!(new_weight >= -1e-9, "weight went negative: {new_weight}");
            assert!(
                new_weight <= 1.0 + 1e-6,
                "association weights are bounded by 1"
            );
            engine.apply_update(update);
        }
    }
    // The generator's emitted view, the replayed graph and the engine's graph
    // all agree.
    for (a, b, w) in graph.edges() {
        assert!((generator.current_weight(a, b) - w).abs() < 1e-9);
        assert!((engine.graph().weight(a, b) - w).abs() < 1e-9);
    }
    engine.validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn chi_square_pipeline_keeps_engine_consistent(raw in posts_strategy(12, 60)) {
        check_pipeline(ChiSquareCorrelation::default(), &to_posts(&raw));
    }

    #[test]
    fn llr_pipeline_keeps_engine_consistent(raw in posts_strategy(12, 60)) {
        check_pipeline(LogLikelihoodRatio::default(), &to_posts(&raw));
    }

    /// The association weight of a pair never exceeds 1 and is 0 whenever the
    /// pair never co-occurred.
    #[test]
    fn weights_are_bounded_and_zero_without_cooccurrence(raw in posts_strategy(10, 60)) {
        let posts = to_posts(&raw);
        let mut generator = EdgeUpdateGenerator::without_decay(ChiSquareCorrelation::default());
        let mut cooccurred = std::collections::BTreeSet::new();
        for post in &posts {
            for (a, b) in post.entity_pairs() {
                cooccurred.insert((a.min(b), a.max(b)));
            }
            generator.process_post(post);
        }
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let w = generator.current_weight(VertexId(a), VertexId(b));
                prop_assert!((0.0..=1.0 + 1e-9).contains(&w));
                if !cooccurred.contains(&(VertexId(a), VertexId(b))) {
                    prop_assert_eq!(w, 0.0);
                }
            }
        }
    }

    /// Events are consistent with the reported set: replaying the events of a
    /// stream reconstructs exactly the engine's explicit output-dense set.
    #[test]
    fn event_stream_reconstructs_output_dense_set(raw in posts_strategy(10, 50)) {
        let posts = to_posts(&raw);
        let mut generator = EdgeUpdateGenerator::without_decay(ChiSquareCorrelation::default());
        let mut engine = DynDens::new(AvgWeight, DynDensConfig::new(0.5, 4).with_delta_it_fraction(0.3));
        let mut reported: std::collections::BTreeSet<VertexSet> = Default::default();
        for post in &posts {
            for update in generator.process_post(post) {
                for event in engine.apply_update(update) {
                    match event {
                        DenseEvent::BecameOutputDense { vertices, .. } => {
                            prop_assert!(reported.insert(vertices), "duplicate Became event");
                        }
                        DenseEvent::NoLongerOutputDense { vertices, .. } => {
                            prop_assert!(reported.remove(&vertices), "unmatched NoLonger event");
                        }
                    }
                }
            }
        }
        let explicit: std::collections::BTreeSet<VertexSet> =
            engine.output_dense_subgraphs().into_iter().map(|(s, _)| s).collect();
        // Every explicitly reported subgraph appears in the event-derived set;
        // the event set may additionally contain star-covered subgraphs that
        // were reported before becoming implicit.
        for set in &explicit {
            prop_assert!(
                reported.contains(set) || engine.covered_by_star(set),
                "{} missing from the event ledger", set
            );
        }
        for set in &reported {
            prop_assert!(engine.is_tracked_dense(set), "{} in ledger but not tracked", set);
        }
    }
}
