//! MANIFEST backend pinning: a persistence directory is written by exactly
//! one maintenance backend, and reopening it under any other blueprint must
//! fail with the typed [`RecoveryError::ManifestMismatch`] on the `engine
//! kind` field — *before* any checkpoint bytes are fed to the wrong
//! engine's decoder and before anything on disk is touched. A failed open
//! must leave the directory fully usable by the backend that owns it: no
//! corruption, no silent rebuild from an empty state.

mod support;

use dyndens::prelude::*;
use dyndens::shard::RecoveryError;
use support::{engine_config, persistence, shard_config, sorted_bits, temp_dir, CHUNK};

/// The deployment's answers with densities as raw bits.
fn answers<B: EngineBlueprint>(fleet: &ShardedFleet<B>) -> Vec<(VertexSet, u64)> {
    sorted_bits(fleet.output_dense())
}

/// Ingests a short aligned stream into a fresh persistent deployment of
/// `blueprint`, returning its answers at shutdown.
fn seed_directory<B: EngineBlueprint>(
    blueprint: B,
    dir: &std::path::Path,
    updates: &[EdgeUpdate],
) -> Vec<(VertexSet, u64)> {
    let mut fleet =
        ShardedFleet::with_backend_persistence(blueprint, shard_config(2), persistence(dir))
            .expect("fresh persistent deployment");
    for chunk in updates.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();
    answers(&fleet)
}

/// Asserts that reopening `dir` under `blueprint` fails with the typed
/// engine-kind mismatch (not an I/O error, not a decode error, and above
/// all not a fresh deployment over the foreign directory).
fn assert_kind_refused<B: EngineBlueprint>(blueprint: B, dir: &std::path::Path) {
    let kind = blueprint.kind();
    match ShardedFleet::with_backend_persistence(blueprint, shard_config(2), persistence(dir)) {
        Err(RecoveryError::ManifestMismatch {
            field: "engine kind",
        }) => {}
        Err(other) => panic!("reopen as {kind}: wrong error: {other}"),
        Ok(_) => panic!("reopen as {kind}: foreign directory was accepted"),
    }
}

#[test]
fn dyndens_directory_refuses_other_backends() {
    let updates = support::shard_aligned_stream(2_000, 8, 2012);
    let dir = temp_dir("manifest-dyndens");
    let want = seed_directory(
        DynDensBlueprint::new(AvgWeight, engine_config()),
        &dir,
        &updates,
    );
    assert!(!want.is_empty(), "degenerate seed stream");

    assert_kind_refused(
        TopKPeelingBlueprint::new(AvgWeight, engine_config(), 4),
        &dir,
    );
    assert_kind_refused(RecomputeBlueprint::new(AvgWeight, engine_config(), 1), &dir);

    // The failed opens left the directory intact: the owning backend
    // recovers the exact pre-shutdown state.
    let recovered = ShardedFleet::with_backend_persistence(
        DynDensBlueprint::new(AvgWeight, engine_config()),
        shard_config(2),
        persistence(&dir),
    )
    .expect("owning backend must still recover after refused opens");
    assert_eq!(recovered.stats().updates, updates.len() as u64);
    assert_eq!(answers(&recovered), want, "recovered answers diverge");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn topk_directory_refuses_other_backends_and_pins_params() {
    let updates = support::shard_aligned_stream(2_000, 8, 2012);
    let dir = temp_dir("manifest-topk");
    let blueprint = || TopKPeelingBlueprint::new(AvgWeight, engine_config(), 4);
    let want = seed_directory(blueprint(), &dir, &updates);
    assert!(!want.is_empty(), "degenerate seed stream");

    assert_kind_refused(DynDensBlueprint::new(AvgWeight, engine_config()), &dir);
    assert_kind_refused(RecomputeBlueprint::new(AvgWeight, engine_config(), 1), &dir);

    // Same kind, different answer-relevant parameter (k): also pinned, as
    // its own field so the operator sees *what* diverged.
    match ShardedFleet::with_backend_persistence(
        TopKPeelingBlueprint::new(AvgWeight, engine_config(), 8),
        shard_config(2),
        persistence(&dir),
    ) {
        Err(RecoveryError::ManifestMismatch {
            field: "engine config",
        }) => {}
        Err(other) => panic!("reopen with k=8: wrong error: {other}"),
        Ok(_) => panic!("reopen with k=8: mismatched params were accepted"),
    }

    let recovered =
        ShardedFleet::with_backend_persistence(blueprint(), shard_config(2), persistence(&dir))
            .expect("owning backend must still recover after refused opens");
    assert_eq!(recovered.stats().updates, updates.len() as u64);
    assert_eq!(answers(&recovered), want, "recovered answers diverge");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
