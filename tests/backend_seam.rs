//! Property tests over the [`MaintenanceEngine`] seam itself: for random
//! small update streams, **every** pluggable backend must honour the two
//! contracts the sharded subsystem leans on —
//!
//! 1. `snapshot` → `restore` → `snapshot` reproduces the same bytes
//!    (byte-stable round trip), and the restored engine answers identically
//!    to the original;
//! 2. `partition_by` followed by `absorb` is the identity on graph weight
//!    bits and on every maintained subgraph's score bits (the invariant the
//!    WAL-journaled rebalance commit protocol assumes).
//!
//! The suites above (`sharded_equivalence`, `wal_replay`,
//! `rebalance_equivalence`) check these contracts through full deployments
//! on structured streams; this file attacks the seam directly with
//! adversarial random streams, including exact weight cancellations.
//!
//! Scope note on splits: the structural backends (`dyndens`,
//! `topk-peeling`) copy state bit-for-bit through `partition_by`/`absorb`,
//! so their identity holds for **any** predicate, including splits that cut
//! straight through a maintained subgraph — and that is what they are
//! tested with here. The `recompute` backend replays its journaled update
//! log, and `absorb` concatenates the children's logs; replay order across
//! a connected component that straddles the split would differ from the
//! parent's interleaving, which is outside the contract — the rebalance
//! planner only ever splits along ownership boundaries that keep components
//! whole (the regime the paper's exactness argument covers). Its streams
//! are therefore generated split-aligned, exactly like production splits.

mod support;

use std::collections::HashMap;

use dyndens::prelude::*;
use proptest::prelude::*;
use support::engine_config;

/// Deltas drawn from exactly-representable multiples of 0.25 so that bit
/// comparisons exercise real accumulation, including partial and complete
/// cancellations.
const DELTAS: [f64; 7] = [0.25, 0.5, 0.75, 1.25, 2.0, -0.25, -0.75];

/// Number of vertices in the random universe.
const N_VERTICES: u32 = 12;

/// Strategy: raw `(a, b, delta index)` triples over the vertex universe,
/// plus a split point for the partition predicate (including both
/// degenerate "keep everything" / "keep nothing" splits). The raw triples
/// are turned into a valid stream by [`realize`].
fn seam_inputs() -> impl Strategy<Value = (Vec<(u32, u32, usize)>, u32)> {
    (
        prop::collection::vec(
            (0u32..N_VERTICES, 0u32..N_VERTICES, 0usize..DELTAS.len()),
            1..60,
        ),
        0u32..N_VERTICES + 1,
    )
}

/// Turns raw triples into a well-formed update stream: self-loops are
/// dropped and negative deltas are clamped so no edge weight ever goes
/// below zero (clamping to the exact accumulated weight keeps complete
/// cancellations in play, which is where bit-level bugs hide). With
/// `align = Some(s)`, edges are additionally remapped to keep both
/// endpoints on one side of `s`, so no connected component ever straddles
/// the `v < s` split — the production rebalance regime.
fn realize(raw: &[(u32, u32, usize)], align: Option<u32>) -> Vec<EdgeUpdate> {
    let mut weights: HashMap<(u32, u32), f64> = HashMap::new();
    let mut updates = Vec::new();
    for &(a, b, d) in raw {
        let mut b = b;
        if let Some(s) = align {
            if s > 0 && s < N_VERTICES && (a < s) != (b < s) {
                b = if a < s {
                    b % s
                } else {
                    s + b % (N_VERTICES - s)
                };
            }
        }
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let w = weights.entry(key).or_insert(0.0);
        let mut delta = DELTAS[d];
        if delta < 0.0 {
            if *w <= 0.0 {
                delta = -delta;
            } else if *w + delta < 0.0 {
                delta = -*w;
            }
        }
        *w += delta;
        updates.push(EdgeUpdate::new(VertexId(key.0), VertexId(key.1), delta));
    }
    updates
}

/// The graph's full weight state with weights as raw bits, sorted.
fn graph_bits(graph: &DynamicGraph) -> Vec<(VertexId, VertexId, u64)> {
    let mut edges: Vec<_> = graph.edges().map(|(a, b, w)| (a, b, w.to_bits())).collect();
    edges.sort_unstable();
    edges
}

/// The maintained family with scores as raw bits, sorted by vertex set.
fn answer_bits<E: MaintenanceEngine>(engine: &mut E) -> Vec<(VertexSet, u64)> {
    support::sorted_bits(engine.dense_subgraphs())
}

/// Runs both seam contracts for one backend on one stream.
fn check_seam<B: EngineBlueprint>(blueprint: &B, updates: &[EdgeUpdate], split: u32) {
    let mut engine = blueprint.fresh();
    let mut sink = Vec::new();
    for u in updates {
        engine.apply_update_into(*u, &mut sink);
        sink.clear();
    }
    engine.validate().unwrap_or_else(|e| {
        panic!("{}: engine invalid after ingest: {e}", blueprint.kind());
    });
    let want_graph = graph_bits(engine.graph());
    let want_answer = answer_bits(&mut engine);
    let want_updates = engine.stats().updates;

    // Contract 1: snapshot → restore → snapshot is byte-stable, and the
    // restored engine is indistinguishable from the original.
    let bytes = engine.snapshot();
    let mut restored = blueprint
        .restore(&bytes)
        .unwrap_or_else(|e| panic!("{}: restore failed: {e}", blueprint.kind()));
    assert_eq!(
        restored.snapshot(),
        bytes,
        "{}: snapshot round trip is not byte-stable",
        blueprint.kind()
    );
    assert_eq!(
        graph_bits(restored.graph()),
        want_graph,
        "{}: restored graph weight bits diverge",
        blueprint.kind()
    );
    assert_eq!(
        answer_bits(&mut restored),
        want_answer,
        "{}: restored score bits diverge",
        blueprint.kind()
    );
    assert_eq!(restored.stats().updates, want_updates);

    // Contract 2: partition_by + absorb is the identity on graph weight
    // bits and maintained score bits. The contract covers the children's
    // *union*: a child in isolation may be transiently inconsistent when
    // the split cuts a stored subgraph (it follows its minimum vertex, some
    // of its edges may not), so the children are deliberately not validated
    // here — only the reunited engine is.
    let (mut kept, other) = engine.partition_by(&mut |v| v.0 < split);
    kept.absorb(other);
    assert_eq!(
        graph_bits(kept.graph()),
        want_graph,
        "{}: partition_by + absorb changed graph weight bits",
        blueprint.kind()
    );
    assert_eq!(
        answer_bits(&mut kept),
        want_answer,
        "{}: partition_by + absorb changed maintained score bits",
        blueprint.kind()
    );
    kept.validate().unwrap_or_else(|e| {
        panic!("{}: reunited engine invalid: {e}", blueprint.kind());
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn dyndens_seam_contracts_hold(inputs in seam_inputs()) {
        let (raw, split) = inputs;
        check_seam(
            &DynDensBlueprint::new(AvgWeight, engine_config()),
            &realize(&raw, None),
            split,
        );
    }

    #[test]
    fn recompute_seam_contracts_hold(inputs in seam_inputs()) {
        let (raw, split) = inputs;
        let updates = realize(&raw, Some(split));
        check_seam(
            &RecomputeBlueprint::new(AvgWeight, engine_config(), 1),
            &updates,
            split,
        );
        // A sparser cadence must satisfy the same contracts (snapshots carry
        // the cadence; stale caches are dropped across the seam).
        check_seam(
            &RecomputeBlueprint::new(AvgWeight, engine_config(), 5),
            &updates,
            split,
        );
    }

    #[test]
    fn topk_peeling_seam_contracts_hold(inputs in seam_inputs()) {
        let (raw, split) = inputs;
        check_seam(
            &TopKPeelingBlueprint::new(AvgWeight, engine_config(), 4),
            &realize(&raw, None),
            split,
        );
    }
}
