//! End-to-end serving equivalence: a TCP client that follows `Poll` deltas
//! must reconstruct story sets **byte-identical** to what an in-process
//! [`StoryView`] reader observes, on the same 50k-update partition-aligned
//! stream the sharded-equivalence suite uses — both when polling continuously
//! during ingest (the delta path) and when joining late (the resync path).
//!
//! The oracle's serve leg (see `dyndens_workloads::oracle`) runs the pushed
//! subscription path on every workload; this suite keeps the poll-driven
//! follower, the wire-level top-k/stats/error checks, and the
//! subscription-across-split scenario.

mod support;

use dyndens::prelude::*;
use dyndens::serve::{Client, Mirror, ShardPoll, StoryServer};
use std::time::Duration;
use support::{canonical_stream, engine_config, serve_shard_config, sorted_sets};

#[test]
fn polling_client_reconstructs_story_sets_on_50k_stream() {
    let updates = canonical_stream();
    // Untruncated top-k publication + small retention (see
    // `support::serve_shard_config`): resync snapshots are complete, so the
    // reconstruction claim is exact, while a late joiner genuinely exercises
    // the resync path below. A continuously-polling follower (one poll per
    // 512-update chunk) stays comfortably covered by the retention.
    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), serve_shard_config(2));
    let server = StoryServer::bind("127.0.0.1:0", fleet.view()).unwrap();
    let addr = server.local_addr();

    // Mirror A polls concurrently with ingest: it advances almost entirely
    // through contiguous delta suffixes.
    let mut client = Client::builder().connect(addr).unwrap();
    let mut follower = Mirror::new();
    for chunk in updates.chunks(512) {
        fleet.apply_batch(chunk);
        follower.poll(&mut client).unwrap();
    }
    fleet.flush();
    while follower.poll(&mut client).unwrap() {}
    assert!(
        follower.events_applied() > 0,
        "an actively-following cursor should advance through delta suffixes"
    );

    // Precondition of exact delta-reconstruction (same as the sharded
    // equivalence suite): the workload stays below the too-dense regime, so
    // every output-dense subgraph is explicitly materialised and evented.
    let stats = fleet.stats();
    assert_eq!(stats.star_markers_created, 0);
    assert_eq!(stats.updates, updates.len() as u64);

    // Ground truth: the in-process view (untruncated top_k ⇒ the full sets).
    let view = fleet.view();
    let merged = view.snapshot();
    assert_eq!(merged.seq, updates.len() as u64);
    let want = sorted_sets(merged.stories.clone());
    assert!(
        want.len() >= 10,
        "degenerate workload: {} stories",
        want.len()
    );

    // The delta-following mirror reconstructs the identical story sets.
    let got = follower.story_sets();
    assert_eq!(
        follower.vertex_sets(),
        want.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>(),
        "delta-followed story sets diverge from the in-process view"
    );
    assert_eq!(got.len(), want.len());
    assert_eq!(follower.cursor().iter().sum::<u64>(), updates.len() as u64);

    // A late joiner is told to resync (its cursor predates retention), and
    // lands on the same sets — including byte-identical densities, since a
    // resync snapshot carries the engine's current scores.
    let (_, entries) = client.poll(&[0, 0]).unwrap();
    assert!(
        entries
            .iter()
            .any(|e| matches!(e, ShardPoll::Resync { .. })),
        "a cursor behind the retention bound must be resynced"
    );
    let mut late = Mirror::new();
    while late.poll(&mut client).unwrap() {}
    let late_sets = late.story_sets();
    assert_eq!(late_sets.len(), want.len());
    for ((gs, gd), (ws, wd)) in late_sets.iter().zip(&want) {
        assert_eq!(gs, ws);
        assert_eq!(gd.to_bits(), wd.to_bits(), "score bits diverge on {gs}");
    }

    // The TopK path serves the merged view byte-identically.
    let (per_shard_seq, stories) = client.top_k(u32::MAX).unwrap();
    assert_eq!(per_shard_seq, merged.per_shard_seq);
    assert_eq!(stories.len(), merged.stories.len());
    for (wire, (set, density)) in stories.iter().zip(&merged.stories) {
        assert_eq!(&wire.vertices, set);
        assert_eq!(wire.density.to_bits(), density.to_bits());
        assert!(wire.entities.is_empty(), "no name table was published");
    }

    // And the stats path reports the merged work ledger plus the serving
    // layer's own counters (this connection made every request counted).
    let (wire_stats, serve_stats, shard_stats) = client.stats().unwrap();
    assert_eq!(wire_stats, view.stats());
    assert!(serve_stats.requests_served > 0);
    assert!(serve_stats.conns_accepted >= 1);
    assert!(
        serve_stats.resyncs_served >= 1,
        "the late joiner above was resynced"
    );
    assert_eq!(shard_stats.len(), 2);
    assert_eq!(
        shard_stats.iter().map(|s| s.seq).sum::<u64>(),
        updates.len() as u64
    );
    for s in &shard_stats {
        let from = s.delta_coverage_from.expect("shards have published");
        assert!(from > 0, "retention should have evicted early batches");
        assert!(from < s.seq);
    }
}

#[test]
fn named_stories_and_error_replies() {
    let mut fleet = ShardedDynDens::new(
        AvgWeight,
        DynDensConfig::new(1.0, 4),
        ShardConfig::new(2).with_shard_fn(ShardFn::Modulo),
    );
    let server = StoryServer::bind("127.0.0.1:0", fleet.view()).unwrap();
    server
        .names()
        .publish(vec!["NATO".into(), "Libya".into(), "Sony".into()]);
    fleet.apply_batch(&[
        EdgeUpdate::new(VertexId(0), VertexId(2), 1.5),
        EdgeUpdate::new(VertexId(1), VertexId(3), 1.5),
    ]);
    fleet.flush();

    let mut client = Client::builder().connect(server.local_addr()).unwrap();
    let (_, stories) = client.top_k(10).unwrap();
    assert_eq!(stories.len(), 2);
    let all_entities: Vec<String> = stories.iter().flat_map(|s| s.entities.clone()).collect();
    assert!(all_entities.contains(&"NATO".to_string()));
    assert!(
        all_entities.contains(&"entity#3".to_string()),
        "vertices beyond the published table fall back to ids: {all_entities:?}"
    );

    // A cursor of the wrong length means the reader's topology is stale
    // (e.g. it predates a shard split): the server treats it as a bootstrap
    // cursor and rebases every shard in the same reply, no error round-trip.
    let (n_shards, entries) = client.poll(&[7, 7, 7]).unwrap();
    assert_eq!(n_shards, 2);
    assert_eq!(entries.len(), 2, "every shard rebases the stale reader");
    let (n_shards, _) = client.poll(&[0, 0]).unwrap();
    assert_eq!(n_shards, 2);
}

/// The push path under a topology change: a subscriber that registered on a
/// 2-shard fleet keeps its mirrored story sets byte-identical to the
/// in-process [`StoryView`] across a mid-stream `split_shard`, honoring the
/// resync directive the server pushes when the shard count changes — without
/// ever re-registering.
#[test]
fn subscriber_mirror_survives_a_mid_stream_shard_split() {
    let updates = support::shard_aligned_stream(16_000, 8, 77);
    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), serve_shard_config(2));
    let server = StoryServer::builder(fleet.view())
        .workers(2)
        .bind("127.0.0.1:0")
        .unwrap();

    let client = Client::builder()
        .read_timeout(Some(Duration::from_secs(60)))
        .connect(server.local_addr())
        .unwrap();
    let mut sub = client.subscribe(&[]).unwrap();
    let mut mirror = Mirror::new();

    // First half on the 2-shard topology, draining pushes as they arrive.
    let (head, tail) = updates.split_at(8_000);
    for chunk in head.chunks(512) {
        fleet.apply_batch(chunk);
        while let Some(batch) = sub.try_next().unwrap() {
            mirror.apply(&batch).unwrap();
        }
    }
    fleet.flush();
    let target = fleet.view().per_shard_seq();
    while mirror.cursor() != target.as_slice() {
        let batch = sub.recv().unwrap().expect("server alive");
        mirror.apply(&batch).unwrap();
    }
    assert_eq!(mirror.cursor().len(), 2);

    // Mid-stream topology change: the server must rebase the live
    // subscription onto the 3-shard cursor via pushed resyncs.
    let report = fleet.split_shard(0).unwrap();
    assert_eq!(report.new_slot, 2);
    let resyncs_before = mirror.resyncs();

    for chunk in tail.chunks(512) {
        fleet.apply_batch(chunk);
        while let Some(batch) = sub.try_next().unwrap() {
            mirror.apply(&batch).unwrap();
        }
    }
    fleet.flush();
    let target = fleet.view().per_shard_seq();
    assert_eq!(target.len(), 3, "the split took");
    while mirror.cursor() != target.as_slice() {
        let batch = sub.recv().unwrap().expect("server alive");
        mirror.apply(&batch).unwrap();
    }
    assert!(
        mirror.resyncs() > resyncs_before,
        "the topology change must have resynced the subscriber"
    );

    // Exactness: the pushed mirror's story sets are byte-identical to what
    // an in-process reader sees after the split.
    let merged = fleet.view().snapshot();
    let want = sorted_sets(merged.stories.clone());
    assert_eq!(
        mirror.vertex_sets(),
        want.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>(),
        "subscriber story sets diverge from the in-process view across the split"
    );
    assert!(mirror.events_applied() > 0, "the delta path was exercised");

    let stats = server.serve_stats();
    assert!(stats.pushes_sent > 0);
    assert_eq!(stats.slow_evictions, 0);
}
