//! Shared fixtures for the repository-level equivalence suites.
//!
//! Every suite drives the same canonical partition-aligned stream through
//! the same canonical engine/shard configuration; the definitions live in
//! `dyndens_workloads::oracle` (the differential oracle uses them too) and
//! this module re-exports them next to the handful of purely test-side
//! helpers (temp dirs, persistence cadences, f64-keyed sorting).

// Each integration-test binary compiles this module independently and uses
// its own slice of the helpers.
#![allow(dead_code)]
#![allow(unused_imports)]

use std::path::{Path, PathBuf};

use dyndens::prelude::*;

pub use dyndens::workloads::oracle::{engine_config, shard_config, sorted_bits};
pub use dyndens::workloads::{shard_aligned_stream, Backend, Leg, Oracle, ALL_BACKENDS};

/// Canonical stream length of the equivalence suites.
pub const N_UPDATES: usize = 50_000;
/// Canonical ingest chunk (matches the oracle's).
pub const CHUNK: usize = 256;

/// The canonical 50k-update partition-aligned stream (alignment 8, the
/// paper's publication year as seed) every equivalence suite ingests.
pub fn canonical_stream() -> Vec<EdgeUpdate> {
    shard_aligned_stream(N_UPDATES, 8, 2012)
}

/// Drives `scenario` once per pluggable maintenance backend — the
/// parameterization hook of the equivalence suites. The shared deployment
/// bodies live in the differential oracle (`Oracle::run_backend_legs`);
/// each suite passes a closure that picks its legs and asserts the report,
/// so adding a backend extends every suite without touching their bodies.
pub fn for_each_backend(mut scenario: impl FnMut(Backend)) {
    for backend in ALL_BACKENDS {
        scenario(backend);
    }
}

/// A shorter canonical stream for backend-parameterized runs: the
/// `recompute` backend's published reads replay its whole update log (cost
/// quadratic in stream length at its cadence of 1), so the parameterized
/// suites drive 8k updates instead of the canonical 50k.
pub fn backend_stream() -> Vec<EdgeUpdate> {
    shard_aligned_stream(8_000, 8, 2012)
}

/// The canonical serving-layer shard configuration: untruncated top-k (so
/// resync snapshots carry the full per-shard story sets) and a retention
/// far below the stream's publication count (so late joiners genuinely
/// exercise the resync path).
pub fn serve_shard_config(n_shards: usize) -> ShardConfig {
    shard_config(n_shards)
        .with_top_k(usize::MAX)
        .with_delta_retention(16)
}

/// Story sets sorted by vertex set, densities kept as `f64`.
pub fn sorted_sets(mut sets: Vec<(VertexSet, f64)>) -> Vec<(VertexSet, f64)> {
    sets.sort_by(|a, b| a.0.cmp(&b.0));
    sets
}

/// A per-test temp dir, cleared of any previous run's leftovers.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dyndens-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canonical crash-recovery persistence setup: no fsync (the tests kill
/// the process politely), a snapshot every 8 batches, small WAL segments so
/// rotation is exercised.
pub fn persistence(dir: &Path) -> PersistenceConfig {
    PersistenceConfig::new(dir)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshot_every_batches(8)
        .with_segment_max_bytes(64 << 10)
}

/// Persistence with a custom snapshot cadence (the rebalance suite uses a
/// sparser cadence so split checkpoints dominate WAL-slice replay).
pub fn persistence_every(dir: &Path, snapshot_every_batches: usize) -> PersistenceConfig {
    PersistenceConfig::new(dir)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshot_every_batches(snapshot_every_batches)
}
