//! Crash-recovery equivalence: killing a persistent sharded deployment after
//! an arbitrary batch and recovering it (latest snapshot + WAL tail replay)
//! must reproduce the **bit-identical** maintenance state of a deployment
//! that never crashed — for a crash right at the start, in the middle, and
//! at the very end of the 50k-update partition-aligned stream.
//!
//! "Bit-identical" is literal: every maintained subgraph's score and every
//! served story's density must carry the same `f64` bit pattern, which the
//! engine guarantees by canonicalising its exploration order and
//! serialising scores as raw bits (see `dyndens_core::snapshot`).

mod support;

use dyndens::prelude::*;
use support::{canonical_stream, engine_config, persistence, shard_config, temp_dir, CHUNK};

/// The two quantities the acceptance criterion compares, with scores as raw
/// bits so equality is bit-equality.
struct Answer {
    dense: Vec<(VertexSet, u64)>,
    top_stories: Vec<(VertexSet, u64)>,
}

fn answer(deployment: &ShardedDynDens<AvgWeight>) -> Answer {
    let mut dense: Vec<(VertexSet, u64)> = deployment
        .dense_subgraphs()
        .into_iter()
        .map(|(s, score)| (s, score.to_bits()))
        .collect();
    dense.sort();
    let top_stories = deployment
        .view()
        .snapshot()
        .stories
        .into_iter()
        .map(|(s, d)| (s, d.to_bits()))
        .collect();
    Answer { dense, top_stories }
}

#[test]
fn crash_at_any_batch_then_recover_equals_never_crashed() {
    let updates = canonical_stream();
    let chunks: Vec<&[EdgeUpdate]> = updates.chunks(CHUNK).collect();

    // Ground truth: an uninterrupted (non-persistent) deployment.
    let mut uninterrupted = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
    for chunk in &chunks {
        uninterrupted.apply_batch(chunk);
    }
    uninterrupted.validate().unwrap();
    let want = answer(&uninterrupted);
    assert!(
        want.dense.len() >= 10 && !want.top_stories.is_empty(),
        "degenerate workload"
    );

    // Kill points: right after the first batch, mid-stream, and after the
    // final batch (recovery must also cope with "nothing left to ingest").
    let kill_points = [1usize, chunks.len() / 2, chunks.len()];
    for (label, k) in ["first", "middle", "last"].iter().zip(kill_points) {
        let dir = temp_dir(&format!("walreplay-{label}"));

        // Phase 1: ingest the first k batches, then crash. Dropping the
        // facade without any shutdown checkpoint leaves exactly what a kill
        // leaves behind: the WAL (written before each apply) and whatever
        // snapshots the cadence produced.
        {
            let mut doomed = ShardedDynDens::with_persistence(
                AvgWeight,
                engine_config(),
                shard_config(2),
                persistence(&dir),
            )
            .expect("fresh persistent deployment");
            for chunk in &chunks[..k] {
                doomed.apply_batch(chunk);
            }
            doomed.flush();
        }

        // Phase 2: recover and ingest the rest of the stream.
        let mut recovered = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(&dir),
        )
        .unwrap_or_else(|e| panic!("kill at {label} batch: recovery failed: {e}"));
        let ingested_before_crash: u64 = chunks[..k].iter().map(|c| c.len() as u64).sum();
        let reports = recovered.recovery_reports().to_vec();
        assert_eq!(
            reports.iter().map(|r| r.recovered_seq).sum::<u64>(),
            ingested_before_crash,
            "kill at {label}: recovery must account for every pre-crash update"
        );
        for chunk in &chunks[k..] {
            recovered.apply_batch(chunk);
        }
        recovered.validate().unwrap();

        // Byte-identical dense subgraphs and top-k stories.
        let got = answer(&recovered);
        assert_eq!(
            got.dense.len(),
            want.dense.len(),
            "kill at {label}: dense family size diverged"
        );
        for ((gs, gd), (ws, wd)) in got.dense.iter().zip(&want.dense) {
            assert_eq!(gs, ws, "kill at {label}: dense sets diverge");
            assert_eq!(
                gd, wd,
                "kill at {label}: score bits diverge on {gs} ({gd:x} vs {wd:x})"
            );
        }
        assert_eq!(
            got.top_stories, want.top_stories,
            "kill at {label}: served top-k stories diverge"
        );

        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn every_backend_recovers_bit_identically_after_a_crash() {
    // The backend-parameterized run: for every pluggable maintenance
    // backend, kill-and-recover mid-stream (newest snapshot + WAL tail
    // replay under that backend's own checkpoint format) must match a
    // never-crashed single engine of the same backend bit for bit.
    let oracle = support::Oracle::from_updates("canonical-8k", support::backend_stream());
    support::for_each_backend(|backend| {
        oracle
            .run_backend_legs(backend, &[support::Leg::Recovery])
            .assert_passed();
    });
}

#[test]
fn recovered_stats_do_not_double_count_replayed_updates() {
    // The BENCH_shard throughput ledgers merge per-shard EngineStats; a
    // recovered deployment must report the snapshot-time counters plus any
    // *new* ingest, never the replayed WAL tail a second time.
    let updates = support::shard_aligned_stream(5_000, 8, 77);
    let dir = temp_dir("walreplay-stats");
    {
        let mut doomed = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(&dir),
        )
        .unwrap();
        doomed.apply_batch(&updates);
        doomed.flush();
    }
    let recovered = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(2),
        persistence(&dir),
    )
    .unwrap();
    let stats = recovered.stats();
    let replayed: u64 = recovered
        .recovery_reports()
        .iter()
        .map(|r| r.replayed_updates)
        .sum();
    assert!(replayed > 0, "expected a WAL tail past the last snapshot");
    assert_eq!(
        stats.updates + replayed,
        updates.len() as u64,
        "replayed updates must not re-enter the work ledger"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
