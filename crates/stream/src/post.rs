//! Entity-annotated posts — the raw items of the social media stream.

use dyndens_graph::VertexId;

/// A single user-generated post (tweet, status update, blog post, ...) after
/// entity extraction: a timestamp plus the set of real-world entities the post
/// mentions.
#[derive(Debug, Clone, PartialEq)]
pub struct Post {
    /// Timestamp in seconds (any monotone clock; the decay machinery only
    /// looks at differences).
    pub timestamp: f64,
    /// The distinct entities mentioned by the post, as graph vertices.
    pub entities: Vec<VertexId>,
}

impl Post {
    /// Creates a post, de-duplicating the mentioned entities.
    pub fn new(timestamp: f64, mut entities: Vec<VertexId>) -> Self {
        assert!(timestamp.is_finite(), "post timestamp must be finite");
        entities.sort_unstable();
        entities.dedup();
        Post {
            timestamp,
            entities,
        }
    }

    /// Number of distinct entities mentioned.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Iterates over all unordered entity pairs mentioned together by this
    /// post (the co-occurrences it induces).
    pub fn entity_pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.entities
            .iter()
            .enumerate()
            .flat_map(move |(i, &a)| self.entities[i + 1..].iter().map(move |&b| (a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_dedups_and_sorts() {
        let p = Post::new(10.0, vec![VertexId(3), VertexId(1), VertexId(3)]);
        assert_eq!(p.entities, vec![VertexId(1), VertexId(3)]);
        assert_eq!(p.entity_count(), 2);
    }

    #[test]
    fn entity_pairs_enumerates_combinations() {
        let p = Post::new(0.0, vec![VertexId(0), VertexId(1), VertexId(2)]);
        let pairs: Vec<(u32, u32)> = p.entity_pairs().map(|(a, b)| (a.0, b.0)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        let single = Post::new(0.0, vec![VertexId(5)]);
        assert_eq!(single.entity_pairs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_timestamp() {
        let _ = Post::new(f64::NAN, vec![]);
    }
}
