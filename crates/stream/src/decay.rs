//! Exponentially decayed occurrence and co-occurrence counters.
//!
//! To identify *emerging* stories rather than cumulative stories-to-date, the
//! paper applies exponential decay to all entity occurrences and
//! co-occurrences (with a configurable mean life, two hours in its
//! experiments). The counters here decay lazily: each counter remembers the
//! time it was last touched and scales its value by `exp(-dt / mean_life)`
//! when read or incremented at a later time.

use dyndens_graph::{FxHashMap, FxHashSet, VertexId};

/// A single exponentially decayed counter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct DecayedCount {
    value: f64,
    last_update: f64,
}

impl DecayedCount {
    fn decayed(&self, now: f64, mean_life: f64) -> f64 {
        if self.value == 0.0 {
            return 0.0;
        }
        let dt = (now - self.last_update).max(0.0);
        self.value * (-dt / mean_life).exp()
    }

    fn add(&mut self, now: f64, amount: f64, mean_life: f64) {
        self.value = self.decayed(now, mean_life) + amount;
        self.last_update = now;
    }
}

/// The contingency statistics of an entity pair at a given time, used by the
/// association measures: decayed occurrence counts of each entity, their
/// decayed co-occurrence count and the decayed total number of posts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairStats {
    /// Decayed number of posts mentioning the first entity.
    pub count_a: f64,
    /// Decayed number of posts mentioning the second entity.
    pub count_b: f64,
    /// Decayed number of posts mentioning both.
    pub count_ab: f64,
    /// Decayed total number of posts observed.
    pub total: f64,
}

/// Tracks decayed entity occurrence counts, pairwise co-occurrence counts and
/// the total (decayed) volume of posts.
#[derive(Debug, Clone)]
pub struct CooccurrenceTracker {
    mean_life: f64,
    total: DecayedCount,
    occurrences: FxHashMap<VertexId, DecayedCount>,
    cooccurrences: FxHashMap<(VertexId, VertexId), DecayedCount>,
    /// For every entity, the set of entities it has ever co-occurred with
    /// (needed to know which edge weights to refresh when an entity is
    /// mentioned again).
    partners: FxHashMap<VertexId, FxHashSet<VertexId>>,
    /// When `None`, counts never decay ("cumulative stories to date" mode).
    decay_enabled: bool,
}

impl CooccurrenceTracker {
    /// Creates a tracker with the given mean post life (seconds).
    pub fn new(mean_life: f64) -> Self {
        assert!(mean_life > 0.0, "mean life must be positive");
        CooccurrenceTracker {
            mean_life,
            total: DecayedCount::default(),
            occurrences: FxHashMap::default(),
            cooccurrences: FxHashMap::default(),
            partners: FxHashMap::default(),
            decay_enabled: true,
        }
    }

    /// Creates a tracker that never decays its counts (cumulative mode, used
    /// for the day-granularity qualitative results of Table 3).
    pub fn without_decay() -> Self {
        let mut t = Self::new(1.0);
        t.decay_enabled = false;
        t
    }

    fn life(&self) -> f64 {
        if self.decay_enabled {
            self.mean_life
        } else {
            f64::INFINITY
        }
    }

    /// Records a post at time `now` mentioning the given (distinct) entities.
    pub fn observe(&mut self, now: f64, entities: &[VertexId]) {
        let life = self.life();
        self.total.add(now, 1.0, life);
        for &e in entities {
            self.occurrences.entry(e).or_default().add(now, 1.0, life);
        }
        for (i, &a) in entities.iter().enumerate() {
            for &b in &entities[i + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                self.cooccurrences
                    .entry(key)
                    .or_default()
                    .add(now, 1.0, life);
                self.partners.entry(a).or_default().insert(b);
                self.partners.entry(b).or_default().insert(a);
            }
        }
    }

    /// Decayed occurrence count of an entity at time `now`.
    pub fn occurrences(&self, entity: VertexId, now: f64) -> f64 {
        self.occurrences
            .get(&entity)
            .map_or(0.0, |c| c.decayed(now, self.life()))
    }

    /// Decayed co-occurrence count of a pair at time `now`.
    pub fn cooccurrences(&self, a: VertexId, b: VertexId, now: f64) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.cooccurrences
            .get(&key)
            .map_or(0.0, |c| c.decayed(now, self.life()))
    }

    /// Decayed total number of posts at time `now`.
    pub fn total(&self, now: f64) -> f64 {
        self.total.decayed(now, self.life())
    }

    /// The entities that have ever co-occurred with `entity`.
    pub fn partners(&self, entity: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.partners.get(&entity).into_iter().flatten().copied()
    }

    /// The full contingency statistics of a pair at time `now`.
    pub fn pair_stats(&self, a: VertexId, b: VertexId, now: f64) -> PairStats {
        PairStats {
            count_a: self.occurrences(a, now),
            count_b: self.occurrences(b, now),
            count_ab: self.cooccurrences(a, b, now),
            total: self.total(now),
        }
    }

    /// Number of distinct entities observed so far.
    pub fn entity_count(&self) -> usize {
        self.occurrences.len()
    }

    /// Number of entity pairs with a live co-occurrence counter.
    pub fn pair_count(&self) -> usize {
        self.cooccurrences.len()
    }

    /// Drops every occurrence and co-occurrence counter whose decayed value
    /// at time `now` has fallen to `epsilon` or below, together with the
    /// partner links of the dropped pairs. Returns `(entities_pruned,
    /// pairs_pruned)`.
    ///
    /// Without pruning, the tracker's maps — and, for roughly
    /// scale-invariant association measures like chi-square, the edge
    /// weights derived from them — grow without bound on a forever-run:
    /// uniform exponential decay shrinks numerator and denominator alike, so
    /// a stale association's *weight* barely moves even as the evidence for
    /// it becomes negligible. Pruning is what actually forgets: once a
    /// pair's counter is gone its recomputed weight is zero, and
    /// [`EdgeUpdateGenerator::compact`](crate::EdgeUpdateGenerator::compact)
    /// turns that into cancelling edge updates for the engine.
    ///
    /// In cumulative (no-decay) mode counters never shrink, so nothing is
    /// pruned.
    pub fn prune(&mut self, now: f64, epsilon: f64) -> (usize, usize) {
        if !self.decay_enabled {
            return (0, 0);
        }
        let life = self.mean_life;
        let occ_before = self.occurrences.len();
        self.occurrences
            .retain(|_, c| c.decayed(now, life) > epsilon);
        let pair_before = self.cooccurrences.len();
        let mut dead_pairs: Vec<(VertexId, VertexId)> = Vec::new();
        self.cooccurrences.retain(|&key, c| {
            let live = c.decayed(now, life) > epsilon;
            if !live {
                dead_pairs.push(key);
            }
            live
        });
        for (a, b) in dead_pairs {
            for (from, to) in [(a, b), (b, a)] {
                if let Some(set) = self.partners.get_mut(&from) {
                    set.remove(&to);
                    if set.is_empty() {
                        self.partners.remove(&from);
                    }
                }
            }
        }
        (
            occ_before - self.occurrences.len(),
            pair_before - self.cooccurrences.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: f64 = 3600.0;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn counts_accumulate_without_time_passing() {
        let mut t = CooccurrenceTracker::new(2.0 * HOUR);
        t.observe(0.0, &[v(0), v(1)]);
        t.observe(0.0, &[v(0), v(1), v(2)]);
        t.observe(0.0, &[v(3)]);
        assert!((t.occurrences(v(0), 0.0) - 2.0).abs() < 1e-12);
        assert!((t.occurrences(v(3), 0.0) - 1.0).abs() < 1e-12);
        assert!((t.cooccurrences(v(0), v(1), 0.0) - 2.0).abs() < 1e-12);
        assert!((t.cooccurrences(v(1), v(2), 0.0) - 1.0).abs() < 1e-12);
        assert_eq!(t.cooccurrences(v(0), v(3), 0.0), 0.0);
        assert!((t.total(0.0) - 3.0).abs() < 1e-12);
        assert_eq!(t.entity_count(), 4);
    }

    #[test]
    fn decay_halves_after_mean_life_times_ln2() {
        let mean_life = 2.0 * HOUR;
        let mut t = CooccurrenceTracker::new(mean_life);
        t.observe(0.0, &[v(0), v(1)]);
        let half_life = mean_life * std::f64::consts::LN_2;
        let c = t.cooccurrences(v(0), v(1), half_life);
        assert!((c - 0.5).abs() < 1e-9, "expected 0.5, got {c}");
        // Far in the future the count is negligible.
        assert!(t.occurrences(v(0), 100.0 * mean_life) < 1e-9);
    }

    #[test]
    fn old_and_new_observations_mix() {
        let mean_life = HOUR;
        let mut t = CooccurrenceTracker::new(mean_life);
        t.observe(0.0, &[v(0), v(1)]);
        t.observe(mean_life, &[v(0), v(1)]);
        let expected = 1.0 + (-1.0f64).exp();
        assert!((t.cooccurrences(v(0), v(1), mean_life) - expected).abs() < 1e-9);
    }

    #[test]
    fn without_decay_counts_are_stable() {
        let mut t = CooccurrenceTracker::without_decay();
        t.observe(0.0, &[v(0), v(1)]);
        t.observe(1e9, &[v(0)]);
        assert!((t.occurrences(v(0), 2e9) - 2.0).abs() < 1e-12);
        assert!((t.cooccurrences(v(0), v(1), 2e9) - 1.0).abs() < 1e-12);
        assert!((t.total(3e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partners_are_tracked() {
        let mut t = CooccurrenceTracker::new(HOUR);
        t.observe(0.0, &[v(0), v(1), v(2)]);
        t.observe(0.0, &[v(0), v(3)]);
        let mut partners: Vec<u32> = t.partners(v(0)).map(|p| p.0).collect();
        partners.sort_unstable();
        assert_eq!(partners, vec![1, 2, 3]);
        assert_eq!(t.partners(v(4)).count(), 0);
    }

    #[test]
    fn pair_stats_bundle() {
        let mut t = CooccurrenceTracker::new(HOUR);
        t.observe(0.0, &[v(0), v(1)]);
        t.observe(0.0, &[v(0)]);
        let s = t.pair_stats(v(0), v(1), 0.0);
        assert!((s.count_a - 2.0).abs() < 1e-12);
        assert!((s.count_b - 1.0).abs() < 1e-12);
        assert!((s.count_ab - 1.0).abs() < 1e-12);
        assert!((s.total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prune_drops_decayed_counters_and_partner_links() {
        let mut t = CooccurrenceTracker::new(HOUR);
        t.observe(0.0, &[v(0), v(1)]);
        t.observe(0.0, &[v(2), v(3)]);
        // Much later, only (2, 3) is refreshed.
        let later = 100.0 * HOUR;
        t.observe(later, &[v(2), v(3)]);
        let (entities, pairs) = t.prune(later, 1e-9);
        assert_eq!(entities, 2, "0 and 1 decayed out");
        assert_eq!(pairs, 1, "(0, 1) decayed out");
        assert_eq!(t.entity_count(), 2);
        assert_eq!(t.pair_count(), 1);
        assert_eq!(t.partners(v(0)).count(), 0);
        assert_eq!(t.partners(v(2)).count(), 1);
        // Survivors keep their exact decayed values.
        assert!((t.cooccurrences(v(2), v(3), later) - (1.0 + (-100.0f64).exp())).abs() < 1e-9);
        // A pruned entity can reappear later as if new.
        t.observe(later + 1.0, &[v(0), v(1)]);
        assert_eq!(t.entity_count(), 4);
        assert!((t.occurrences(v(0), later + 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prune_is_a_no_op_without_decay() {
        let mut t = CooccurrenceTracker::without_decay();
        t.observe(0.0, &[v(0), v(1)]);
        assert_eq!(t.prune(1e12, 1e-9), (0, 0));
        assert_eq!(t.entity_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_mean_life() {
        let _ = CooccurrenceTracker::new(0.0);
    }
}
