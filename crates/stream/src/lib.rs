//! # dyndens-stream
//!
//! The post-stream substrate of the real-time story identification pipeline
//! (Section 5 of the paper): turning a stream of entity-annotated social media
//! posts into the stream of edge weight updates consumed by the DynDens
//! engine, and turning the resulting dense subgraphs back into presentable
//! "stories".
//!
//! The crate provides:
//!
//! * [`entity`] — a registry mapping entity names to graph vertices;
//! * [`post`] — entity-annotated posts with timestamps;
//! * [`decay`] — exponentially decayed occurrence and co-occurrence counters
//!   (the paper uses a mean post life of two hours so that identified stories
//!   are "stories happening now" rather than cumulative stories to date);
//! * [`measures`] — association measures: the thresholded log-likelihood
//!   ratio (the paper's *unweighted* dataset) and the chi-square +
//!   correlation-coefficient combination (the *weighted* dataset), behind a
//!   common [`AssociationMeasure`] trait;
//! * [`pipeline`] — the post → edge-weight-update generator, implementing the
//!   paper's approximation that an edge's weight is only recomputed when one
//!   of its endpoints is mentioned;
//! * [`ranking`] — diversity-aware re-ranking of output-dense subgraphs for
//!   presentation (Section 5.3);
//! * [`story`] — an end-to-end convenience wrapper (posts in, stories out);
//! * [`sharded`] — the same wrapper over the `dyndens-shard` scale-out
//!   subsystem (parallel ingest, non-blocking story reads).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decay;
pub mod entity;
pub mod measures;
pub mod pipeline;
pub mod post;
pub mod ranking;
pub mod sharded;
pub mod story;

pub use decay::{CooccurrenceTracker, PairStats};
pub use entity::EntityRegistry;
pub use measures::{
    AssociationMeasure, ChiSquareCorrelation, LogLikelihoodRatio, CHI2_CRITICAL_1PCT,
    CHI2_CRITICAL_5PCT,
};
pub use pipeline::EdgeUpdateGenerator;
pub use post::Post;
pub use ranking::rank_with_diversity;
pub use sharded::{PipelineRecoveryError, ShardedStoryPipeline};
pub use story::{Story, StoryPipeline};
