//! End-to-end story identification: posts in, ranked stories out.
//!
//! This is the convenience layer a downstream application (such as an
//! interactive story exploration system) would use: it wires together the
//! entity registry, the post → edge-update pipeline and the DynDens engine,
//! and exposes the current set of emerging stories after every post.

use crate::entity::EntityRegistry;
use crate::measures::AssociationMeasure;
use crate::pipeline::EdgeUpdateGenerator;
use crate::post::Post;
use crate::ranking::rank_with_diversity;
use dyndens_core::{DenseEvent, DynDens, DynDensConfig};
use dyndens_density::DensityMeasure;
use dyndens_graph::VertexSet;

/// A story: a group of tightly coupled entities together with its density.
#[derive(Debug, Clone, PartialEq)]
pub struct Story {
    /// The entities involved in the story, as human-readable names.
    pub entities: Vec<String>,
    /// The vertex set backing the story.
    pub vertices: VertexSet,
    /// The story's density under the configured measure.
    pub density: f64,
    /// The diversity-adjusted density used for ranking.
    pub adjusted_density: f64,
}

/// The complete real-time story identification pipeline.
#[derive(Debug, Clone)]
pub struct StoryPipeline<M: AssociationMeasure, D: DensityMeasure> {
    registry: EntityRegistry,
    generator: EdgeUpdateGenerator<M>,
    engine: DynDens<D>,
    diversity_penalty: f64,
}

impl<M: AssociationMeasure, D: DensityMeasure> StoryPipeline<M, D> {
    /// Creates a pipeline with the given association measure, exponential
    /// decay mean life (seconds), density measure and DynDens configuration.
    pub fn new(association: M, mean_life: f64, density: D, config: DynDensConfig) -> Self {
        StoryPipeline {
            registry: EntityRegistry::new(),
            generator: EdgeUpdateGenerator::new(association, mean_life),
            engine: DynDens::new(density, config),
            diversity_penalty: 0.8,
        }
    }

    /// Creates a pipeline without temporal decay ("cumulative stories to
    /// date", used for day-granularity summaries).
    pub fn without_decay(association: M, density: D, config: DynDensConfig) -> Self {
        StoryPipeline {
            registry: EntityRegistry::new(),
            generator: EdgeUpdateGenerator::without_decay(association),
            engine: DynDens::new(density, config),
            diversity_penalty: 0.8,
        }
    }

    /// Sets the diversity penalty used when ranking stories (default 0.8).
    pub fn with_diversity_penalty(mut self, penalty: f64) -> Self {
        self.diversity_penalty = penalty;
        self
    }

    /// The entity registry (name ↔ vertex mapping).
    pub fn registry(&self) -> &EntityRegistry {
        &self.registry
    }

    /// The underlying DynDens engine.
    pub fn engine(&self) -> &DynDens<D> {
        &self.engine
    }

    /// The update generator, exposing stream statistics.
    pub fn generator(&self) -> &EdgeUpdateGenerator<M> {
        &self.generator
    }

    /// Ingests a post given as `(timestamp, entity names)`, returning the
    /// changes to the set of output-dense subgraphs it caused.
    pub fn ingest(&mut self, timestamp: f64, entity_names: &[&str]) -> Vec<DenseEvent> {
        let entities = entity_names
            .iter()
            .map(|n| self.registry.intern(n))
            .collect();
        let post = Post::new(timestamp, entities);
        self.ingest_post(&post)
    }

    /// Ingests an already entity-resolved post.
    pub fn ingest_post(&mut self, post: &Post) -> Vec<DenseEvent> {
        let updates = self.generator.process_post(post);
        let mut events = Vec::new();
        for u in updates {
            self.engine.apply_update_into(u, &mut events);
        }
        events
    }

    /// The current top stories, diversity-ranked.
    pub fn top_stories(&self, limit: usize) -> Vec<Story> {
        let candidates = self.engine.output_dense_subgraphs();
        let ranked = rank_with_diversity(&candidates, self.diversity_penalty, limit);
        ranked
            .into_iter()
            .map(|(vertices, density, adjusted_density)| Story {
                entities: self.registry.describe(vertices.iter()),
                vertices,
                density,
                adjusted_density,
            })
            .collect()
    }

    /// Adjusts the output density threshold at runtime (Section 6), e.g. when
    /// the number of reported stories drifts outside a desired band.
    pub fn set_threshold(&mut self, new_threshold: f64) -> Vec<DenseEvent> {
        self.engine.set_output_threshold(new_threshold)
    }

    /// Number of stories currently reported (output-dense subgraphs).
    pub fn story_count(&self) -> usize {
        self.engine.output_dense_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::ChiSquareCorrelation;
    use dyndens_density::AvgWeight;

    fn pipeline_with_threshold(threshold: f64) -> StoryPipeline<ChiSquareCorrelation, AvgWeight> {
        StoryPipeline::new(
            ChiSquareCorrelation::default(),
            7200.0,
            AvgWeight,
            DynDensConfig::new(threshold, 4).with_delta_it_fraction(0.3),
        )
    }

    fn pipeline() -> StoryPipeline<ChiSquareCorrelation, AvgWeight> {
        pipeline_with_threshold(0.7)
    }

    #[test]
    fn recurring_entity_group_becomes_a_story() {
        // The story has two facets sharing "Osama bin Laden"; each facet's
        // correlation coefficient tops out around 0.5 (the shared entity also
        // co-occurs with the other facet), so the story threshold is set
        // accordingly.
        let mut p = pipeline_with_threshold(0.45);
        // A recurring story about a raid, interleaved with background chatter.
        for i in 0..40 {
            let t = i as f64 * 10.0;
            p.ingest(t, &["Abbottabad", "Osama bin Laden"]);
            p.ingest(t + 1.0, &["Barack Obama", "Osama bin Laden"]);
            p.ingest(
                t + 2.0,
                &[match i % 4 {
                    0 => "Justin Bieber",
                    1 => "Lady Gaga",
                    2 => "Royal Wedding",
                    _ => "PlayStation",
                }],
            );
        }
        assert!(p.story_count() > 0, "expected at least one story");
        let stories = p.top_stories(3);
        assert!(!stories.is_empty());
        let all_entities: Vec<String> = stories.iter().flat_map(|s| s.entities.clone()).collect();
        assert!(all_entities.iter().any(|e| e == "Osama bin Laden"));
        // Densities are positive and adjusted densities never exceed them.
        for s in &stories {
            assert!(s.density > 0.0);
            assert!(s.adjusted_density <= s.density + 1e-12);
            assert_eq!(s.entities.len(), s.vertices.len());
        }
    }

    #[test]
    fn unrelated_entities_do_not_form_stories() {
        let mut p = pipeline();
        // Every post mentions a different pair: no recurring association.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        for i in 0..30 {
            let x = names[i % names.len()];
            let y = names[(i * 3 + 1) % names.len()];
            if x != y {
                p.ingest(i as f64, &[x, y]);
            }
        }
        // With the chi-square significance filter nothing should be strongly
        // associated enough to clear a 0.7 average-weight threshold for long.
        assert!(
            p.story_count() <= 2,
            "unexpected stories: {:?}",
            p.top_stories(5)
        );
    }

    #[test]
    fn threshold_adjustment_controls_story_volume() {
        let mut p = pipeline();
        for i in 0..30 {
            let t = i as f64;
            p.ingest(t, &["NATO", "Libya"]);
            p.ingest(t + 0.3, &["Sony", "PlayStation"]);
            p.ingest(t + 0.6, &["noise"]);
        }
        let before = p.story_count();
        p.set_threshold(0.99);
        let tightened = p.story_count();
        assert!(tightened <= before);
        p.set_threshold(0.5);
        let relaxed = p.story_count();
        assert!(relaxed >= tightened);
    }

    #[test]
    fn engine_state_matches_generator_weights() {
        let mut p = pipeline();
        for i in 0..25 {
            p.ingest(i as f64, &["x", "y"]);
            p.ingest(i as f64 + 0.5, &["background"]);
        }
        p.engine().validate().unwrap();
        let x = p.registry().get("x").unwrap();
        let y = p.registry().get("y").unwrap();
        let engine_weight = p.engine().graph().weight(x, y);
        let generator_weight = p.generator().current_weight(x, y);
        assert!((engine_weight - generator_weight).abs() < 1e-9);
    }
}
