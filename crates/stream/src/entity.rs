//! Mapping between real-world entity names and graph vertices.

use dyndens_graph::{FxHashMap, VertexId};

/// A bidirectional registry of entity names (people, places, products, ...) to
/// the dense integer [`VertexId`]s used by the entity graph.
///
/// Entity extraction itself (finding entity mentions in raw post text) is out
/// of scope — posts arrive already annotated with entity names, as in the
/// paper's pipeline where an in-house extractor runs upstream of the graph
/// maintenance.
#[derive(Debug, Clone, Default)]
pub struct EntityRegistry {
    by_name: FxHashMap<String, VertexId>,
    names: Vec<String>,
}

impl EntityRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the vertex for `name`, registering it if it has not been seen
    /// before.
    pub fn intern(&mut self, name: &str) -> VertexId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VertexId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up the vertex for `name` without registering it.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.by_name.get(name).copied()
    }

    /// The name registered for `id`, if any.
    pub fn name(&self, id: VertexId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// All registered names, in intern (= vertex id) order: `names()[i]` is
    /// the name of `VertexId(i)`. A serving process snapshots this slice into
    /// its name table so wire-level stories carry human-readable entities.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of registered entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no entities are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders a vertex set as a human-readable list of entity names,
    /// falling back to the numeric id for unregistered vertices.
    pub fn describe(&self, vertices: impl IntoIterator<Item = VertexId>) -> Vec<String> {
        vertices
            .into_iter()
            .map(|v| {
                self.name(v)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("entity#{v}"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut reg = EntityRegistry::new();
        let a = reg.intern("Barack Obama");
        let b = reg.intern("Osama bin Laden");
        assert_ne!(a, b);
        assert_eq!(reg.intern("Barack Obama"), a);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn lookup_and_names() {
        let mut reg = EntityRegistry::new();
        let a = reg.intern("Abbottabad");
        assert_eq!(reg.get("Abbottabad"), Some(a));
        assert_eq!(reg.get("C.I.A."), None);
        assert_eq!(reg.name(a), Some("Abbottabad"));
        assert_eq!(reg.name(VertexId(99)), None);
    }

    #[test]
    fn describe_falls_back_to_ids() {
        let mut reg = EntityRegistry::new();
        let a = reg.intern("NATO");
        let described = reg.describe([a, VertexId(7)]);
        assert_eq!(described, vec!["NATO".to_string(), "entity#7".to_string()]);
    }
}
