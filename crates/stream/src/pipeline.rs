//! The post → edge-weight-update pipeline.
//!
//! Every incoming post updates the (decayed) occurrence and co-occurrence
//! counters, and the weights of the edges incident to the mentioned entities
//! are recomputed under the configured association measure. The difference
//! between the new and the previously emitted weight of each such edge becomes
//! an [`EdgeUpdate`] for the DynDens engine.
//!
//! This implements the paper's approximation for expensive statistical
//! measures: the weight of an edge is computed ignoring all documents that
//! appeared after the last time either endpoint was mentioned — operationally,
//! an edge's weight is only refreshed when one of its endpoints appears in a
//! post, so a single post only touches the edges incident to its entities.

use crate::decay::CooccurrenceTracker;
use crate::measures::AssociationMeasure;
use crate::post::Post;
use dyndens_graph::{EdgeUpdate, FxHashMap, VertexId};

/// Minimum absolute weight change that is worth emitting as an update.
const MIN_DELTA: f64 = 1e-9;

/// Generates edge weight updates from a stream of entity-annotated posts.
#[derive(Debug, Clone)]
pub struct EdgeUpdateGenerator<M: AssociationMeasure> {
    measure: M,
    tracker: CooccurrenceTracker,
    /// The last weight emitted for each edge (the DynDens engine's view).
    emitted: FxHashMap<(VertexId, VertexId), f64>,
    posts_seen: u64,
    positive_updates: u64,
    negative_updates: u64,
}

impl<M: AssociationMeasure> EdgeUpdateGenerator<M> {
    /// Creates a generator with the given association measure and mean post
    /// life (seconds) for exponential decay.
    pub fn new(measure: M, mean_life: f64) -> Self {
        Self::with_tracker(measure, CooccurrenceTracker::new(mean_life))
    }

    /// Creates a generator that applies no decay (cumulative mode).
    pub fn without_decay(measure: M) -> Self {
        Self::with_tracker(measure, CooccurrenceTracker::without_decay())
    }

    fn with_tracker(measure: M, tracker: CooccurrenceTracker) -> Self {
        EdgeUpdateGenerator {
            measure,
            tracker,
            emitted: FxHashMap::default(),
            posts_seen: 0,
            positive_updates: 0,
            negative_updates: 0,
        }
    }

    /// The decayed co-occurrence statistics collected so far.
    pub fn tracker(&self) -> &CooccurrenceTracker {
        &self.tracker
    }

    /// Number of posts consumed.
    pub fn posts_seen(&self) -> u64 {
        self.posts_seen
    }

    /// Number of positive / negative updates emitted so far.
    pub fn update_counts(&self) -> (u64, u64) {
        (self.positive_updates, self.negative_updates)
    }

    /// The weight currently emitted for an edge (the engine's view of it).
    pub fn current_weight(&self, a: VertexId, b: VertexId) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.emitted.get(&key).copied().unwrap_or(0.0)
    }

    /// Consumes one post and returns the edge weight updates it causes.
    pub fn process_post(&mut self, post: &Post) -> Vec<EdgeUpdate> {
        let mut updates = Vec::new();
        self.process_post_into(post, &mut updates);
        updates
    }

    /// Consumes one post, appending the resulting updates to `out`.
    pub fn process_post_into(&mut self, post: &Post, out: &mut Vec<EdgeUpdate>) {
        self.posts_seen += 1;
        self.tracker.observe(post.timestamp, &post.entities);
        if post.entities.is_empty() {
            return;
        }
        // Refresh every edge incident to a mentioned entity: pairs within the
        // post plus pairs with previous co-occurrence partners.
        let mut touched: Vec<(VertexId, VertexId)> = Vec::new();
        for (i, &a) in post.entities.iter().enumerate() {
            for &b in &post.entities[i + 1..] {
                touched.push(if a < b { (a, b) } else { (b, a) });
            }
            for p in self.tracker.partners(a) {
                if p != a {
                    touched.push(if a < p { (a, p) } else { (p, a) });
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        for (a, b) in touched {
            let stats = self.tracker.pair_stats(a, b, post.timestamp);
            let new_weight = self.measure.weight(&stats);
            debug_assert!(new_weight >= 0.0 && new_weight.is_finite());
            let old_weight = self.emitted.get(&(a, b)).copied().unwrap_or(0.0);
            let delta = new_weight - old_weight;
            if delta.abs() <= MIN_DELTA {
                continue;
            }
            if new_weight <= MIN_DELTA {
                self.emitted.remove(&(a, b));
            } else {
                self.emitted.insert((a, b), new_weight);
            }
            if delta > 0.0 {
                self.positive_updates += 1;
            } else {
                self.negative_updates += 1;
            }
            out.push(EdgeUpdate::new(a, b, delta));
        }
    }

    /// Forgets fully-decayed state: prunes tracker counters whose decayed
    /// value at time `now` is at or below `epsilon`, then emits a cancelling
    /// [`EdgeUpdate`] (in canonical ascending edge order) for every emitted
    /// edge whose co-occurrence evidence was pruned away. Returns the number
    /// of edges cancelled.
    ///
    /// This is the stream half of decay-driven eviction. Scale-invariant
    /// association measures keep a stale edge's weight nearly constant under
    /// uniform decay (numerator and denominator shrink together), so weights
    /// alone never reach zero — the pair's *counter* vanishing is what
    /// declares the evidence gone. Feed the returned updates to the engine
    /// (they drive its weights to exactly zero) and follow with
    /// `DynDens::evict_below` or the sharded `compact_below` to reclaim the
    /// engine-side state.
    pub fn compact(&mut self, now: f64, epsilon: f64, out: &mut Vec<EdgeUpdate>) -> usize {
        self.tracker.prune(now, epsilon);
        let mut dead: Vec<(VertexId, VertexId)> = self
            .emitted
            .keys()
            .copied()
            .filter(|&(a, b)| self.tracker.cooccurrences(a, b, now) == 0.0)
            .collect();
        dead.sort_unstable();
        for &(a, b) in &dead {
            let w = self.emitted.remove(&(a, b)).unwrap_or(0.0);
            if w != 0.0 {
                self.negative_updates += 1;
                out.push(EdgeUpdate::new(a, b, -w));
            }
        }
        dead.len()
    }

    /// Consumes a batch of posts, returning all updates in order.
    pub fn process_posts<'a, I: IntoIterator<Item = &'a Post>>(
        &mut self,
        posts: I,
    ) -> Vec<EdgeUpdate> {
        let mut out = Vec::new();
        for p in posts {
            self.process_post_into(p, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{ChiSquareCorrelation, LogLikelihoodRatio};
    use dyndens_graph::DynamicGraph;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn post(t: f64, ids: &[u32]) -> Post {
        Post::new(t, ids.iter().map(|&i| VertexId(i)).collect())
    }

    #[test]
    fn repeated_cooccurrence_creates_a_positive_edge() {
        let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), 7200.0);
        let mut updates = Vec::new();
        // A background of unrelated posts plus a recurring pair (0, 1).
        for i in 0..30 {
            updates.extend(generator.process_post(&post(i as f64, &[0, 1])));
            updates.extend(generator.process_post(&post(i as f64 + 0.5, &[2 + (i % 5)])));
        }
        assert!(generator.current_weight(v(0), v(1)) > 0.5);
        let (pos, _neg) = generator.update_counts();
        assert!(pos > 0);
        // Replaying the emitted updates must reproduce the generator's view.
        let mut graph = DynamicGraph::new();
        for u in &updates {
            graph.apply_update(u);
        }
        assert!((graph.weight(v(0), v(1)) - generator.current_weight(v(0), v(1))).abs() < 1e-9);
        assert_eq!(generator.posts_seen(), 60);
    }

    #[test]
    fn decay_produces_negative_updates() {
        let mean_life = 100.0;
        let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), mean_life);
        for i in 0..20 {
            generator.process_post(&post(i as f64, &[0, 1]));
            generator.process_post(&post(i as f64 + 0.25, &[2, 3]));
        }
        let strong = generator.current_weight(v(0), v(1));
        assert!(strong > 0.0);
        // Much later, a post touching entity 0 (with a different partner)
        // forces a refresh of the stale (0,1) edge: its association has
        // decayed relative to the new evidence.
        let mut updates = Vec::new();
        for i in 0..20 {
            updates.extend(generator.process_post(&post(10_000.0 + i as f64, &[0, 4])));
            updates
                .extend(generator.process_post(&post(10_000.0 + i as f64 + 0.25, &[5 + (i % 3)])));
        }
        assert!(
            updates.iter().any(|u| u.is_negative()),
            "expected negative updates from decay"
        );
        let (_, neg) = generator.update_counts();
        assert!(neg > 0);
    }

    #[test]
    fn llr_measure_generates_unit_edges() {
        let mut generator = EdgeUpdateGenerator::without_decay(LogLikelihoodRatio::default());
        let mut updates = Vec::new();
        for i in 0..40 {
            updates.extend(generator.process_post(&post(i as f64, &[0, 1])));
            updates.extend(generator.process_post(&post(i as f64 + 0.5, &[(i % 7) + 2])));
        }
        let w = generator.current_weight(v(0), v(1));
        assert!(
            (w - 1.0).abs() < 1e-9,
            "thresholded LLR weight should be 1, got {w}"
        );
        // All updates for that edge sum to exactly the weight.
        let sum: f64 = updates
            .iter()
            .filter(|u| u.endpoints() == (v(0), v(1)))
            .map(|u| u.delta)
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compact_cancels_edges_whose_evidence_decayed_away() {
        let mean_life = 100.0;
        let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), mean_life);
        let mut graph = DynamicGraph::new();
        let mut updates = Vec::new();
        for i in 0..20 {
            updates.extend(generator.process_post(&post(i as f64, &[0, 1])));
            updates.extend(generator.process_post(&post(i as f64 + 0.25, &[2, 3])));
        }
        for u in &updates {
            graph.apply_update(u);
        }
        assert!(generator.current_weight(v(0), v(1)) > 0.0);
        let pairs_before = generator.tracker().pair_count();

        // Long after everything decayed: compaction forgets both pairs.
        let now = 1_000.0 * mean_life;
        let mut cancels = Vec::new();
        let cancelled = generator.compact(now, 1e-9, &mut cancels);
        assert_eq!(cancelled, 2);
        assert!(generator.tracker().pair_count() < pairs_before);
        assert_eq!(generator.tracker().entity_count(), 0);
        assert_eq!(generator.current_weight(v(0), v(1)), 0.0);
        // Cancelling updates are in canonical order and drive the mirror
        // graph to exactly empty.
        let keys: Vec<_> = cancels.iter().map(|u| u.endpoints()).collect();
        assert_eq!(keys, vec![(v(0), v(1)), (v(2), v(3))]);
        for u in &cancels {
            graph.apply_update(u);
        }
        assert_eq!(graph.edge_count(), 0);
        // A second compaction finds nothing.
        let mut none = Vec::new();
        assert_eq!(generator.compact(now, 1e-9, &mut none), 0);
        assert!(none.is_empty());
    }

    #[test]
    fn compact_spares_live_edges() {
        let mean_life = 1_000.0;
        let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), mean_life);
        for i in 0..20 {
            generator.process_post(&post(i as f64, &[0, 1]));
            generator.process_post(&post(i as f64 + 0.25, &[2 + (i % 5)]));
        }
        let w = generator.current_weight(v(0), v(1));
        assert!(w > 0.0);
        let mut cancels = Vec::new();
        // Compact "now": nothing has decayed below epsilon.
        assert_eq!(generator.compact(20.0, 1e-9, &mut cancels), 0);
        assert!(cancels.is_empty());
        assert_eq!(generator.current_weight(v(0), v(1)), w);
    }

    #[test]
    fn posts_without_entities_produce_no_updates() {
        let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), 7200.0);
        assert!(generator.process_post(&post(0.0, &[])).is_empty());
        assert!(generator.process_post(&post(1.0, &[3])).is_empty());
        assert_eq!(generator.posts_seen(), 2);
        assert_eq!(generator.update_counts(), (0, 0));
    }

    #[test]
    fn single_mention_posts_still_refresh_incident_edges() {
        // The approximation: an edge is refreshed whenever either endpoint is
        // mentioned, even alone.
        let mut generator = EdgeUpdateGenerator::without_decay(ChiSquareCorrelation::default());
        // Interleave background posts so the (0, 1) association is
        // statistically meaningful (a pair that appears in *every* post is
        // indistinguishable from independence under chi-square).
        for i in 0..10 {
            generator.process_post(&post(i as f64, &[0, 1]));
            generator.process_post(&post(i as f64 + 0.5, &[7 + i]));
        }
        let before = generator.current_weight(v(0), v(1));
        assert!(
            before > 0.5,
            "setup should create a strong (0, 1) edge, got {before}"
        );
        // Entity 0 now appears many times alone: the (0,1) association weakens
        // and the edge must be refreshed downward.
        let mut saw_refresh = false;
        for i in 0..50 {
            let ups = generator.process_post(&post(200.0 + i as f64, &[0]));
            if ups
                .iter()
                .any(|u| u.endpoints() == (v(0), v(1)) && u.is_negative())
            {
                saw_refresh = true;
            }
        }
        let after = generator.current_weight(v(0), v(1));
        assert!(
            after < before,
            "association should weaken ({before} -> {after})"
        );
        assert!(saw_refresh);
    }
}
