//! Sharded end-to-end story identification: posts in, ranked stories out,
//! ingest parallelised across shard workers.
//!
//! This is the scale-out counterpart of [`StoryPipeline`](crate::story::StoryPipeline):
//! the entity registry and the post → edge-weight-update generator run on the
//! ingest thread (they are cheap and inherently sequential per post), while
//! the expensive dense-subgraph maintenance is routed through a
//! [`ShardedDynDens`] fleet. Story reads come either from the authoritative
//! flushing path ([`ShardedStoryPipeline::top_stories`]) or from the
//! non-blocking, bounded-lag [`StoryView`] path
//! ([`ShardedStoryPipeline::top_stories_latest`]).

use std::io::{self, Write};
use std::path::Path;

use crate::entity::EntityRegistry;
use crate::measures::AssociationMeasure;
use crate::pipeline::EdgeUpdateGenerator;
use crate::post::Post;
use crate::ranking::rank_with_diversity;
use crate::story::Story;
use dyndens_core::DynDensConfig;
use dyndens_density::DensityMeasure;
use dyndens_graph::codec::{put_frame, scan_frames};
use dyndens_graph::EdgeUpdate;
use dyndens_shard::{
    FsyncPolicy, MergedStories, PersistenceConfig, RecoveryError, ShardConfig, ShardedDynDens,
    StoryView,
};

/// An error recovering a persistent [`ShardedStoryPipeline`].
#[derive(Debug)]
pub enum PipelineRecoveryError {
    /// The shard fleet failed to recover (WAL/snapshot/manifest problems).
    Shard(RecoveryError),
    /// The entity-name journal holds fewer names than the recovered engines
    /// reference (e.g. mid-file corruption truncated it). Continuing would
    /// assign recovered vertices' ids to brand-new entities and silently
    /// merge them, so this is a hard error.
    RegistryBehindEngine {
        /// Names recovered from the journal.
        names: usize,
        /// Vertices the recovered engines reference.
        vertices: usize,
    },
}

impl From<RecoveryError> for PipelineRecoveryError {
    fn from(e: RecoveryError) -> Self {
        PipelineRecoveryError::Shard(e)
    }
}

impl From<io::Error> for PipelineRecoveryError {
    fn from(e: io::Error) -> Self {
        PipelineRecoveryError::Shard(e.into())
    }
}

impl std::fmt::Display for PipelineRecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineRecoveryError::Shard(e) => write!(f, "{e}"),
            PipelineRecoveryError::RegistryBehindEngine { names, vertices } => write!(
                f,
                "entity journal recovered only {names} names but the engines reference \
                 {vertices} vertices; the journal is damaged beyond its tail"
            ),
        }
    }
}

impl std::error::Error for PipelineRecoveryError {}

/// Append-only journal of interned entity names, in intern (= vertex id)
/// order, using the same `len | crc | payload` record framing as the shard
/// WAL ([`put_frame`]/[`scan_frames`]).
///
/// The engine slice of a persistent pipeline survives a crash via the
/// shards' WAL + snapshots, but the name ↔ [`dyndens_graph::VertexId`]
/// mapping lives on the ingest side: without it, a recovered pipeline would
/// re-intern fresh names starting at vertex 0 and silently merge new
/// entities into the recovered graph's old vertices. Journalling each name
/// *before* its first updates are routed (fsynced under
/// [`FsyncPolicy::Always`], mirroring the WAL) keeps the mapping durable;
/// replay is simply re-interning the journalled names in order. A torn tail
/// (crash mid-append) is truncated away — the affected name had no routed
/// updates yet. Truncation that *would* lose names the engines still
/// reference is caught by the [`RegistryBehindEngine`] cross-check after
/// recovery.
///
/// [`RegistryBehindEngine`]: PipelineRecoveryError::RegistryBehindEngine
#[derive(Debug)]
struct EntityJournal {
    file: std::fs::File,
    fsync: FsyncPolicy,
}

impl EntityJournal {
    const FILE_NAME: &'static str = "entities.log";

    /// Opens (or creates) the journal under `dir`, returning the journalled
    /// names in intern order and repairing a torn tail by truncation.
    fn open(dir: &Path, fsync: FsyncPolicy) -> io::Result<(Self, Vec<String>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(Self::FILE_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut names = Vec::new();
        let scan = scan_frames(&bytes, |payload| match std::str::from_utf8(payload) {
            Ok(name) => {
                names.push(name.to_string());
                true
            }
            Err(_) => false,
        });
        if !scan.clean {
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.valid_len)?;
            f.sync_data()?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok((EntityJournal { file, fsync }, names))
    }

    /// Appends one newly interned name, honouring the fsync policy (under
    /// `Always`, the name is durable before any update using its vertex id
    /// is routed — the same write-ahead ordering the shard WAL gives
    /// updates).
    fn append(&mut self, name: &str) -> io::Result<()> {
        let mut frame = Vec::with_capacity(8 + name.len());
        put_frame(&mut frame, name.as_bytes());
        self.file.write_all(&frame)?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// The sharded real-time story identification pipeline.
#[derive(Debug)]
pub struct ShardedStoryPipeline<M: AssociationMeasure, D: DensityMeasure> {
    registry: EntityRegistry,
    generator: EdgeUpdateGenerator<M>,
    engine: ShardedDynDens<D>,
    diversity_penalty: f64,
    /// Scratch buffer reused across posts.
    updates: Vec<EdgeUpdate>,
    /// Durable name ↔ vertex mapping of a persistent pipeline.
    journal: Option<EntityJournal>,
}

impl<M: AssociationMeasure, D: DensityMeasure> ShardedStoryPipeline<M, D> {
    /// Creates a pipeline with the given association measure, exponential
    /// decay mean life (seconds), density measure, engine configuration and
    /// shard configuration.
    pub fn new(
        association: M,
        mean_life: f64,
        density: D,
        engine_config: DynDensConfig,
        shard_config: ShardConfig,
    ) -> Self {
        ShardedStoryPipeline {
            registry: EntityRegistry::new(),
            generator: EdgeUpdateGenerator::new(association, mean_life),
            engine: ShardedDynDens::new(density, engine_config, shard_config),
            diversity_penalty: 0.8,
            updates: Vec::new(),
            journal: None,
        }
    }

    /// The crash-safe variant of [`new`](Self::new): the shard fleet is
    /// backed by per-shard write-ahead logs and periodic engine snapshots
    /// under `persistence.dir`, and the entity registry by an append-only
    /// name journal (`entities.log`) in the same directory. On construction
    /// both recover together (an empty directory starts fresh), so vertex
    /// ids keep meaning the same entities across restarts and recovered
    /// stories describe themselves with the right names.
    ///
    /// Remaining durability boundary: the association-measure decay state of
    /// the update generator is rebuilt fresh — post-recovery association
    /// deltas restart from the generator's initial statistics, mirroring
    /// where the paper's maintained state ends and stream preprocessing
    /// begins.
    pub fn with_persistence(
        association: M,
        mean_life: f64,
        density: D,
        engine_config: DynDensConfig,
        shard_config: ShardConfig,
        persistence: PersistenceConfig,
    ) -> Result<Self, PipelineRecoveryError> {
        let (journal, names) = EntityJournal::open(&persistence.dir, persistence.fsync)?;
        let mut registry = EntityRegistry::new();
        for name in &names {
            registry.intern(name);
        }
        let engine =
            ShardedDynDens::with_persistence(density, engine_config, shard_config, persistence)?;
        // Cross-check: every vertex the recovered engines reference must
        // have a recovered name, otherwise new entities would be interned
        // onto recovered vertices' ids and silently merged into their edge
        // history. (The registry being *ahead* is fine — a journalled name
        // whose first updates were lost with a WAL tear simply has no edges
        // yet.)
        let vertices = engine.vertex_universe();
        if registry.len() < vertices {
            return Err(PipelineRecoveryError::RegistryBehindEngine {
                names: registry.len(),
                vertices,
            });
        }
        Ok(ShardedStoryPipeline {
            registry,
            generator: EdgeUpdateGenerator::new(association, mean_life),
            engine,
            diversity_penalty: 0.8,
            updates: Vec::new(),
            journal: Some(journal),
        })
    }

    /// Sets the diversity penalty used when ranking stories (default 0.8).
    pub fn with_diversity_penalty(mut self, penalty: f64) -> Self {
        self.diversity_penalty = penalty;
        self
    }

    /// The entity registry (name ↔ vertex mapping).
    pub fn registry(&self) -> &EntityRegistry {
        &self.registry
    }

    /// The sharded engine fleet.
    pub fn engine(&self) -> &ShardedDynDens<D> {
        &self.engine
    }

    /// Mutable access to the fleet, for operations that reshape it (driving
    /// a [`Rebalancer`](dyndens_shard::Rebalancer) loop, explicit splits).
    pub fn engine_mut(&mut self) -> &mut ShardedDynDens<D> {
        &mut self.engine
    }

    /// Splits shard `slot` of the fleet online (see
    /// [`ShardedDynDens::split_shard`]). The pipeline needs no coordination
    /// beyond passing the call through: the entity registry lives on the
    /// ingest side and assigns **global** vertex ids, so the name ↔ vertex
    /// mapping — and the entity-name journal of a persistent pipeline — is
    /// untouched by any change of which worker owns which vertex. Stories
    /// served before and after the split describe the same entities with the
    /// same names.
    pub fn split_shard(
        &mut self,
        slot: usize,
    ) -> Result<dyndens_shard::SplitReport, dyndens_shard::RebalanceError> {
        self.engine.split_shard(slot)
    }

    /// The update generator, exposing stream statistics.
    pub fn generator(&self) -> &EdgeUpdateGenerator<M> {
        &self.generator
    }

    /// Ingests a post given as `(timestamp, entity names)`. The resulting
    /// edge updates are routed to their owner shards asynchronously; the
    /// number of updates routed is returned.
    pub fn ingest(&mut self, timestamp: f64, entity_names: &[&str]) -> usize {
        let entities = entity_names
            .iter()
            .map(|n| {
                // Durability before visibility, like the shard WAL: a new
                // name reaches the journal before any update that uses its
                // vertex id is routed, so recovery can never see edges whose
                // entity name is unknown.
                if let (Some(journal), None) = (self.journal.as_mut(), self.registry.get(n)) {
                    journal
                        .append(n)
                        .unwrap_or_else(|e| panic!("entity journal append failed: {e}"));
                }
                self.registry.intern(n)
            })
            .collect();
        let post = Post::new(timestamp, entities);
        self.ingest_post(&post)
    }

    /// Ingests an already entity-resolved post, returning the number of edge
    /// updates routed to the shards.
    pub fn ingest_post(&mut self, post: &Post) -> usize {
        self.updates.clear();
        self.generator.process_post_into(post, &mut self.updates);
        let routed = self.updates.len();
        if routed > 0 {
            let updates = std::mem::take(&mut self.updates);
            self.engine.apply_batch(&updates);
            self.updates = updates;
        }
        routed
    }

    /// Blocks until every routed update has been applied by its shard.
    pub fn flush(&self) {
        self.engine.flush();
    }

    /// The current top stories, diversity-ranked. Authoritative: flushes the
    /// shard queues before reading.
    pub fn top_stories(&self, limit: usize) -> Vec<Story> {
        let candidates = self.engine.output_dense();
        self.rank(&candidates, limit)
    }

    /// The top stories as of the shards' latest published snapshots:
    /// non-blocking with respect to ingest, at most one micro-batch stale per
    /// shard. Candidates are limited to each shard's published top-k.
    pub fn top_stories_latest(&self, limit: usize) -> Vec<Story> {
        let MergedStories { stories, .. } = self.engine.view().snapshot();
        self.rank(&stories, limit)
    }

    /// A non-blocking read handle that can be handed to serving threads.
    pub fn view(&self) -> StoryView {
        self.engine.view()
    }

    /// The shards' latest published sequence numbers (one atomic load per
    /// shard, no flush): the cursor a serving process compares a client's
    /// `Poll` cursor against.
    pub fn per_shard_seq(&self) -> Vec<u64> {
        self.engine.view().per_shard_seq()
    }

    /// The [`DenseEvent`](dyndens_core::DenseEvent)s of one shard after
    /// `since_seq`, served from the shard's bounded delta retention ring.
    /// See [`StoryView::deltas_since`] for the catch-up semantics.
    pub fn deltas_since(&self, shard: usize, since_seq: u64) -> dyndens_shard::DeltaCatchUp {
        self.engine.view().deltas_since(shard, since_seq)
    }

    /// A snapshot of the registry's names in intern (= vertex id) order, for
    /// a serving process's name table (`names[i]` names `VertexId(i)`).
    pub fn entity_names(&self) -> Vec<String> {
        self.registry.names().to_vec()
    }

    /// Number of stories currently reported (flushes first).
    pub fn story_count(&self) -> usize {
        self.engine.output_dense_count()
    }

    fn rank(&self, candidates: &[(dyndens_graph::VertexSet, f64)], limit: usize) -> Vec<Story> {
        rank_with_diversity(candidates, self.diversity_penalty, limit)
            .into_iter()
            .map(|(vertices, density, adjusted_density)| Story {
                entities: self.registry.describe(vertices.iter()),
                vertices,
                density,
                adjusted_density,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::ChiSquareCorrelation;
    use crate::story::StoryPipeline;
    use dyndens_density::AvgWeight;
    use dyndens_shard::ShardFn;

    fn sharded_pipeline(n_shards: usize) -> ShardedStoryPipeline<ChiSquareCorrelation, AvgWeight> {
        ShardedStoryPipeline::new(
            ChiSquareCorrelation::default(),
            7200.0,
            AvgWeight,
            DynDensConfig::new(0.45, 4).with_delta_it_fraction(0.3),
            ShardConfig::new(n_shards)
                .with_shard_fn(ShardFn::Hashed)
                .with_max_batch(8),
        )
    }

    fn feed_raid_story(p: &mut ShardedStoryPipeline<ChiSquareCorrelation, AvgWeight>) {
        for i in 0..40 {
            let t = i as f64 * 10.0;
            p.ingest(t, &["Abbottabad", "Osama bin Laden"]);
            p.ingest(t + 1.0, &["Barack Obama", "Osama bin Laden"]);
            p.ingest(
                t + 2.0,
                &[match i % 4 {
                    0 => "Justin Bieber",
                    1 => "Lady Gaga",
                    2 => "Royal Wedding",
                    _ => "PlayStation",
                }],
            );
        }
    }

    #[test]
    fn sharded_pipeline_surfaces_stories() {
        let mut p = sharded_pipeline(2);
        feed_raid_story(&mut p);
        assert!(p.story_count() > 0, "expected at least one story");
        let stories = p.top_stories(3);
        assert!(!stories.is_empty());
        let all_entities: Vec<String> = stories.iter().flat_map(|s| s.entities.clone()).collect();
        assert!(all_entities.iter().any(|e| e == "Osama bin Laden"));
        for s in &stories {
            assert!(s.density > 0.0);
            assert!(s.adjusted_density <= s.density + 1e-12);
            assert_eq!(s.entities.len(), s.vertices.len());
        }
        // The non-blocking path converges to the same answer once flushed.
        p.flush();
        let latest = p.top_stories_latest(3);
        assert_eq!(
            latest.iter().map(|s| &s.vertices).collect::<Vec<_>>(),
            stories.iter().map(|s| &s.vertices).collect::<Vec<_>>(),
        );
        let view = p.view();
        assert!(view.snapshot().seq > 0);
    }

    #[test]
    fn persistent_pipeline_serves_recovered_stories() {
        use dyndens_shard::{FsyncPolicy, PersistenceConfig};

        let dir = std::env::temp_dir().join(format!("dyndens-pipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(4)
        };
        let build = |p: PersistenceConfig| {
            ShardedStoryPipeline::with_persistence(
                ChiSquareCorrelation::default(),
                7200.0,
                AvgWeight,
                DynDensConfig::new(0.45, 4).with_delta_it_fraction(0.3),
                ShardConfig::new(2)
                    .with_shard_fn(ShardFn::Hashed)
                    .with_max_batch(8),
                p,
            )
            .expect("persistent pipeline construction")
        };

        let want = {
            let mut p = build(persistence());
            feed_raid_story(&mut p);
            p.flush();
            let stories: Vec<_> = p.top_stories(3).into_iter().map(|s| s.vertices).collect();
            assert!(!stories.is_empty());
            stories
            // dropped here: "crash" without a final snapshot
        };

        // A fresh process recovers the engine slice AND the entity registry
        // (from the name journal), serving the same stories with the right
        // names before any new post arrives.
        let mut p2 = build(persistence());
        assert!(p2
            .engine()
            .recovery_reports()
            .iter()
            .any(|r| r.recovered_seq > 0));
        assert!(!p2.registry().is_empty(), "registry must recover");
        let recovered_stories = p2.top_stories(3);
        let got: Vec<_> = recovered_stories.iter().map(|s| &s.vertices).collect();
        assert_eq!(
            got,
            want.iter().collect::<Vec<_>>(),
            "recovered pipeline serves the same stories"
        );
        for s in &recovered_stories {
            for e in &s.entities {
                assert!(
                    !e.starts_with("entity#"),
                    "recovered story lost its entity names: {e}"
                );
            }
        }
        // New entities after recovery get fresh vertex ids — they must not
        // be merged into recovered entities' vertices.
        let next_id = p2.registry().len() as u32;
        p2.ingest(99_999.0, &["Brand New Entity"]);
        assert_eq!(
            p2.registry().get("Brand New Entity"),
            Some(dyndens_graph::VertexId(next_id))
        );
        drop(p2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_entity_journal_is_rejected_not_merged() {
        use dyndens_shard::{FsyncPolicy, PersistenceConfig};

        let dir = std::env::temp_dir().join(format!("dyndens-entjournal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            ShardedStoryPipeline::with_persistence(
                ChiSquareCorrelation::default(),
                7200.0,
                AvgWeight,
                DynDensConfig::new(0.45, 4).with_delta_it_fraction(0.3),
                ShardConfig::new(2).with_max_batch(8),
                PersistenceConfig::new(&dir).with_fsync(FsyncPolicy::Never),
            )
        };
        {
            let mut p = build().unwrap();
            feed_raid_story(&mut p);
            p.flush();
        }
        // Corrupt the FIRST journal record: the scan stops at offset 0, so
        // the registry would recover no names while the engines reference
        // many vertices — a silent-merge hazard that must be a hard error.
        let journal = dir.join("entities.log");
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&journal, &bytes).unwrap();
        match build() {
            Err(PipelineRecoveryError::RegistryBehindEngine { names, vertices }) => {
                assert!(names < vertices, "{names} vs {vertices}");
            }
            Err(other) => panic!("expected RegistryBehindEngine, got {other}"),
            Ok(_) => panic!("damaged entity journal was accepted"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn split_keeps_registry_and_stories_stable() {
        // A split moves engine slices between workers but never touches the
        // ingest-side entity registry: vertex ids are global, so the story
        // set (and its names) at the split point is identical before and
        // after, and post-split ingest keeps resolving the same entities.
        let mut p = sharded_pipeline(2);
        feed_raid_story(&mut p);
        p.flush();
        let registry_before: Vec<String> = p.entity_names();
        let before: Vec<_> = p.top_stories(5);
        assert!(!before.is_empty());

        let report = p.split_shard(0).expect("split");
        assert_eq!(p.engine().n_shards(), 3);
        assert_eq!(report.new_slot, 2);
        assert_eq!(p.entity_names(), registry_before, "registry untouched");
        let after = p.top_stories(5);
        assert_eq!(
            after.iter().map(|s| &s.vertices).collect::<Vec<_>>(),
            before.iter().map(|s| &s.vertices).collect::<Vec<_>>(),
        );
        assert_eq!(
            after.iter().map(|s| &s.entities).collect::<Vec<_>>(),
            before.iter().map(|s| &s.entities).collect::<Vec<_>>(),
            "stories describe the same entities with the same names"
        );

        // Post-split ingest still resolves existing names to their original
        // vertices and serves stories through the grown fleet.
        p.ingest(401.0, &["Abbottabad", "Osama bin Laden"]);
        p.flush();
        assert_eq!(p.entity_names().len(), registry_before.len());
        assert!(p.story_count() > 0);
        assert_eq!(p.view().n_shards(), 3);
    }

    #[test]
    fn single_shard_pipeline_matches_story_pipeline() {
        // One shard, entity interning in the same order: the sharded pipeline
        // must report exactly the stories of the sequential pipeline.
        let mut sharded = sharded_pipeline(1);
        let mut reference = StoryPipeline::new(
            ChiSquareCorrelation::default(),
            7200.0,
            AvgWeight,
            DynDensConfig::new(0.45, 4).with_delta_it_fraction(0.3),
        );
        for i in 0..40 {
            let t = i as f64 * 10.0;
            for (dt, names) in [
                (0.0, vec!["NATO", "Libya"]),
                (0.3, vec!["Sony", "PlayStation"]),
                (0.6, vec!["noise"]),
            ] {
                sharded.ingest(t + dt, &names);
                reference.ingest(t + dt, &names);
            }
        }
        let got: Vec<_> = sharded
            .top_stories(5)
            .into_iter()
            .map(|s| s.vertices)
            .collect();
        let want: Vec<_> = reference
            .top_stories(5)
            .into_iter()
            .map(|s| s.vertices)
            .collect();
        assert_eq!(got, want);
        assert_eq!(sharded.story_count(), reference.story_count());
    }
}
