//! Sharded end-to-end story identification: posts in, ranked stories out,
//! ingest parallelised across shard workers.
//!
//! This is the scale-out counterpart of [`StoryPipeline`](crate::story::StoryPipeline):
//! the entity registry and the post → edge-weight-update generator run on the
//! ingest thread (they are cheap and inherently sequential per post), while
//! the expensive dense-subgraph maintenance is routed through a
//! [`ShardedDynDens`] fleet. Story reads come either from the authoritative
//! flushing path ([`ShardedStoryPipeline::top_stories`]) or from the
//! non-blocking, bounded-lag [`StoryView`] path
//! ([`ShardedStoryPipeline::top_stories_latest`]).

use crate::entity::EntityRegistry;
use crate::measures::AssociationMeasure;
use crate::pipeline::EdgeUpdateGenerator;
use crate::post::Post;
use crate::ranking::rank_with_diversity;
use crate::story::Story;
use dyndens_core::DynDensConfig;
use dyndens_density::DensityMeasure;
use dyndens_graph::EdgeUpdate;
use dyndens_shard::{MergedStories, ShardConfig, ShardedDynDens, StoryView};

/// The sharded real-time story identification pipeline.
#[derive(Debug)]
pub struct ShardedStoryPipeline<M: AssociationMeasure, D: DensityMeasure> {
    registry: EntityRegistry,
    generator: EdgeUpdateGenerator<M>,
    engine: ShardedDynDens<D>,
    diversity_penalty: f64,
    /// Scratch buffer reused across posts.
    updates: Vec<EdgeUpdate>,
}

impl<M: AssociationMeasure, D: DensityMeasure> ShardedStoryPipeline<M, D> {
    /// Creates a pipeline with the given association measure, exponential
    /// decay mean life (seconds), density measure, engine configuration and
    /// shard configuration.
    pub fn new(
        association: M,
        mean_life: f64,
        density: D,
        engine_config: DynDensConfig,
        shard_config: ShardConfig,
    ) -> Self {
        ShardedStoryPipeline {
            registry: EntityRegistry::new(),
            generator: EdgeUpdateGenerator::new(association, mean_life),
            engine: ShardedDynDens::new(density, engine_config, shard_config),
            diversity_penalty: 0.8,
            updates: Vec::new(),
        }
    }

    /// Sets the diversity penalty used when ranking stories (default 0.8).
    pub fn with_diversity_penalty(mut self, penalty: f64) -> Self {
        self.diversity_penalty = penalty;
        self
    }

    /// The entity registry (name ↔ vertex mapping).
    pub fn registry(&self) -> &EntityRegistry {
        &self.registry
    }

    /// The sharded engine fleet.
    pub fn engine(&self) -> &ShardedDynDens<D> {
        &self.engine
    }

    /// The update generator, exposing stream statistics.
    pub fn generator(&self) -> &EdgeUpdateGenerator<M> {
        &self.generator
    }

    /// Ingests a post given as `(timestamp, entity names)`. The resulting
    /// edge updates are routed to their owner shards asynchronously; the
    /// number of updates routed is returned.
    pub fn ingest(&mut self, timestamp: f64, entity_names: &[&str]) -> usize {
        let entities = entity_names
            .iter()
            .map(|n| self.registry.intern(n))
            .collect();
        let post = Post::new(timestamp, entities);
        self.ingest_post(&post)
    }

    /// Ingests an already entity-resolved post, returning the number of edge
    /// updates routed to the shards.
    pub fn ingest_post(&mut self, post: &Post) -> usize {
        self.updates.clear();
        self.generator.process_post_into(post, &mut self.updates);
        let routed = self.updates.len();
        if routed > 0 {
            let updates = std::mem::take(&mut self.updates);
            self.engine.apply_batch(&updates);
            self.updates = updates;
        }
        routed
    }

    /// Blocks until every routed update has been applied by its shard.
    pub fn flush(&self) {
        self.engine.flush();
    }

    /// The current top stories, diversity-ranked. Authoritative: flushes the
    /// shard queues before reading.
    pub fn top_stories(&self, limit: usize) -> Vec<Story> {
        let candidates = self.engine.output_dense();
        self.rank(&candidates, limit)
    }

    /// The top stories as of the shards' latest published snapshots:
    /// non-blocking with respect to ingest, at most one micro-batch stale per
    /// shard. Candidates are limited to each shard's published top-k.
    pub fn top_stories_latest(&self, limit: usize) -> Vec<Story> {
        let MergedStories { stories, .. } = self.engine.view().snapshot();
        self.rank(&stories, limit)
    }

    /// A non-blocking read handle that can be handed to serving threads.
    pub fn view(&self) -> StoryView {
        self.engine.view()
    }

    /// Number of stories currently reported (flushes first).
    pub fn story_count(&self) -> usize {
        self.engine.output_dense_count()
    }

    fn rank(&self, candidates: &[(dyndens_graph::VertexSet, f64)], limit: usize) -> Vec<Story> {
        rank_with_diversity(candidates, self.diversity_penalty, limit)
            .into_iter()
            .map(|(vertices, density, adjusted_density)| Story {
                entities: self.registry.describe(vertices.iter()),
                vertices,
                density,
                adjusted_density,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::ChiSquareCorrelation;
    use crate::story::StoryPipeline;
    use dyndens_density::AvgWeight;
    use dyndens_shard::ShardFn;

    fn sharded_pipeline(n_shards: usize) -> ShardedStoryPipeline<ChiSquareCorrelation, AvgWeight> {
        ShardedStoryPipeline::new(
            ChiSquareCorrelation::default(),
            7200.0,
            AvgWeight,
            DynDensConfig::new(0.45, 4).with_delta_it_fraction(0.3),
            ShardConfig::new(n_shards)
                .with_shard_fn(ShardFn::Hashed)
                .with_max_batch(8),
        )
    }

    fn feed_raid_story(p: &mut ShardedStoryPipeline<ChiSquareCorrelation, AvgWeight>) {
        for i in 0..40 {
            let t = i as f64 * 10.0;
            p.ingest(t, &["Abbottabad", "Osama bin Laden"]);
            p.ingest(t + 1.0, &["Barack Obama", "Osama bin Laden"]);
            p.ingest(
                t + 2.0,
                &[match i % 4 {
                    0 => "Justin Bieber",
                    1 => "Lady Gaga",
                    2 => "Royal Wedding",
                    _ => "PlayStation",
                }],
            );
        }
    }

    #[test]
    fn sharded_pipeline_surfaces_stories() {
        let mut p = sharded_pipeline(2);
        feed_raid_story(&mut p);
        assert!(p.story_count() > 0, "expected at least one story");
        let stories = p.top_stories(3);
        assert!(!stories.is_empty());
        let all_entities: Vec<String> = stories.iter().flat_map(|s| s.entities.clone()).collect();
        assert!(all_entities.iter().any(|e| e == "Osama bin Laden"));
        for s in &stories {
            assert!(s.density > 0.0);
            assert!(s.adjusted_density <= s.density + 1e-12);
            assert_eq!(s.entities.len(), s.vertices.len());
        }
        // The non-blocking path converges to the same answer once flushed.
        p.flush();
        let latest = p.top_stories_latest(3);
        assert_eq!(
            latest.iter().map(|s| &s.vertices).collect::<Vec<_>>(),
            stories.iter().map(|s| &s.vertices).collect::<Vec<_>>(),
        );
        let view = p.view();
        assert!(view.snapshot().seq > 0);
    }

    #[test]
    fn single_shard_pipeline_matches_story_pipeline() {
        // One shard, entity interning in the same order: the sharded pipeline
        // must report exactly the stories of the sequential pipeline.
        let mut sharded = sharded_pipeline(1);
        let mut reference = StoryPipeline::new(
            ChiSquareCorrelation::default(),
            7200.0,
            AvgWeight,
            DynDensConfig::new(0.45, 4).with_delta_it_fraction(0.3),
        );
        for i in 0..40 {
            let t = i as f64 * 10.0;
            for (dt, names) in [
                (0.0, vec!["NATO", "Libya"]),
                (0.3, vec!["Sony", "PlayStation"]),
                (0.6, vec!["noise"]),
            ] {
                sharded.ingest(t + dt, &names);
                reference.ingest(t + dt, &names);
            }
        }
        let got: Vec<_> = sharded
            .top_stories(5)
            .into_iter()
            .map(|s| s.vertices)
            .collect();
        let want: Vec<_> = reference
            .top_stories(5)
            .into_iter()
            .map(|s| s.vertices)
            .collect();
        assert_eq!(got, want);
        assert_eq!(sharded.story_count(), reference.story_count());
    }
}
