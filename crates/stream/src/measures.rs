//! Association measures: turning (co-)occurrence statistics into edge weights.
//!
//! The paper's techniques are agnostic to the specific measure of pairwise
//! entity association; its evaluation uses two concrete choices which are both
//! implemented here behind the [`AssociationMeasure`] trait:
//!
//! * a combination of the chi-square test and the correlation (phi)
//!   coefficient — the **weighted** dataset: the edge weight is the positive
//!   part of the correlation coefficient, retained only when the chi-square
//!   statistic shows significant correlation (p < 5%);
//! * a thresholded log-likelihood ratio — the **unweighted** dataset: an edge
//!   of weight 1 exists when both entities are frequent enough (at least five
//!   posts each) and the log-likelihood ratio of their co-occurrence is
//!   significant (p < 1%), weight 0 otherwise.
//!
//! Both are computed from the 2×2 contingency table of decayed counts provided
//! by [`PairStats`].

use crate::decay::PairStats;

/// Chi-square critical value at p < 5%, one degree of freedom.
pub const CHI2_CRITICAL_5PCT: f64 = 3.841;
/// Chi-square critical value at p < 1%, one degree of freedom.
pub const CHI2_CRITICAL_1PCT: f64 = 6.635;

/// A measure of pairwise association strength between two entities.
pub trait AssociationMeasure: std::fmt::Debug + Clone + Send + Sync + 'static {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The edge weight for a pair with the given contingency statistics.
    /// Must be non-negative and finite; `0.0` means "no edge".
    fn weight(&self, stats: &PairStats) -> f64;
}

/// The four cells of the 2×2 contingency table, clamped to be non-negative
/// and consistent.
fn contingency(stats: &PairStats) -> (f64, f64, f64, f64) {
    let k11 = stats.count_ab.max(0.0);
    let k12 = (stats.count_a - k11).max(0.0);
    let k21 = (stats.count_b - k11).max(0.0);
    let k22 = (stats.total - k11 - k12 - k21).max(0.0);
    (k11, k12, k21, k22)
}

/// Pearson's chi-square statistic of the 2×2 table.
pub fn chi_square(stats: &PairStats) -> f64 {
    let (k11, k12, k21, k22) = contingency(stats);
    let n = k11 + k12 + k21 + k22;
    let row1 = k11 + k12;
    let row2 = k21 + k22;
    let col1 = k11 + k21;
    let col2 = k12 + k22;
    let denom = row1 * row2 * col1 * col2;
    if denom <= 0.0 || n <= 0.0 {
        return 0.0;
    }
    let det = k11 * k22 - k12 * k21;
    n * det * det / denom
}

/// The correlation (phi) coefficient of the 2×2 table, in `[-1, 1]`.
pub fn correlation_coefficient(stats: &PairStats) -> f64 {
    let (k11, k12, k21, k22) = contingency(stats);
    let denom = ((k11 + k12) * (k21 + k22) * (k11 + k21) * (k12 + k22)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (k11 * k22 - k12 * k21) / denom
}

/// The log-likelihood ratio statistic (G²) of the 2×2 table.
pub fn log_likelihood_ratio(stats: &PairStats) -> f64 {
    let (k11, k12, k21, k22) = contingency(stats);
    let n = k11 + k12 + k21 + k22;
    if n <= 0.0 {
        return 0.0;
    }
    let row1 = k11 + k12;
    let row2 = k21 + k22;
    let col1 = k11 + k21;
    let col2 = k12 + k22;
    let term = |k: f64, row: f64, col: f64| -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        let expected = row * col / n;
        if expected <= 0.0 {
            return 0.0;
        }
        k * (k / expected).ln()
    };
    let g2 = 2.0
        * (term(k11, row1, col1)
            + term(k12, row1, col2)
            + term(k21, row2, col1)
            + term(k22, row2, col2));
    g2.max(0.0)
}

/// The chi-square + correlation-coefficient measure used for the paper's
/// *weighted* dataset: weight is `max(correlation coefficient, 0)` when the
/// chi-square statistic is significant, `0` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareCorrelation {
    /// The chi-square significance cut-off (default: p < 5%).
    pub chi2_critical: f64,
}

impl Default for ChiSquareCorrelation {
    fn default() -> Self {
        ChiSquareCorrelation {
            chi2_critical: CHI2_CRITICAL_5PCT,
        }
    }
}

impl AssociationMeasure for ChiSquareCorrelation {
    fn name(&self) -> &'static str {
        "chi-square + correlation coefficient"
    }

    fn weight(&self, stats: &PairStats) -> f64 {
        if stats.count_ab <= 0.0 {
            return 0.0;
        }
        if chi_square(stats) < self.chi2_critical {
            return 0.0;
        }
        correlation_coefficient(stats).max(0.0)
    }
}

/// The thresholded log-likelihood-ratio measure used for the paper's
/// *unweighted* dataset: weight 1 when each entity appears in at least
/// `min_occurrences` posts and the log-likelihood ratio is significant,
/// weight 0 otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLikelihoodRatio {
    /// Minimum (decayed) occurrence count per entity (default: 5).
    pub min_occurrences: f64,
    /// The G² significance cut-off (default: p < 1%).
    pub critical_value: f64,
    /// When `false`, the raw G² value is used as the weight instead of the
    /// 0/1 thresholding — the variant used for the qualitative experiment of
    /// Table 3 ("edge weights were retained ... as opposed to being
    /// thresholded").
    pub thresholded: bool,
}

impl Default for LogLikelihoodRatio {
    fn default() -> Self {
        LogLikelihoodRatio {
            min_occurrences: 5.0,
            critical_value: CHI2_CRITICAL_1PCT,
            thresholded: true,
        }
    }
}

impl LogLikelihoodRatio {
    /// The non-thresholded variant (weights are raw, scaled G² values) at the
    /// given significance level.
    pub fn raw(critical_value: f64) -> Self {
        LogLikelihoodRatio {
            min_occurrences: 1.0,
            critical_value,
            thresholded: false,
        }
    }
}

impl AssociationMeasure for LogLikelihoodRatio {
    fn name(&self) -> &'static str {
        "log-likelihood ratio"
    }

    fn weight(&self, stats: &PairStats) -> f64 {
        if stats.count_ab <= 0.0
            || stats.count_a < self.min_occurrences
            || stats.count_b < self.min_occurrences
        {
            return 0.0;
        }
        // Positive association only: if the pair co-occurs less than expected
        // under independence, it carries no edge.
        if correlation_coefficient(stats) <= 0.0 {
            return 0.0;
        }
        let g2 = log_likelihood_ratio(stats);
        if g2 < self.critical_value {
            0.0
        } else if self.thresholded {
            1.0
        } else {
            // Scale the raw statistic into a moderate range so densities stay
            // comparable across measures.
            g2 / self.critical_value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(count_a: f64, count_b: f64, count_ab: f64, total: f64) -> PairStats {
        PairStats {
            count_a,
            count_b,
            count_ab,
            total,
        }
    }

    #[test]
    fn independent_pair_has_no_weight() {
        // a and b each appear in half the posts, co-occur exactly as expected
        // under independence.
        let s = stats(50.0, 50.0, 25.0, 100.0);
        assert!(chi_square(&s) < 1e-9);
        assert!(correlation_coefficient(&s).abs() < 1e-9);
        assert!(log_likelihood_ratio(&s) < 1e-9);
        assert_eq!(ChiSquareCorrelation::default().weight(&s), 0.0);
        assert_eq!(LogLikelihoodRatio::default().weight(&s), 0.0);
    }

    #[test]
    fn perfectly_correlated_pair_has_full_weight() {
        // a and b always appear together, in 20 of 100 posts.
        let s = stats(20.0, 20.0, 20.0, 100.0);
        assert!(chi_square(&s) > CHI2_CRITICAL_5PCT);
        assert!((correlation_coefficient(&s) - 1.0).abs() < 1e-9);
        assert!((ChiSquareCorrelation::default().weight(&s) - 1.0).abs() < 1e-9);
        assert_eq!(LogLikelihoodRatio::default().weight(&s), 1.0);
    }

    #[test]
    fn negatively_correlated_pair_has_no_weight() {
        // a and b never co-occur although both are common.
        let s = stats(40.0, 40.0, 0.0, 100.0);
        assert!(correlation_coefficient(&s) < 0.0);
        assert_eq!(ChiSquareCorrelation::default().weight(&s), 0.0);
        assert_eq!(LogLikelihoodRatio::default().weight(&s), 0.0);
    }

    #[test]
    fn rare_entities_are_filtered_by_llr_threshold() {
        // Strong association but each entity appears in fewer than 5 posts.
        let s = stats(3.0, 3.0, 3.0, 100.0);
        assert_eq!(LogLikelihoodRatio::default().weight(&s), 0.0);
        // The chi-square measure has no such floor and reports a weight.
        assert!(ChiSquareCorrelation::default().weight(&s) > 0.0);
    }

    #[test]
    fn weak_association_fails_significance() {
        // Barely above independence with small counts: not significant.
        let s = stats(6.0, 6.0, 1.0, 100.0);
        assert_eq!(ChiSquareCorrelation::default().weight(&s), 0.0);
        assert_eq!(LogLikelihoodRatio::default().weight(&s), 0.0);
    }

    #[test]
    fn raw_llr_variant_scales_with_strength() {
        let weak = stats(10.0, 10.0, 5.0, 200.0);
        let strong = stats(10.0, 10.0, 10.0, 200.0);
        let m = LogLikelihoodRatio::raw(CHI2_CRITICAL_5PCT);
        let w_weak = m.weight(&weak);
        let w_strong = m.weight(&strong);
        assert!(w_strong > w_weak, "{w_strong} should exceed {w_weak}");
        assert!(w_weak >= 0.0);
    }

    #[test]
    fn measures_are_finite_on_degenerate_tables() {
        for s in [
            stats(0.0, 0.0, 0.0, 0.0),
            stats(1.0, 0.0, 0.0, 1.0),
            stats(5.0, 5.0, 5.0, 5.0),
            stats(1e-9, 1e-9, 1e-9, 1e-9),
        ] {
            for value in [
                chi_square(&s),
                correlation_coefficient(&s),
                log_likelihood_ratio(&s),
                ChiSquareCorrelation::default().weight(&s),
                LogLikelihoodRatio::default().weight(&s),
            ] {
                assert!(value.is_finite(), "non-finite value for {s:?}");
            }
        }
    }

    #[test]
    fn names_are_reported() {
        assert!(ChiSquareCorrelation::default()
            .name()
            .contains("chi-square"));
        assert!(LogLikelihoodRatio::default()
            .name()
            .contains("log-likelihood"));
    }
}
