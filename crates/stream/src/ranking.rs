//! Diversity-aware re-ranking of output-dense subgraphs for presentation.
//!
//! Dense subgraphs overlap heavily (a story and its facets all clear the
//! density threshold), so presenting the raw list of output-dense subgraphs to
//! a user would be repetitive. Section 5.3 of the paper re-ranks them in a
//! diversity-aware manner: subgraphs are picked greedily by adjusted density,
//! where the adjustment multiplies the density by
//! `1 - penalty * (fraction of the story's entities already covered by
//! previously selected stories)`.

use dyndens_graph::{FxHashSet, VertexId, VertexSet};

/// Greedily selects up to `limit` subgraphs, penalising overlap with already
/// selected ones. Returns `(vertices, original_density, adjusted_density)` in
/// selection order.
///
/// `penalty` is the overlap penalty factor (the paper uses `0.8`).
pub fn rank_with_diversity(
    candidates: &[(VertexSet, f64)],
    penalty: f64,
    limit: usize,
) -> Vec<(VertexSet, f64, f64)> {
    assert!((0.0..=1.0).contains(&penalty), "penalty must lie in [0, 1]");
    let mut covered: FxHashSet<VertexId> = FxHashSet::default();
    let mut remaining: Vec<(VertexSet, f64)> = candidates.to_vec();
    let mut selected = Vec::new();

    while selected.len() < limit && !remaining.is_empty() {
        let mut best_idx = 0;
        let mut best_adjusted = f64::NEG_INFINITY;
        for (idx, (set, density)) in remaining.iter().enumerate() {
            let overlap = set.iter().filter(|v| covered.contains(v)).count();
            let fraction = overlap as f64 / set.len() as f64;
            let adjusted = density * (1.0 - penalty * fraction);
            if adjusted > best_adjusted {
                best_adjusted = adjusted;
                best_idx = idx;
            }
        }
        let (set, density) = remaining.swap_remove(best_idx);
        for v in set.iter() {
            covered.insert(v);
        }
        selected.push((set, density, best_adjusted));
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> VertexSet {
        VertexSet::from_ids(ids)
    }

    #[test]
    fn highest_density_is_selected_first() {
        let candidates = vec![
            (set(&[0, 1]), 1.0),
            (set(&[2, 3]), 2.0),
            (set(&[4, 5]), 1.5),
        ];
        let ranked = rank_with_diversity(&candidates, 0.8, 3);
        assert_eq!(ranked[0].0, set(&[2, 3]));
        assert_eq!(ranked[1].0, set(&[4, 5]));
        assert_eq!(ranked[2].0, set(&[0, 1]));
        // No overlap: adjusted densities equal the originals.
        for (_, d, adj) in &ranked {
            assert!((d - adj).abs() < 1e-12);
        }
    }

    #[test]
    fn overlapping_stories_are_penalised() {
        // {0,1,2} is densest; its sub-facet {0,1} would normally come second,
        // but the penalty pushes the disjoint {5,6} ahead of it.
        let candidates = vec![
            (set(&[0, 1, 2]), 2.0),
            (set(&[0, 1]), 1.9),
            (set(&[5, 6]), 1.2),
        ];
        let ranked = rank_with_diversity(&candidates, 0.8, 3);
        assert_eq!(ranked[0].0, set(&[0, 1, 2]));
        assert_eq!(ranked[1].0, set(&[5, 6]));
        assert_eq!(ranked[2].0, set(&[0, 1]));
        // The fully covered facet's adjusted density is 1.9 * (1 - 0.8).
        assert!((ranked[2].2 - 0.38).abs() < 1e-9);
    }

    #[test]
    fn zero_penalty_is_pure_density_order() {
        let candidates = vec![
            (set(&[0, 1, 2]), 2.0),
            (set(&[0, 1]), 1.9),
            (set(&[5, 6]), 1.2),
        ];
        let ranked = rank_with_diversity(&candidates, 0.0, 3);
        assert_eq!(ranked[1].0, set(&[0, 1]));
    }

    #[test]
    fn limit_and_empty_input() {
        let candidates = vec![(set(&[0, 1]), 1.0), (set(&[2, 3]), 2.0)];
        assert_eq!(rank_with_diversity(&candidates, 0.8, 1).len(), 1);
        assert!(rank_with_diversity(&[], 0.8, 5).is_empty());
        assert_eq!(rank_with_diversity(&candidates, 0.8, 10).len(), 2);
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn rejects_out_of_range_penalty() {
        let _ = rank_with_diversity(&[], 1.5, 3);
    }
}
