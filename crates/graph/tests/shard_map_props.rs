//! Property tests for the generational [`ShardMap`] routing trie: whatever
//! split/merge sequence a rebalancer throws at it, the map must keep
//! routing every vertex to a live worker, keep engine ids unique and below
//! the allocator watermark, offer exactly the true sibling pairs for
//! merging, and round-trip bit-exactly through its codec.

use dyndens_graph::codec::ByteReader;
use dyndens_graph::{ShardFn, ShardMap, VertexId};
use proptest::prelude::*;

/// Dense vertex sample: large enough to hit every residue class and several
/// routing-bit levels for any map these strategies can build.
const SAMPLE: u32 = 2048;

/// Maps evolved by an arbitrary split/merge sequence from an arbitrary base:
/// splits pick any slot (depth-limited splits are no-ops), merges pick any
/// offered candidate pair.
fn arb_map() -> impl Strategy<Value = ShardMap> {
    (
        0..2u8,
        1..5usize,
        prop::collection::vec((0..2u8, 0..64usize), 0..24),
    )
        .prop_map(|(base, n_base, ops)| {
            let base = if base == 0 {
                ShardFn::Hashed
            } else {
                ShardFn::Modulo
            };
            let mut map = ShardMap::new(base, n_base);
            for (kind, idx) in ops {
                if kind == 0 {
                    let _ = map.split(idx % map.n_workers());
                } else {
                    let candidates = map.merge_candidates();
                    if !candidates.is_empty() {
                        let (a, b) = candidates[idx % candidates.len()];
                        map.merge(a, b).expect("offered candidates must merge");
                    }
                }
            }
            map
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn routing_covers_every_worker_with_distinct_engines(map in arb_map()) {
        let n = map.n_workers();
        // Every vertex routes to a live worker slot.
        for v in 0..SAMPLE {
            prop_assert!(map.route(VertexId(v)) < n);
        }
        // Every worker slot is owned by exactly one leaf, with a unique
        // engine id below the allocator's watermark.
        let engines = map.worker_engines();
        prop_assert_eq!(engines.len(), n);
        let mut seen = std::collections::HashSet::new();
        for (slot, &engine) in engines.iter().enumerate() {
            prop_assert!(engine < map.next_engine());
            prop_assert!(
                seen.insert(engine),
                "engine {} serves two slots (second: {})", engine, slot
            );
            prop_assert_eq!(map.engine_of(slot), Some(engine));
        }
        // Modulo routing is exhaustively checkable: a dense vertex range
        // reaches every worker slot — no split ever strands a slot.
        if map.base_fn() == ShardFn::Modulo {
            let mut hit = vec![false; n];
            for v in 0..SAMPLE {
                hit[map.route(VertexId(v))] = true;
            }
            prop_assert!(hit.iter().all(|&h| h), "unreachable slots: {:?}", hit);
        }
    }

    #[test]
    fn codec_round_trips_bit_exactly(map in arb_map()) {
        let mut buf = Vec::new();
        map.encode_into(&mut buf);
        let back = ShardMap::decode(&mut ByteReader::new(&buf))
            .expect("a map's own encoding must decode");
        prop_assert_eq!(&back, &map);
        // Re-encoding is byte-stable: the manifest can be compared by bytes.
        let mut again = Vec::new();
        back.encode_into(&mut again);
        prop_assert_eq!(again, buf);
    }

    #[test]
    fn merge_candidates_are_exactly_the_mergeable_sibling_pairs(map in arb_map()) {
        let candidates = map.merge_candidates();
        // Every offered pair is a true leaf-sibling pair: merging succeeds
        // and shrinks the fleet by one slot.
        for &(a, b) in &candidates {
            prop_assert!(a != b);
            let mut clone = map.clone();
            prop_assert!(
                clone.merge(a, b).is_some(),
                "candidate ({}, {}) refused to merge", a, b
            );
            prop_assert_eq!(clone.n_workers(), map.n_workers() - 1);
            prop_assert_eq!(clone.generation(), map.generation() + 1);
        }
        // Every unordered pair NOT offered is refused (non-siblings, or
        // slots at different depths).
        for a in 0..map.n_workers() {
            for b in (a + 1)..map.n_workers() {
                if candidates.contains(&(a, b)) || candidates.contains(&(b, a)) {
                    continue;
                }
                let mut clone = map.clone();
                prop_assert!(
                    clone.merge(a, b).is_none(),
                    "non-sibling pair ({}, {}) merged", a, b
                );
            }
        }
    }

    #[test]
    fn split_then_merge_restores_routing(map in arb_map(), pick in 0..64usize) {
        let before = map.clone();
        let mut map = map;
        let slot = pick % map.n_workers();
        // At MAX_SPLIT_DEPTH the split is refused and nothing changes;
        // otherwise merging the fresh pair must undo the refinement.
        if let Some(spec) = map.split(slot) {
            prop_assert!(map.merge_candidates().contains(&(spec.slot, spec.new_slot)));
            let merged = map
                .merge(spec.slot, spec.new_slot)
                .expect("fresh siblings must merge");
            prop_assert_eq!(map.n_workers(), before.n_workers());
            // The freed slot was the newest slot, so no worker is renumbered
            // and the routing partition is restored exactly.
            prop_assert_eq!(merged.moved_slot, None);
            for v in 0..SAMPLE {
                prop_assert_eq!(map.route(VertexId(v)), before.route(VertexId(v)));
            }
            // Both topology changes are recorded, and the merged shard got a
            // fresh engine id (ids are never reused).
            prop_assert_eq!(map.generation(), before.generation() + 2);
            prop_assert!(merged.merged_engine >= before.next_engine());
        } else {
            prop_assert_eq!(&map, &before);
        }
    }
}
