//! Property tests for the `EdgeUpdate` binary codec: encode → decode must be
//! the identity on every valid update, including negative deltas and
//! maximum-ID vertices, and decoding must reject anything else without
//! panicking.

use dyndens_graph::codec::{put_f64, put_u32, ByteReader, CodecError};
use dyndens_graph::{EdgeUpdate, VertexId};
use proptest::prelude::*;

/// Arbitrary valid updates: distinct endpoints anywhere in the full `u32`
/// range (the `*` sentinel `u32::MAX` included — the codec is agnostic) and
/// finite deltas of either sign over many orders of magnitude.
fn update_strategy() -> impl Strategy<Value = EdgeUpdate> {
    (0..=u32::MAX, 0..=u32::MAX, -1e12f64..1e12, 0..4u8).prop_filter_map(
        "distinct endpoints",
        |(a, b, delta, scale)| {
            if a == b {
                return None;
            }
            // Exercise tiny and huge magnitudes, not just the uniform bulk.
            let delta = match scale {
                0 => delta,
                1 => delta * 1e-9,
                2 => delta * 1e290,
                _ => delta.trunc(),
            };
            Some(EdgeUpdate::new(VertexId(a), VertexId(b), delta))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_is_identity(u in update_strategy()) {
        let mut buf = Vec::new();
        u.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), EdgeUpdate::ENCODED_LEN);
        let mut r = ByteReader::new(&buf);
        let back = EdgeUpdate::decode(&mut r).expect("valid update must decode");
        prop_assert!(r.is_empty());
        prop_assert_eq!(back, u);
        // Bit-exact delta, not just approximate equality.
        prop_assert_eq!(back.delta.to_bits(), u.delta.to_bits());
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0..=255u8, 0..40)
    ) {
        let mut r = ByteReader::new(&bytes);
        // Decoding either succeeds with the invariants intact or is
        // rejected cleanly — never a panic.
        if let Ok(u) = EdgeUpdate::decode(&mut r) {
            prop_assert!(u.a < u.b);
            prop_assert!(u.delta.is_finite());
        }
    }

    #[test]
    fn truncated_encodings_are_rejected(u in update_strategy(), cut in 0..16usize) {
        let mut buf = Vec::new();
        u.encode_into(&mut buf);
        buf.truncate(cut);
        let mut r = ByteReader::new(&buf);
        prop_assert!(matches!(
            EdgeUpdate::decode(&mut r),
            Err(CodecError::Truncated { .. })
        ));
    }
}

#[test]
fn max_id_vertices_round_trip() {
    let u = EdgeUpdate::new(VertexId(u32::MAX - 1), VertexId(u32::MAX), -42.5);
    let mut buf = Vec::new();
    u.encode_into(&mut buf);
    let back = EdgeUpdate::decode(&mut ByteReader::new(&buf)).unwrap();
    assert_eq!(back, u);
}

#[test]
fn self_loop_bytes_are_rejected_not_panicked() {
    let mut buf = Vec::new();
    put_u32(&mut buf, 9);
    put_u32(&mut buf, 9);
    put_f64(&mut buf, 0.5);
    assert!(matches!(
        EdgeUpdate::decode(&mut ByteReader::new(&buf)),
        Err(CodecError::Invalid(_))
    ));
}
