//! Edge weight updates — the items of the input stream.

use crate::VertexId;

/// A single edge weight update `update_i = (a, b, delta)`: at time instant `i`
/// the weight of the edge between vertices `a` and `b` changes from `w_ab` to
/// `w_ab + delta`.
///
/// Updates with `delta > 0` ("positive updates") may create newly-dense
/// subgraphs and are the expensive case; updates with `delta < 0` ("negative
/// updates") can only shrink the dense set and are cheap to process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeUpdate {
    /// One endpoint of the updated edge.
    pub a: VertexId,
    /// The other endpoint of the updated edge.
    pub b: VertexId,
    /// The (signed) change in weight.
    pub delta: f64,
}

impl EdgeUpdate {
    /// Creates a new update, normalising the endpoint order so that `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self loops carry no meaning for pairwise entity
    /// association) or if `delta` is not finite.
    pub fn new(a: VertexId, b: VertexId, delta: f64) -> Self {
        assert!(a != b, "self-loop update ({a}, {b}) is not allowed");
        assert!(delta.is_finite(), "update delta must be finite");
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        EdgeUpdate { a, b, delta }
    }

    /// Returns `true` if this is a positive update (`delta > 0`).
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.delta > 0.0
    }

    /// Returns `true` if this is a negative update (`delta < 0`).
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.delta < 0.0
    }

    /// The two endpoints as a tuple `(a, b)` with `a < b`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_order() {
        let u = EdgeUpdate::new(VertexId(5), VertexId(2), 0.25);
        assert_eq!(u.endpoints(), (VertexId(2), VertexId(5)));
        assert!(u.is_positive());
        assert!(!u.is_negative());
    }

    #[test]
    fn negative_update_classified() {
        let u = EdgeUpdate::new(VertexId(0), VertexId(1), -0.5);
        assert!(u.is_negative());
        assert!(!u.is_positive());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = EdgeUpdate::new(VertexId(3), VertexId(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_delta_panics() {
        let _ = EdgeUpdate::new(VertexId(3), VertexId(4), f64::NAN);
    }
}
