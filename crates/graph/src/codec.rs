//! Hand-rolled binary codec for the persistence layer.
//!
//! The build environment is fully offline (see `vendor/`), so the write-ahead
//! log and the engine snapshots use a small, explicit little-endian codec
//! instead of a serde framework: fixed-width primitives, a table-driven
//! CRC-32 for integrity framing, and a bounds-checked [`ByteReader`] that
//! turns every malformed input into a [`CodecError`] instead of a panic.
//!
//! Layout conventions shared by every persisted artifact:
//!
//! * all integers little-endian; `f64` as its IEEE-754 bit pattern (exact —
//!   a restored score is bit-identical to the stored one);
//! * variable-length structures carry explicit counts up front;
//! * integrity is checked with CRC-32 (IEEE, reflected polynomial
//!   `0xEDB88320`), computed over the payload it frames.

use crate::{EdgeUpdate, VertexId, VertexSet};

/// An error decoding a persisted artifact. Decoding never panics: truncated,
/// corrupt or semantically invalid bytes all surface as a `CodecError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the expected structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The bytes decoded to a semantically invalid value.
    Invalid(&'static str),
    /// A CRC-32 check failed.
    CrcMismatch {
        /// The checksum stored alongside the payload.
        stored: u32,
        /// The checksum computed from the payload.
        computed: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            CodecError::CrcMismatch { stored, computed } => write!(
                f,
                "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used by the WAL record framing and the
/// snapshot trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends one length-prefixed, CRC-framed record:
/// `len u32 | crc32(payload) u32 | payload`. The inverse of
/// [`scan_frames`]; shared by the shard WAL and the entity-name journal.
pub fn put_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    put_u32(buf, payload.len() as u32);
    put_u32(buf, crc32(payload));
    buf.extend_from_slice(payload);
}

/// The result of scanning a stream of [`put_frame`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameScan {
    /// `true` if the input ended exactly at a record boundary; `false` if a
    /// truncated, CRC-invalid or semantically rejected suffix follows the
    /// last valid record (a torn tail, or corruption).
    pub clean: bool,
    /// Byte offset of the end of the last valid record — the length to
    /// truncate to when repairing a torn tail.
    pub valid_len: u64,
}

/// Scans length-prefixed CRC-framed records, calling `on_payload` for each
/// CRC-valid payload in order. `on_payload` returns `false` to reject a
/// payload that decodes to something semantically invalid — the scan then
/// stops at that record's boundary, exactly as it does for a truncated or
/// CRC-invalid suffix. Never panics on arbitrary input.
pub fn scan_frames<'a>(bytes: &'a [u8], mut on_payload: impl FnMut(&'a [u8]) -> bool) -> FrameScan {
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return FrameScan {
                clean: true,
                valid_len: pos as u64,
            };
        }
        let dirty = FrameScan {
            clean: false,
            valid_len: pos as u64,
        };
        if bytes.len() - pos < 8 {
            return dirty;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let stored = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if bytes.len() - pos - 8 < len {
            return dirty;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != stored || !on_payload(payload) {
            return dirty;
        }
        pos += 8 + len;
    }
}

/// Validates the standard persistence envelope `payload | crc32(payload)
/// u32` and returns the payload. Shared by engine snapshots, snapshot
/// files and the deployment manifest, so the framing lives in one place.
pub fn verify_crc_trailer(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            available: bytes.len(),
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(CodecError::CrcMismatch { stored, computed });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Little-endian primitive writers
// ---------------------------------------------------------------------------

/// Appends a single byte.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u32` in little-endian byte order.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian byte order.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian IEEE-754 bit pattern.
#[inline]
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string: `len u32 | bytes`. The inverse of
/// [`ByteReader::str`]. Used by the serving wire protocol for entity names
/// and error messages.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A cursor over a byte slice whose every read is bounds-checked.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Number of unread bytes.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its little-endian IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string written by [`put_str`]. The
    /// length prefix is validated against the remaining input *before*
    /// anything is materialised, so a corrupt huge length cannot drive an
    /// allocation.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Invalid("string is not valid UTF-8"))
    }
}

// ---------------------------------------------------------------------------
// VertexSet codec
// ---------------------------------------------------------------------------

impl VertexSet {
    /// Appends the canonical encoding: `count u32 | count × vertex u32`, in
    /// the set's ascending order.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.len() as u32);
        for v in self.iter() {
            put_u32(buf, v.0);
        }
    }

    /// Decodes a vertex set, validating the canonical-form invariant: the
    /// vertices must be strictly ascending (sorted and duplicate-free), so
    /// that decoding is exactly inverse to [`VertexSet::encode_into`] and a
    /// decoded set compares byte-identically to the encoded one.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<VertexSet, CodecError> {
        let count = r.u32()? as usize;
        // Bounds before allocation: a corrupt count cannot reserve memory
        // the input could never back. Saturating: `count * 4` must not wrap
        // on 32-bit targets (this decoder is reachable from network bytes).
        let needed = count.saturating_mul(4);
        if r.remaining() < needed {
            return Err(CodecError::Truncated {
                needed,
                available: r.remaining(),
            });
        }
        let mut vertices = Vec::with_capacity(count);
        let mut prev: Option<u32> = None;
        for _ in 0..count {
            let v = r.u32()?;
            if prev.is_some_and(|p| p >= v) {
                return Err(CodecError::Invalid("vertex set not strictly ascending"));
            }
            prev = Some(v);
            vertices.push(VertexId(v));
        }
        Ok(VertexSet::from_vertices(vertices))
    }
}

// ---------------------------------------------------------------------------
// EdgeUpdate codec
// ---------------------------------------------------------------------------

impl EdgeUpdate {
    /// Encoded size of one update: two `u32` endpoints plus an `f64` delta.
    pub const ENCODED_LEN: usize = 16;

    /// Appends the canonical 16-byte encoding (`a`, `b`, `delta`, all
    /// little-endian, with `a < b`).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let (a, b) = if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        put_u32(buf, a.0);
        put_u32(buf, b.0);
        put_f64(buf, self.delta);
    }

    /// Decodes one update from the reader, validating the invariants
    /// [`EdgeUpdate::new`] would otherwise enforce by panicking: endpoints in
    /// strictly ascending order (which also rules out self-loops) and a
    /// finite delta.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<EdgeUpdate, CodecError> {
        let a = VertexId(r.u32()?);
        let b = VertexId(r.u32()?);
        let delta = r.f64()?;
        if a >= b {
            return Err(CodecError::Invalid("edge endpoints not in ascending order"));
        }
        if !delta.is_finite() {
            return Err(CodecError::Invalid("edge update delta is not finite"));
        }
        Ok(EdgeUpdate { a, b, delta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(u: EdgeUpdate) -> EdgeUpdate {
        let mut buf = Vec::new();
        u.encode_into(&mut buf);
        assert_eq!(buf.len(), EdgeUpdate::ENCODED_LEN);
        let mut r = ByteReader::new(&buf);
        let back = EdgeUpdate::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        back
    }

    #[test]
    fn edge_update_round_trips_exactly() {
        for (a, b, delta) in [
            (0u32, 1u32, 1.5f64),
            (3, 9, -0.25),
            (7, 8, f64::MIN_POSITIVE),
            (0, u32::MAX, -1e300),
            (u32::MAX - 1, u32::MAX, 3.5),
        ] {
            let u = EdgeUpdate::new(VertexId(a), VertexId(b), delta);
            assert_eq!(round_trip(u), u);
        }
    }

    #[test]
    fn decode_rejects_malformed_updates() {
        // Self loop / descending order.
        let mut buf = Vec::new();
        put_u32(&mut buf, 5);
        put_u32(&mut buf, 5);
        put_f64(&mut buf, 1.0);
        assert!(matches!(
            EdgeUpdate::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid(_))
        ));
        // Non-finite delta.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2);
        put_f64(&mut buf, f64::NAN);
        assert!(matches!(
            EdgeUpdate::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid(_))
        ));
        // Truncated.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        assert!(matches!(
            EdgeUpdate::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn crc_trailer_round_trip_and_rejection() {
        let mut framed = b"payload".to_vec();
        put_u32(&mut framed, crc32(b"payload"));
        assert_eq!(verify_crc_trailer(&framed).unwrap(), b"payload");
        framed[2] ^= 0x10;
        assert!(matches!(
            verify_crc_trailer(&framed),
            Err(CodecError::CrcMismatch { .. })
        ));
        assert!(matches!(
            verify_crc_trailer(&[1, 2]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn str_round_trip_and_rejection() {
        let mut buf = Vec::new();
        put_str(&mut buf, "Osama bin Laden");
        put_str(&mut buf, "");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.str().unwrap(), "Osama bin Laden");
        assert_eq!(r.str().unwrap(), "");
        assert!(r.is_empty());
        // Invalid UTF-8.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            ByteReader::new(&buf).str(),
            Err(CodecError::Invalid(_))
        ));
        // A huge corrupt length is rejected before any allocation.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            ByteReader::new(&buf).str(),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn vertex_set_round_trip_and_rejection() {
        for ids in [&[][..], &[7][..], &[0, 3, 9, u32::MAX][..]] {
            let set = VertexSet::from_ids(ids);
            let mut buf = Vec::new();
            set.encode_into(&mut buf);
            let mut r = ByteReader::new(&buf);
            assert_eq!(VertexSet::decode(&mut r).unwrap(), set);
            assert!(r.is_empty());
        }
        // Not strictly ascending (duplicate).
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        put_u32(&mut buf, 5);
        put_u32(&mut buf, 5);
        assert!(matches!(
            VertexSet::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid(_))
        ));
        // Count larger than the input can back.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000);
        put_u32(&mut buf, 1);
        assert!(matches!(
            VertexSet::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.u32(), Err(CodecError::Truncated { .. })));
        // A failed read leaves the cursor untouched.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.take(2).unwrap(), &[2, 3]);
        assert!(r.is_empty());
    }
}
