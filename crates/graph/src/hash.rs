//! A fast, non-cryptographic hasher for small-integer keys.
//!
//! The DynDens inner loops perform a very large number of hash-map lookups keyed
//! by [`VertexId`](crate::VertexId) (adjacency maps, neighbourhood score maps,
//! candidate de-duplication). The default SipHash hasher of the standard library
//! is robust against HashDoS but noticeably slow for 4-byte integer keys, so we
//! provide a small multiply-and-rotate hasher in the spirit of the widely used
//! "Fx" family. The implementation below is written from scratch; it is *not*
//! suitable for adversarial inputs, which is acceptable because vertex
//! identifiers are assigned internally and never attacker controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit mixing constant (the golden-ratio based odd constant used by many
/// multiplicative hashers).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast hasher for small keys (integers, short byte strings).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Maps a vertex to one of `n_shards` partitions.
///
/// This is the shard assignment used by the `dyndens-shard` subsystem: edge
/// `(u, v)` is owned by `shard_of(min(u, v), n_shards)`, so consecutive
/// updates to the same edge always land on the same shard (per-edge FIFO is
/// preserved) and all edges sharing a minimum endpoint are co-located. The
/// 64-bit Fx hash is spread over the shards with a multiply-shift rather than
/// a modulo, so every shard receives an (almost) equal slice of the vertex
/// universe even when `n_shards` is a power of two.
///
/// # Panics
///
/// Panics if `n_shards` is zero.
#[inline]
pub fn shard_of(v: crate::VertexId, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_of requires at least one shard");
    let mut h = FxHasher::default();
    h.write_u32(v.0);
    ((h.finish() as u128 * n_shards as u128) >> 64) as usize
}

/// A `HashMap` using the fast [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn hashes_are_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(42);
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_usually_differ() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        // A tiny number of collisions would be tolerable; in practice there are none.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut h1 = FxHasher::default();
        h1.write(b"hello world, this is more than eight bytes");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world, this is more than eight bytez");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn shard_of_is_deterministic_and_balanced() {
        for n_shards in [1usize, 2, 3, 4, 8] {
            let mut counts = vec![0usize; n_shards];
            for i in 0..8_000u32 {
                let s = shard_of(VertexId(i), n_shards);
                assert_eq!(s, shard_of(VertexId(i), n_shards));
                counts[s] += 1;
            }
            let expected = 8_000 / n_shards;
            for (shard, &count) in counts.iter().enumerate() {
                assert!(
                    count > expected / 2 && count < expected * 2,
                    "shard {shard}/{n_shards} holds {count} of 8000 vertices"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_rejects_zero_shards() {
        let _ = shard_of(VertexId(0), 0);
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut map: FxHashMap<VertexId, f64> = FxHashMap::default();
        for i in 0..100u32 {
            map.insert(VertexId(i), f64::from(i) * 0.5);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map[&VertexId(10)], 5.0);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }
}
