//! The evolving weighted graph and its adjacency-list index.

use crate::hash::FxHashMap;
use crate::{EdgeUpdate, VertexId, VertexSet};

/// Weights whose absolute value falls below this threshold are treated as zero
/// and the corresponding edge is removed from the adjacency lists. Association
/// measures are non-negative in practice, but the stream of updates may drive a
/// weight back to (numerically almost) zero.
pub const WEIGHT_EPSILON: f64 = 1e-12;

/// The neighbourhood score vector `Γ_C` of a subgraph `C`: for every vertex `u`
/// adjacent to `C` (and for every member of `C`), the total weight of edges
/// between `u` and the members of `C`, i.e. `Γ_C · ê_u`.
///
/// This is exactly the quantity DynDens needs during exploration: the score of
/// `C ∪ {u}` is `score(C) + Γ_C · ê_u` (footnote 6 of the paper).
pub type NeighborhoodScores = FxHashMap<VertexId, f64>;

/// The evolving, complete weighted graph, stored sparsely via per-vertex
/// adjacency maps.
///
/// Absent edges have weight `0.0`. Applying an [`EdgeUpdate`] adjusts a single
/// edge weight; weights that become (numerically) zero are pruned so that
/// `neighbors()` only reports genuinely connected vertices.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adjacency: Vec<FxHashMap<VertexId, f64>>,
    edge_count: usize,
    total_weight: f64,
}

impl DynamicGraph {
    /// Creates an empty graph with `n` vertices (`VertexId(0) .. VertexId(n-1)`).
    pub fn with_vertices(n: usize) -> Self {
        DynamicGraph {
            adjacency: vec![FxHashMap::default(); n],
            edge_count: 0,
            total_weight: 0.0,
        }
    }

    /// Creates an empty graph with no vertices; vertices are added lazily by
    /// [`ensure_vertex`](Self::ensure_vertex) or when updates mention them.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices currently allocated.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges with non-zero weight.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of all (non-zero) edge weights.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Ensures the vertex `v` exists, growing the vertex set if needed.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        assert!(
            !v.is_star(),
            "the fictitious * vertex cannot be materialised"
        );
        if v.index() >= self.adjacency.len() {
            self.adjacency
                .resize_with(v.index() + 1, FxHashMap::default);
        }
    }

    /// Current weight of the edge `(a, b)`; `0.0` if absent.
    #[inline]
    pub fn weight(&self, a: VertexId, b: VertexId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.adjacency
            .get(a.index())
            .and_then(|adj| adj.get(&b))
            .copied()
            .unwrap_or(0.0)
    }

    /// Degree of `u`: the number of neighbours with non-zero edge weight.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adjacency.get(u.index()).map_or(0, FxHashMap::len)
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(FxHashMap::len).max().unwrap_or(0)
    }

    /// Iterates over the neighbours of `u` together with the edge weights.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.adjacency
            .get(u.index())
            .into_iter()
            .flat_map(|adj| adj.iter().map(|(&v, &w)| (v, w)))
    }

    /// Subgraphs up to this cardinality have their [`degree_into`] computed
    /// by iterating the (sorted) vertex set rather than the adjacency map.
    /// Engine subgraphs (`|C| <= Nmax`, small) always take this path, which
    /// makes the floating-point summation order — and hence every derived
    /// score bit — independent of adjacency-map history, a prerequisite for
    /// bit-exact snapshot/restore + WAL replay. Larger sets (brute-force
    /// baselines) still pick the cheaper side.
    ///
    /// [`degree_into`]: Self::degree_into
    pub const DETERMINISTIC_SET_BOUND: usize = 16;

    /// The weighted "degree" of `u` with respect to subgraph `C`:
    /// `D_u = Γ_u · c = Σ_{j ∈ C} w_uj`.
    pub fn degree_into(&self, u: VertexId, set: &VertexSet) -> f64 {
        // Iterate the set when it is small (deterministic summation order;
        // see DETERMINISTIC_SET_BOUND) or smaller than the adjacency map.
        let adj = match self.adjacency.get(u.index()) {
            Some(adj) => adj,
            None => return 0.0,
        };
        if set.len() <= Self::DETERMINISTIC_SET_BOUND || set.len() < adj.len() {
            set.iter()
                .filter(|&v| v != u)
                .map(|v| adj.get(&v).copied().unwrap_or(0.0))
                .sum()
        } else {
            adj.iter()
                .filter(|(v, _)| **v != u && set.contains(**v))
                .map(|(_, &w)| w)
                .sum()
        }
    }

    /// Sets the weight of edge `(a, b)` to an absolute value, returning the old
    /// weight.
    pub fn set_weight(&mut self, a: VertexId, b: VertexId, weight: f64) -> f64 {
        assert!(a != b, "self loops are not supported");
        assert!(weight.is_finite(), "edge weight must be finite");
        self.ensure_vertex(a);
        self.ensure_vertex(b);
        let old = self.weight(a, b);
        let had_edge = old.abs() > WEIGHT_EPSILON;
        let has_edge = weight.abs() > WEIGHT_EPSILON;
        if has_edge {
            self.adjacency[a.index()].insert(b, weight);
            self.adjacency[b.index()].insert(a, weight);
        } else {
            self.adjacency[a.index()].remove(&b);
            self.adjacency[b.index()].remove(&a);
        }
        match (had_edge, has_edge) {
            (false, true) => self.edge_count += 1,
            (true, false) => self.edge_count -= 1,
            _ => {}
        }
        self.total_weight +=
            (if has_edge { weight } else { 0.0 }) - (if had_edge { old } else { 0.0 });
        old
    }

    /// Applies an edge weight update, returning `(old_weight, new_weight)`.
    pub fn apply_update(&mut self, update: &EdgeUpdate) -> (f64, f64) {
        let old = self.weight(update.a, update.b);
        let new = old + update.delta;
        self.set_weight(update.a, update.b, new);
        (old, new)
    }

    /// The score of a subgraph: `score(C) = Σ_{i,j ∈ C, i<j} w_ij`.
    pub fn score(&self, set: &VertexSet) -> f64 {
        let vertices = set.as_slice();
        let mut score = 0.0;
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                score += self.weight(u, v);
            }
        }
        score
    }

    /// Computes the neighbourhood score vector `Γ_C` of a subgraph by merging
    /// the adjacency lists of its members. The returned map contains an entry
    /// for every vertex `u` with at least one edge into `C` — including the
    /// members of `C` themselves (callers typically skip those).
    pub fn neighborhood_scores(&self, set: &VertexSet) -> NeighborhoodScores {
        let mut scores = NeighborhoodScores::default();
        for v in set.iter() {
            if let Some(adj) = self.adjacency.get(v.index()) {
                for (&u, &w) in adj {
                    *scores.entry(u).or_insert(0.0) += w;
                }
            }
        }
        scores
    }

    /// Iterates over every edge `(a, b, w)` with `a < b` and non-zero weight.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, adj)| {
            let a = VertexId(i as u32);
            adj.iter()
                .filter(move |(&b, _)| a < b)
                .map(move |(&b, &w)| (a, b, w))
        })
    }

    /// Releases the heap capacity held by the adjacency maps of isolated
    /// vertices (degree zero), returning how many vertices are currently
    /// isolated.
    ///
    /// The vertex array itself never shrinks — vertex ids are global and the
    /// snapshot format records `vertex_count` — but a map that grew while its
    /// vertex was connected keeps its buckets allocated after decay empties
    /// it. On a forever-run with eviction this capacity is the dominant
    /// memory leak; swapping each empty map for a fresh default map returns
    /// it to the allocator without any observable state change.
    pub fn reclaim_isolated(&mut self) -> usize {
        let mut isolated = 0;
        for adj in &mut self.adjacency {
            if adj.is_empty() {
                isolated += 1;
                if adj.capacity() > 0 {
                    *adj = FxHashMap::default();
                }
            }
        }
        isolated
    }

    /// Returns whether the subgraph induced by `set` is connected (considering
    /// only edges with non-zero weight). Singleton and empty sets are
    /// considered connected.
    pub fn is_connected(&self, set: &VertexSet) -> bool {
        if set.len() <= 1 {
            return true;
        }
        let mut visited = VertexSet::new();
        let start = set.as_slice()[0];
        let mut stack = vec![start];
        visited.insert(start);
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if set.contains(v) && visited.insert(v) {
                    stack.push(v);
                }
            }
        }
        visited.len() == set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> DynamicGraph {
        // The execution-example graph of Figure 2(a) uses 5 vertices; we build a
        // small weighted graph here.
        let mut g = DynamicGraph::with_vertices(5);
        g.set_weight(VertexId(0), VertexId(1), 1.0);
        g.set_weight(VertexId(0), VertexId(2), 0.5);
        g.set_weight(VertexId(1), VertexId(2), 2.0);
        g.set_weight(VertexId(3), VertexId(4), 0.25);
        g
    }

    #[test]
    fn weights_and_counts() {
        let g = sample_graph();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.weight(VertexId(0), VertexId(1)), 1.0);
        assert_eq!(g.weight(VertexId(1), VertexId(0)), 1.0);
        assert_eq!(g.weight(VertexId(0), VertexId(3)), 0.0);
        assert_eq!(g.weight(VertexId(2), VertexId(2)), 0.0);
        assert!((g.total_weight() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn set_weight_returns_old_and_prunes_zero() {
        let mut g = sample_graph();
        let old = g.set_weight(VertexId(0), VertexId(1), 0.0);
        assert_eq!(old, 1.0);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.weight(VertexId(0), VertexId(1)), 0.0);
    }

    #[test]
    fn apply_update_accumulates() {
        let mut g = DynamicGraph::with_vertices(3);
        let u = EdgeUpdate::new(VertexId(0), VertexId(1), 0.75);
        let (old, new) = g.apply_update(&u);
        assert_eq!((old, new), (0.0, 0.75));
        let (old, new) = g.apply_update(&EdgeUpdate::new(VertexId(1), VertexId(0), -0.25));
        assert_eq!((old, new), (0.75, 0.5));
        assert_eq!(g.weight(VertexId(0), VertexId(1)), 0.5);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn ensure_vertex_grows() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.vertex_count(), 0);
        g.set_weight(VertexId(7), VertexId(2), 1.5);
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.degree(VertexId(7)), 1);
        assert_eq!(g.degree(VertexId(6)), 0);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn score_and_neighborhood() {
        let g = sample_graph();
        let c = VertexSet::from_ids(&[0, 1, 2]);
        assert!((g.score(&c) - 3.5).abs() < 1e-12);

        let gamma = g.neighborhood_scores(&c);
        // vertex 0's edges into C: to 1 (1.0) + to 2 (0.5) = 1.5
        assert!((gamma[&VertexId(0)] - 1.5).abs() < 1e-12);
        // vertex 3 and 4 have no edges into C
        assert!(!gamma.contains_key(&VertexId(3)));

        // growing by a disconnected vertex leaves the score unchanged
        let c34 = VertexSet::from_ids(&[0, 1, 2, 3]);
        assert!((g.score(&c34) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn degree_into_subgraph() {
        let g = sample_graph();
        let c = VertexSet::from_ids(&[0, 1]);
        assert!((g.degree_into(VertexId(2), &c) - 2.5).abs() < 1e-12);
        assert!((g.degree_into(VertexId(0), &c) - 1.0).abs() < 1e-12);
        assert_eq!(g.degree_into(VertexId(4), &c), 0.0);
        assert_eq!(g.degree_into(VertexId(100), &c), 0.0);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = sample_graph();
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b, _)| (a.0, b.0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn connectivity() {
        let g = sample_graph();
        assert!(g.is_connected(&VertexSet::from_ids(&[0, 1, 2])));
        assert!(!g.is_connected(&VertexSet::from_ids(&[0, 1, 3])));
        assert!(g.is_connected(&VertexSet::from_ids(&[3])));
        assert!(g.is_connected(&VertexSet::new()));
    }

    #[test]
    fn reclaim_isolated_counts_and_releases() {
        let mut g = sample_graph();
        // Vertices 0..5 all connected except none isolated yet.
        assert_eq!(g.reclaim_isolated(), 0);
        // Remove vertex 3/4's only edge: both become isolated.
        g.set_weight(VertexId(3), VertexId(4), 0.0);
        assert_eq!(g.reclaim_isolated(), 2);
        // Reclaim is observationally inert: weights and counts are unchanged.
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.weight(VertexId(0), VertexId(1)), 1.0);
        assert_eq!(g.vertex_count(), 5, "the vertex array never shrinks");
        // The vertex can be reconnected afterwards.
        g.set_weight(VertexId(3), VertexId(0), 0.5);
        assert_eq!(g.reclaim_isolated(), 1);
        assert_eq!(g.degree(VertexId(3)), 1);
    }

    #[test]
    #[should_panic(expected = "fictitious")]
    fn star_vertex_cannot_be_materialised() {
        let mut g = DynamicGraph::new();
        g.ensure_vertex(VertexId::STAR);
    }
}
