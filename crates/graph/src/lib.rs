//! # dyndens-graph
//!
//! Dynamic weighted entity graph substrate for the DynDens dense subgraph
//! maintenance system.
//!
//! The paper models its problem domain as a complete weighted graph `G = (V, E)`
//! over `N` vertices, where `w_ij` is the weight of the edge between vertices `i`
//! and `j`, together with a stream of edge weight updates `(a, b, delta)`.
//! Edges with weight zero (or below) are simply "absent": the graph is stored
//! sparsely as per-vertex adjacency maps, which is also exactly the graph index
//! the paper prescribes in Section 3.2.1 ("maintaining node adjacency lists is
//! sufficient"), and enables the efficient exploration of a subgraph by merging
//! the relevant adjacency lists.
//!
//! The crate provides:
//!
//! * [`VertexId`] — a compact vertex identifier (`u32` newtype).
//! * [`EdgeUpdate`] — a single `(a, b, delta)` item of the update stream.
//! * [`DynamicGraph`] — the evolving weighted graph with O(1) expected weight
//!   lookups, neighbourhood iteration and subgraph scoring.
//! * [`VertexSet`] — a small, sorted vertex subset used to denote subgraphs.
//! * [`hash`] — a fast, non-cryptographic hasher used for the adjacency maps
//!   (the keys are small integers; HashDoS resistance is not a concern here).
//! * [`codec`] — the little-endian binary codec (and CRC-32) shared by the
//!   persistence layer: WAL records and engine snapshots.
//! * [`shard_map`] — the generational shard routing table ([`ShardMap`]): the
//!   base shard-assignment functions ([`ShardFn`]) plus the split-refinement
//!   trie and its manifest codec, used by `dyndens-shard` for live
//!   rebalancing.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod graph;
pub mod hash;
pub mod shard_map;
pub mod update;
pub mod vertex_set;

pub use codec::{ByteReader, CodecError};
pub use graph::{DynamicGraph, NeighborhoodScores};
pub use hash::{shard_of, FxBuildHasher, FxHashMap, FxHashSet};
pub use shard_map::{MergeSpec, ShardFn, ShardMap, SplitSpec};
pub use update::EdgeUpdate;
pub use vertex_set::VertexSet;

// Send/Sync audit for the sharded subsystem: every substrate type crossing a
// shard-worker thread boundary must be Send + Sync. Enforced at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DynamicGraph>();
    assert_send_sync::<VertexSet>();
    assert_send_sync::<EdgeUpdate>();
    assert_send_sync::<VertexId>();
};

/// Identifier of a vertex (an entity, in the story identification application).
///
/// Vertices are dense small integers: `VertexId(0) .. VertexId(n - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The fictitious `*` vertex used by the `ImplicitTooDense` index
    /// optimisation (Section 3.2.3 of the paper). It is lexicographically
    /// larger than every real vertex.
    pub const STAR: VertexId = VertexId(u32::MAX);

    /// Returns the vertex index as a `usize`, for indexing into dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the fictitious `*` vertex.
    #[inline]
    pub fn is_star(self) -> bool {
        self == Self::STAR
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    #[inline]
    fn from(v: usize) -> Self {
        VertexId(v as u32)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_star() {
            write!(f, "*")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_ordering_and_star() {
        let a = VertexId(3);
        let b = VertexId(7);
        assert!(a < b);
        assert!(b < VertexId::STAR);
        assert!(VertexId::STAR.is_star());
        assert!(!a.is_star());
        assert_eq!(a.index(), 3);
        assert_eq!(VertexId::from(5u32), VertexId(5));
        assert_eq!(VertexId::from(5usize), VertexId(5));
    }

    #[test]
    fn vertex_id_display() {
        assert_eq!(VertexId(12).to_string(), "12");
        assert_eq!(VertexId::STAR.to_string(), "*");
    }
}
