//! The generational shard routing table used by the `dyndens-shard`
//! subsystem, and the base shard-assignment functions it refines.
//!
//! A fixed shard function (`shard_of(min(u, v), N)`) pins the shard count at
//! deployment time: one hot entity partition then caps whole-pipeline
//! throughput forever. [`ShardMap`] replaces the static function with one
//! level of indirection — a **routing table** that starts out identical to
//! the static assignment and can then be *refined online*, one split at a
//! time, without moving any vertex that is not part of the split:
//!
//! ```text
//!                 base slot = ShardFn(v, n_base)           (fixed forever)
//!                      │
//!   slots[base] ──► route trie:  Leaf{worker, engine}
//!                                Split{zero, one}   bit d = route_bit(v, d)
//! ```
//!
//! * Every **leaf** names a live worker slot and the **engine id** whose
//!   persistence directory (`shard-<engine id>`) holds that slice's WAL and
//!   snapshots. Engine ids are allocated monotonically and never reused, so
//!   a retired parent's directory can never be confused with a child's.
//! * **Splitting** a worker replaces its leaf with a `Split` node whose two
//!   children partition the parent's vertex slice by the next *routing bit*
//!   of the vertex (see [`ShardFn::route_bit`]). One child keeps the
//!   parent's worker slot, the other takes a brand-new slot, and both get
//!   fresh engine ids. Vertices owned by every other leaf route exactly as
//!   before — a split never reshuffles the rest of the fleet.
//! * **Merging** is the exact inverse: a `Split` node whose children are
//!   both leaves collapses back into one leaf (fresh engine id, served by
//!   the smaller of the two slots), and the previous last worker slot is
//!   renumbered into the freed one so slot numbering stays dense — the
//!   invariant the codec validates. See [`ShardMap::merge`] /
//!   [`ShardMap::merge_candidates`].
//! * The **generation** counter increments per split or merge; the map
//!   (including `next_engine`) is serialised into the deployment `MANIFEST`
//!   via [`ShardMap::encode_into`] / [`ShardMap::decode`], so a restart
//!   recovers the refined topology rather than the construction-time one.
//!
//! Under [`ShardFn::Modulo`] the routing bits are the binary digits of
//! `v / n_base`: a workload whose communities are aligned to congruence
//! classes modulo `M` stays community-aligned through
//! `log2(M / n_base)` levels of splitting, which is what keeps the
//! partitioning invariant (and hence split-equivalence) intact. Under
//! [`ShardFn::Hashed`] the bits come from an independently salted hash —
//! balanced, but community alignment is probabilistic, as for the base
//! assignment itself.

use crate::codec::{put_u32, put_u64, ByteReader, CodecError};
use crate::hash::FxHasher;
use crate::VertexId;
use std::hash::Hasher;

/// Salt decorrelating [`ShardFn::Hashed`] routing bits from the multiply-shift
/// base assignment (both consume `FxHasher` output; without a salt the split
/// bits would be a deterministic function of the base slot).
const ROUTE_BIT_SALT: u32 = 0x9E37_79B9;

/// Maximum split depth accepted by [`ShardMap::decode`] (and enforced by
/// [`ShardMap::split`]): 32 refinement levels per base slot is far beyond any
/// realistic fleet and bounds recursion on untrusted manifest bytes.
pub const MAX_SPLIT_DEPTH: usize = 32;

/// The base shard-assignment function applied to the minimum endpoint of an
/// edge. This is generation zero of a [`ShardMap`]; splits refine it with
/// per-vertex routing bits but never change the base assignment itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFn {
    /// Fx-hash the vertex and spread it over the shards with a multiply-shift
    /// ([`crate::shard_of`]). The default: balanced for arbitrary id
    /// distributions.
    Hashed,
    /// `v mod n_shards`. Useful when entity ids are assigned so that related
    /// entities share a congruence class (making the partitioning invariant
    /// hold by construction), and in tests that need a predictable layout.
    Modulo,
}

impl ShardFn {
    /// The base slot owning vertex `v` out of `n_shards`.
    #[inline]
    pub fn shard(self, v: VertexId, n_shards: usize) -> usize {
        match self {
            ShardFn::Hashed => crate::shard_of(v, n_shards),
            ShardFn::Modulo => v.index() % n_shards,
        }
    }

    /// The routing bit consulted at split `depth` below a base slot of an
    /// `n_base`-slot map. Deterministic per vertex, independent across
    /// depths, and — for [`ShardFn::Modulo`] — equal to bit `depth` of
    /// `v / n_base`, so congruence-class-aligned communities split cleanly.
    #[inline]
    pub fn route_bit(self, v: VertexId, n_base: usize, depth: usize) -> bool {
        match self {
            ShardFn::Modulo => (v.index() / n_base) >> depth & 1 == 1,
            ShardFn::Hashed => {
                let mut h = FxHasher::default();
                h.write_u32(v.0);
                h.write_u32(ROUTE_BIT_SALT);
                h.finish() >> depth & 1 == 1
            }
        }
    }
}

/// One node of a base slot's route trie.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RouteNode {
    /// A live slice: the worker slot serving it and the engine id naming its
    /// persistence directory.
    Leaf {
        /// Index of the worker thread (and of its epoch cell, delta ring and
        /// channel) in the fleet's slot-indexed vectors.
        worker: u32,
        /// The monotonically allocated engine id; persisted state lives under
        /// `shard-<engine id>` and ids are never reused across splits.
        engine: u64,
    },
    /// A refinement: vertices with routing bit 0 at this depth descend into
    /// `zero`, the rest into `one`.
    Split {
        zero: Box<RouteNode>,
        one: Box<RouteNode>,
    },
}

/// What [`ShardMap::split`] decided: the slots and engine ids involved in one
/// split, needed by the caller to build, persist and register the children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSpec {
    /// The worker slot that was split (one child keeps it).
    pub slot: usize,
    /// The brand-new worker slot taken by the other child.
    pub new_slot: usize,
    /// The retired parent's engine id (its directory holds the snapshot and
    /// WAL slice the children are rebuilt from).
    pub parent_engine: u64,
    /// Engine id of the child that keeps [`SplitSpec::slot`] (routing bit 0).
    pub child_zero_engine: u64,
    /// Engine id of the child on the new slot (routing bit 1).
    pub child_one_engine: u64,
}

/// What [`ShardMap::merge`] decided: the slots and engine ids involved in one
/// merge, needed by the caller to rebuild, persist and register the merged
/// shard — and to renumber the worker displaced by the freed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeSpec {
    /// The worker slot the merged shard keeps serving (the smaller of the
    /// pair).
    pub slot: usize,
    /// The worker slot the merge frees (the larger of the pair).
    pub freed_slot: usize,
    /// The former slot of the worker renumbered into
    /// [`freed_slot`](MergeSpec::freed_slot) to keep slot numbering dense
    /// (always the previous last slot), or `None` when the freed slot *was*
    /// the last slot and nothing moved.
    pub moved_slot: Option<usize>,
    /// The worker slot that served the routing-bit-0 child (one of `slot` /
    /// `freed_slot`).
    pub zero_slot: usize,
    /// The worker slot that served the routing-bit-1 child (the other one).
    pub one_slot: usize,
    /// The retired bit-0 child's engine id.
    pub zero_engine: u64,
    /// The retired bit-1 child's engine id.
    pub one_engine: u64,
    /// The merged shard's fresh engine id.
    pub merged_engine: u64,
}

/// The generational shard routing table. See the [module docs](self) for the
/// design; constructed by [`ShardMap::new`], refined by [`ShardMap::split`]
/// and coarsened by [`ShardMap::merge`],
/// persisted with [`ShardMap::encode_into`] / [`ShardMap::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    base: ShardFn,
    n_base: usize,
    generation: u64,
    next_engine: u64,
    n_workers: usize,
    slots: Vec<RouteNode>,
}

impl ShardMap {
    /// The generation-zero map: `n_base` slots, slot `i` served by worker `i`
    /// with engine id `i` — byte-for-byte the static assignment the fleet
    /// used before routing indirection existed.
    ///
    /// # Panics
    ///
    /// Panics if `n_base` is zero.
    pub fn new(base: ShardFn, n_base: usize) -> Self {
        assert!(n_base > 0, "a shard map needs at least one base slot");
        ShardMap {
            base,
            n_base,
            generation: 0,
            next_engine: n_base as u64,
            n_workers: n_base,
            slots: (0..n_base)
                .map(|i| RouteNode::Leaf {
                    worker: i as u32,
                    engine: i as u64,
                })
                .collect(),
        }
    }

    /// The base shard-assignment function (generation zero of this map).
    pub fn base_fn(&self) -> ShardFn {
        self.base
    }

    /// Number of base slots (the construction-time shard count, fixed
    /// forever).
    pub fn n_base(&self) -> usize {
        self.n_base
    }

    /// Number of live worker slots (grows by one per split).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// How many topology changes (splits and merges) this map has absorbed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The next engine id a split or merge would allocate (persisted so ids
    /// stay unique across restarts even when a topology change crashed before
    /// committing).
    pub fn next_engine(&self) -> u64 {
        self.next_engine
    }

    /// The worker slot owning vertex `v`: base assignment, then the route
    /// trie refined by splits.
    #[inline]
    pub fn route(&self, v: VertexId) -> usize {
        let mut node = &self.slots[self.base.shard(v, self.n_base)];
        let mut depth = 0usize;
        loop {
            match node {
                RouteNode::Leaf { worker, .. } => return *worker as usize,
                RouteNode::Split { zero, one } => {
                    node = if self.base.route_bit(v, self.n_base, depth) {
                        one
                    } else {
                        zero
                    };
                    depth += 1;
                }
            }
        }
    }

    /// The engine id currently serving worker `slot`, or `None` for an
    /// unknown slot.
    pub fn engine_of(&self, slot: usize) -> Option<u64> {
        let mut found = None;
        for root in &self.slots {
            Self::visit(root, &mut |worker, engine| {
                if worker as usize == slot {
                    found = Some(engine);
                }
            });
        }
        found
    }

    /// Engine ids of all live workers, indexed by worker slot.
    pub fn worker_engines(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.n_workers];
        for root in &self.slots {
            Self::visit(root, &mut |worker, engine| out[worker as usize] = engine);
        }
        out
    }

    fn visit(node: &RouteNode, f: &mut impl FnMut(u32, u64)) {
        match node {
            RouteNode::Leaf { worker, engine } => f(*worker, *engine),
            RouteNode::Split { zero, one } => {
                Self::visit(zero, f);
                Self::visit(one, f);
            }
        }
    }

    /// Splits worker `slot`: its leaf becomes a `Split` whose bit-0 child
    /// keeps `slot` and whose bit-1 child takes the new slot
    /// `n_workers`. Both children get fresh engine ids; the generation
    /// advances. Returns `None` if `slot` does not name a live worker or the
    /// leaf already sits at [`MAX_SPLIT_DEPTH`].
    pub fn split(&mut self, slot: usize) -> Option<SplitSpec> {
        if slot >= self.n_workers {
            return None;
        }
        let new_slot = self.n_workers;
        let (c0, c1) = (self.next_engine, self.next_engine + 1);
        let mut spec = None;
        for root in &mut self.slots {
            if spec.is_some() {
                break;
            }
            Self::split_in(root, 0, slot as u32, new_slot as u32, c0, c1, &mut spec);
        }
        let spec = spec?;
        self.next_engine += 2;
        self.n_workers += 1;
        self.generation += 1;
        Some(spec)
    }

    fn split_in(
        node: &mut RouteNode,
        depth: usize,
        slot: u32,
        new_slot: u32,
        c0: u64,
        c1: u64,
        spec: &mut Option<SplitSpec>,
    ) {
        match node {
            RouteNode::Leaf { worker, engine } if *worker == slot => {
                if depth >= MAX_SPLIT_DEPTH {
                    return;
                }
                *spec = Some(SplitSpec {
                    slot: slot as usize,
                    new_slot: new_slot as usize,
                    parent_engine: *engine,
                    child_zero_engine: c0,
                    child_one_engine: c1,
                });
                *node = RouteNode::Split {
                    zero: Box::new(RouteNode::Leaf {
                        worker: slot,
                        engine: c0,
                    }),
                    one: Box::new(RouteNode::Leaf {
                        worker: new_slot,
                        engine: c1,
                    }),
                };
            }
            RouteNode::Leaf { .. } => {}
            RouteNode::Split { zero, one } => {
                Self::split_in(zero, depth + 1, slot, new_slot, c0, c1, spec);
                if spec.is_none() {
                    Self::split_in(one, depth + 1, slot, new_slot, c0, c1, spec);
                }
            }
        }
    }

    /// The mergeable sibling pairs: worker slots whose leaves hang off the
    /// same `Split` node, returned as `(bit-0 worker, bit-1 worker)`. Merging
    /// any listed pair is the exact inverse of the split that created it.
    pub fn merge_candidates(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for root in &self.slots {
            Self::candidates_in(root, &mut out);
        }
        out
    }

    fn candidates_in(node: &RouteNode, out: &mut Vec<(usize, usize)>) {
        if let RouteNode::Split { zero, one } = node {
            if let (RouteNode::Leaf { worker: w0, .. }, RouteNode::Leaf { worker: w1, .. }) =
                (&**zero, &**one)
            {
                out.push((*w0 as usize, *w1 as usize));
            } else {
                Self::candidates_in(zero, out);
                Self::candidates_in(one, out);
            }
        }
    }

    /// Merges sibling worker slots `a` and `b` (in either order) back into
    /// one: their parent `Split` node collapses to a leaf served by the
    /// smaller slot with a fresh engine id, the larger slot is freed, and —
    /// to keep worker numbering dense, as the codec requires — the previous
    /// last slot is renumbered into the freed one (see
    /// [`MergeSpec::moved_slot`]). The generation advances. Returns `None`
    /// unless the pair is listed by
    /// [`merge_candidates`](Self::merge_candidates).
    pub fn merge(&mut self, a: usize, b: usize) -> Option<MergeSpec> {
        if a == b || a >= self.n_workers || b >= self.n_workers {
            return None;
        }
        let (kept, freed) = (a.min(b) as u32, a.max(b) as u32);
        let merged_engine = self.next_engine;
        let mut spec = None;
        for root in &mut self.slots {
            if spec.is_some() {
                break;
            }
            Self::merge_in(root, kept, freed, merged_engine, &mut spec);
        }
        let mut spec = spec?;
        let last = self.n_workers - 1;
        if spec.freed_slot != last {
            for root in &mut self.slots {
                Self::renumber(root, last as u32, freed);
            }
            spec.moved_slot = Some(last);
        }
        self.next_engine += 1;
        self.n_workers -= 1;
        self.generation += 1;
        Some(spec)
    }

    fn merge_in(
        node: &mut RouteNode,
        kept: u32,
        freed: u32,
        merged_engine: u64,
        spec: &mut Option<MergeSpec>,
    ) {
        if let RouteNode::Split { zero, one } = node {
            if let (
                RouteNode::Leaf {
                    worker: w0,
                    engine: e0,
                },
                RouteNode::Leaf {
                    worker: w1,
                    engine: e1,
                },
            ) = (&**zero, &**one)
            {
                if (w0.min(w1), w0.max(w1)) == (&kept, &freed) {
                    *spec = Some(MergeSpec {
                        slot: kept as usize,
                        freed_slot: freed as usize,
                        moved_slot: None,
                        zero_slot: *w0 as usize,
                        one_slot: *w1 as usize,
                        zero_engine: *e0,
                        one_engine: *e1,
                        merged_engine,
                    });
                    *node = RouteNode::Leaf {
                        worker: kept,
                        engine: merged_engine,
                    };
                    return;
                }
            }
            Self::merge_in(zero, kept, freed, merged_engine, spec);
            if spec.is_none() {
                Self::merge_in(one, kept, freed, merged_engine, spec);
            }
        }
    }

    fn renumber(node: &mut RouteNode, from: u32, to: u32) {
        match node {
            RouteNode::Leaf { worker, .. } => {
                if *worker == from {
                    *worker = to;
                }
            }
            RouteNode::Split { zero, one } => {
                Self::renumber(zero, from, to);
                Self::renumber(one, from, to);
            }
        }
    }

    /// Serialises the map (without framing — the caller owns magic/CRC, e.g.
    /// the deployment `MANIFEST`).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(match self.base {
            ShardFn::Hashed => 0,
            ShardFn::Modulo => 1,
        });
        put_u64(buf, self.n_base as u64);
        put_u64(buf, self.generation);
        put_u64(buf, self.next_engine);
        put_u64(buf, self.n_workers as u64);
        for root in &self.slots {
            Self::encode_node(root, buf);
        }
    }

    fn encode_node(node: &RouteNode, buf: &mut Vec<u8>) {
        match node {
            RouteNode::Leaf { worker, engine } => {
                buf.push(0);
                put_u32(buf, *worker);
                put_u64(buf, *engine);
            }
            RouteNode::Split { zero, one } => {
                buf.push(1);
                Self::encode_node(zero, buf);
                Self::encode_node(one, buf);
            }
        }
    }

    /// Decodes a map written by [`encode_into`](Self::encode_into),
    /// validating structure: positive bounded slot counts, split depth at
    /// most [`MAX_SPLIT_DEPTH`], and every worker slot below `n_workers`
    /// appearing exactly once across the tries.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let base = match r.u8()? {
            0 => ShardFn::Hashed,
            1 => ShardFn::Modulo,
            _ => return Err(CodecError::Invalid("unknown shard fn tag")),
        };
        let n_base = r.u64()? as usize;
        let generation = r.u64()?;
        let next_engine = r.u64()?;
        let n_workers = r.u64()? as usize;
        if n_base == 0 || n_workers < n_base {
            return Err(CodecError::Invalid("shard map slot counts out of range"));
        }
        // A leaf costs at least 13 encoded bytes; reject counts the payload
        // cannot possibly hold before allocating.
        if n_workers > r.remaining() / 13 + 1 {
            return Err(CodecError::Invalid(
                "shard map worker count exceeds payload",
            ));
        }
        let mut slots = Vec::with_capacity(n_base);
        for _ in 0..n_base {
            slots.push(Self::decode_node(r, 0)?);
        }
        let map = ShardMap {
            base,
            n_base,
            generation,
            next_engine,
            n_workers,
            slots,
        };
        let mut seen = vec![false; n_workers];
        let mut valid = true;
        for root in &map.slots {
            Self::visit(root, &mut |worker, engine| {
                match seen.get_mut(worker as usize) {
                    Some(s) if !*s => *s = true,
                    _ => valid = false,
                }
                if engine >= next_engine {
                    valid = false;
                }
            });
        }
        if !valid || !seen.iter().all(|&s| s) {
            return Err(CodecError::Invalid("shard map worker slots inconsistent"));
        }
        Ok(map)
    }

    fn decode_node(r: &mut ByteReader<'_>, depth: usize) -> Result<RouteNode, CodecError> {
        if depth > MAX_SPLIT_DEPTH {
            return Err(CodecError::Invalid("shard map split depth exceeded"));
        }
        match r.u8()? {
            0 => Ok(RouteNode::Leaf {
                worker: r.u32()?,
                engine: r.u64()?,
            }),
            1 => {
                let zero = Box::new(Self::decode_node(r, depth + 1)?);
                let one = Box::new(Self::decode_node(r, depth + 1)?);
                Ok(RouteNode::Split { zero, one })
            }
            _ => Err(CodecError::Invalid("unknown shard map node tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> VertexId {
        VertexId(id)
    }

    #[test]
    fn generation_zero_matches_static_assignment() {
        for base in [ShardFn::Hashed, ShardFn::Modulo] {
            let map = ShardMap::new(base, 4);
            assert_eq!(map.n_workers(), 4);
            assert_eq!(map.generation(), 0);
            assert_eq!(map.worker_engines(), vec![0, 1, 2, 3]);
            for id in 0..500 {
                assert_eq!(map.route(v(id)), base.shard(v(id), 4));
            }
        }
    }

    #[test]
    fn split_moves_only_the_split_slice() {
        let mut map = ShardMap::new(ShardFn::Modulo, 2);
        let before: Vec<usize> = (0..1000).map(|id| map.route(v(id))).collect();
        let spec = map.split(0).unwrap();
        assert_eq!(spec.slot, 0);
        assert_eq!(spec.new_slot, 2);
        assert_eq!(spec.parent_engine, 0);
        assert_eq!(
            (spec.child_zero_engine, spec.child_one_engine),
            (2, 3),
            "children get fresh engine ids"
        );
        assert_eq!(map.n_workers(), 3);
        assert_eq!(map.generation(), 1);
        assert_eq!(map.engine_of(0), Some(2));
        assert_eq!(map.engine_of(1), Some(1));
        assert_eq!(map.engine_of(2), Some(3));
        for id in 0..1000u32 {
            let now = map.route(v(id));
            if before[id as usize] == 1 {
                assert_eq!(now, 1, "untouched slice must not move");
            } else {
                // Modulo base 2: bit 0 of v / 2 decides the child.
                let expect = if (id / 2) & 1 == 1 { 2 } else { 0 };
                assert_eq!(now, expect);
            }
        }
    }

    #[test]
    fn modulo_splits_keep_congruence_classes_together() {
        // Communities aligned mod 8 over a 2-slot base survive two split
        // levels: every member of a residue class routes identically.
        let mut map = ShardMap::new(ShardFn::Modulo, 2);
        map.split(0).unwrap();
        map.split(1).unwrap();
        map.split(0).unwrap();
        for class in 0..8u32 {
            let owner = map.route(v(class));
            for k in 0..50u32 {
                assert_eq!(map.route(v(class + 8 * k)), owner, "class {class}");
            }
        }
    }

    #[test]
    fn hashed_splits_are_deterministic_and_two_sided() {
        let mut map = ShardMap::new(ShardFn::Hashed, 2);
        map.split(1).unwrap();
        let routes: Vec<usize> = (0..4000).map(|id| map.route(v(id))).collect();
        assert_eq!(
            routes,
            (0..4000).map(|id| map.route(v(id))).collect::<Vec<_>>()
        );
        // Both children of the split receive a non-trivial share.
        let kept = routes.iter().filter(|&&s| s == 1).count();
        let moved = routes.iter().filter(|&&s| s == 2).count();
        assert!(kept > 200 && moved > 200, "kept {kept}, moved {moved}");
    }

    #[test]
    fn split_rejects_unknown_slots() {
        let mut map = ShardMap::new(ShardFn::Modulo, 2);
        assert!(map.split(2).is_none());
        assert_eq!(map.generation(), 0);
        assert_eq!(map.next_engine(), 2);
    }

    #[test]
    fn merge_is_the_exact_inverse_of_split() {
        let mut map = ShardMap::new(ShardFn::Modulo, 2);
        let routes_before: Vec<usize> = (0..1000).map(|id| map.route(v(id))).collect();
        map.split(0).unwrap();
        assert_eq!(map.merge_candidates(), vec![(0, 2)]);
        let spec = map.merge(2, 0).unwrap();
        assert_eq!(spec.slot, 0);
        assert_eq!(spec.freed_slot, 2);
        assert_eq!(spec.moved_slot, None, "freed slot was the last slot");
        assert_eq!((spec.zero_slot, spec.one_slot), (0, 2));
        assert_eq!((spec.zero_engine, spec.one_engine), (2, 3));
        assert_eq!(spec.merged_engine, 4, "merged shard gets a fresh id");
        assert_eq!(map.n_workers(), 2);
        assert_eq!(map.generation(), 2);
        assert!(map.merge_candidates().is_empty());
        let routes_after: Vec<usize> = (0..1000).map(|id| map.route(v(id))).collect();
        assert_eq!(routes_after, routes_before, "routing reverts exactly");
        assert_eq!(map.worker_engines(), vec![4, 1]);
    }

    #[test]
    fn merge_renumbers_the_last_slot_into_a_freed_middle_slot() {
        // Split both base slots: workers 0..=3, with sibling pairs (0, 2)
        // and (1, 3). Merging (0, 2) frees the middle slot 2, so worker 3
        // must be renumbered into it to keep numbering dense.
        let mut map = ShardMap::new(ShardFn::Modulo, 2);
        map.split(0).unwrap();
        map.split(1).unwrap();
        let owner_before: Vec<usize> = (0..1000).map(|id| map.route(v(id))).collect();
        let engine_of_3 = map.engine_of(3).unwrap();
        let mut candidates = map.merge_candidates();
        candidates.sort_unstable();
        assert_eq!(candidates, vec![(0, 2), (1, 3)]);

        let spec = map.merge(0, 2).unwrap();
        assert_eq!(spec.moved_slot, Some(3));
        assert_eq!(map.n_workers(), 3);
        // Worker 3's slice now routes to slot 2, with its engine unchanged.
        assert_eq!(map.engine_of(2), Some(engine_of_3));
        for id in 0..1000u32 {
            let expect = match owner_before[id as usize] {
                0 | 2 => 0,
                3 => 2,
                other => other,
            };
            assert_eq!(map.route(v(id)), expect, "vertex {id}");
        }
        // The surviving sibling pair follows the renumbering.
        assert_eq!(map.merge_candidates(), vec![(1, 2)]);

        // The renumbered map still round-trips the codec (the dense-slot
        // validation in decode passes).
        let mut buf = Vec::new();
        map.encode_into(&mut buf);
        assert_eq!(ShardMap::decode(&mut ByteReader::new(&buf)).unwrap(), map);
    }

    #[test]
    fn merge_rejects_non_siblings() {
        let mut map = ShardMap::new(ShardFn::Modulo, 4);
        // Base slots are not siblings (there is no Split node at all).
        assert!(map.merge(0, 1).is_none());
        map.split(0).unwrap();
        // (0, 4) are siblings; (0, 1) and (1, 4) are not. Self and
        // out-of-range pairs are rejected outright.
        assert!(map.merge(0, 1).is_none());
        assert!(map.merge(1, 4).is_none());
        assert!(map.merge(2, 2).is_none());
        assert!(map.merge(0, 9).is_none());
        assert_eq!(map.generation(), 1);
        assert_eq!(map.next_engine(), 6);
        assert!(map.merge(0, 4).is_some());
    }

    #[test]
    fn codec_round_trips_across_generations() {
        let mut map = ShardMap::new(ShardFn::Hashed, 3);
        for _ in 0..4 {
            let slot = map.n_workers() - 1;
            map.split(slot).unwrap();
        }
        let mut buf = Vec::new();
        map.encode_into(&mut buf);
        let decoded = ShardMap::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(decoded, map);
        assert!(ByteReader::new(&buf).remaining() > 0);

        // Truncations never panic and never decode.
        for cut in 0..buf.len() {
            assert!(ShardMap::decode(&mut ByteReader::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn decode_rejects_inconsistent_worker_sets() {
        let mut map = ShardMap::new(ShardFn::Modulo, 2);
        map.split(0).unwrap();
        let mut buf = Vec::new();
        map.encode_into(&mut buf);
        // Claim one more worker than the tries name.
        let mut bad = buf.clone();
        bad[1 + 8 + 8 + 8] += 1;
        assert!(ShardMap::decode(&mut ByteReader::new(&bad)).is_err());
    }
}
