//! Sorted vertex subsets, used to denote (dense) subgraphs.

use crate::VertexId;

/// A subgraph is identified by its vertex subset `C ⊆ V`, stored as a sorted,
/// duplicate-free vector of [`VertexId`]s.
///
/// The sorted representation matches the prefix-tree index of the core crate
/// (tree paths are lexicographically sorted vertex sequences) and gives cheap,
/// deterministic equality/ordering for use as a map key and in test oracles.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexSet {
    vertices: Vec<VertexId>,
}

impl VertexSet {
    /// Creates an empty vertex set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vertex set from an arbitrary collection of vertices,
    /// sorting and de-duplicating them.
    pub fn from_vertices<I: IntoIterator<Item = VertexId>>(vertices: I) -> Self {
        let mut v: Vec<VertexId> = vertices.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        VertexSet { vertices: v }
    }

    /// Creates a vertex set from a slice of raw `u32` identifiers
    /// (convenience for tests and examples).
    pub fn from_ids(ids: &[u32]) -> Self {
        Self::from_vertices(ids.iter().copied().map(VertexId))
    }

    /// Creates the two-vertex set `{a, b}`.
    pub fn pair(a: VertexId, b: VertexId) -> Self {
        Self::from_vertices([a, b])
    }

    /// Number of vertices `|C|` (the subgraph cardinality).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the set contains no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Returns `true` if `v` is a member of the set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// The sorted vertices as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }

    /// The lexicographically largest vertex, if any. This is the vertex under
    /// whose inverted list the subgraph is filed in the dense subgraph index.
    #[inline]
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.vertices.last().copied()
    }

    /// Returns a new set with `v` added (no-op if already present).
    pub fn with(&self, v: VertexId) -> Self {
        match self.vertices.binary_search(&v) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut vertices = Vec::with_capacity(self.vertices.len() + 1);
                vertices.extend_from_slice(&self.vertices[..pos]);
                vertices.push(v);
                vertices.extend_from_slice(&self.vertices[pos..]);
                VertexSet { vertices }
            }
        }
    }

    /// Returns a new set with `v` removed (no-op if absent).
    pub fn without(&self, v: VertexId) -> Self {
        match self.vertices.binary_search(&v) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut vertices = self.vertices.clone();
                vertices.remove(pos);
                VertexSet { vertices }
            }
        }
    }

    /// Adds a vertex in place (no-op if already present). Returns `true` if the
    /// vertex was inserted.
    pub fn insert(&mut self, v: VertexId) -> bool {
        match self.vertices.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.vertices.insert(pos, v);
                true
            }
        }
    }

    /// Returns `true` if `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &VertexSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut it = other.vertices.iter().copied().peekable();
        'outer: for &v in &self.vertices {
            for o in it.by_ref() {
                match o.cmp(&v) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Returns the number of vertices shared with `other`.
    pub fn intersection_size(&self, other: &VertexSet) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

impl FromIterator<VertexId> for VertexSet {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        Self::from_vertices(iter)
    }
}

impl<'a> IntoIterator for &'a VertexSet {
    type Item = VertexId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, VertexId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.vertices.iter().copied()
    }
}

impl std::fmt::Display for VertexSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vertices_sorts_and_dedups() {
        let s = VertexSet::from_ids(&[5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[VertexId(1), VertexId(3), VertexId(5)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.max_vertex(), Some(VertexId(5)));
    }

    #[test]
    fn contains_and_with_without() {
        let s = VertexSet::from_ids(&[1, 3, 5]);
        assert!(s.contains(VertexId(3)));
        assert!(!s.contains(VertexId(4)));

        let t = s.with(VertexId(4));
        assert_eq!(
            t.as_slice(),
            &[VertexId(1), VertexId(3), VertexId(4), VertexId(5)]
        );
        // original untouched
        assert_eq!(s.len(), 3);
        assert_eq!(s.with(VertexId(3)), s);

        let u = t.without(VertexId(1));
        assert_eq!(u.as_slice(), &[VertexId(3), VertexId(4), VertexId(5)]);
        assert_eq!(u.without(VertexId(99)), u);
    }

    #[test]
    fn insert_in_place() {
        let mut s = VertexSet::new();
        assert!(s.insert(VertexId(4)));
        assert!(s.insert(VertexId(2)));
        assert!(!s.insert(VertexId(4)));
        assert_eq!(s.as_slice(), &[VertexId(2), VertexId(4)]);
    }

    #[test]
    fn subset_and_intersection() {
        let a = VertexSet::from_ids(&[1, 3]);
        let b = VertexSet::from_ids(&[1, 2, 3, 4]);
        let c = VertexSet::from_ids(&[3, 5]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(!c.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert_eq!(a.intersection_size(&c), 1);
        assert_eq!(b.intersection_size(&c), 1);
        assert_eq!(a.intersection_size(&b), 2);
    }

    #[test]
    fn pair_and_display() {
        let p = VertexSet::pair(VertexId(9), VertexId(2));
        assert_eq!(p.as_slice(), &[VertexId(2), VertexId(9)]);
        assert_eq!(p.to_string(), "{2, 9}");
        assert_eq!(VertexSet::new().to_string(), "{}");
    }

    #[test]
    fn iteration_orders_ascending() {
        let s = VertexSet::from_ids(&[9, 1, 4]);
        let collected: Vec<u32> = s.iter().map(|v| v.0).collect();
        assert_eq!(collected, vec![1, 4, 9]);
        let collected2: Vec<u32> = (&s).into_iter().map(|v| v.0).collect();
        assert_eq!(collected2, vec![1, 4, 9]);
    }
}
