//! The readiness event-loop backend: every connection multiplexed onto a
//! small fixed pool of loop threads.
//!
//! ## Shape
//!
//! One blocking accept thread admits connections (enforcing
//! `max_connections`) and deals them round-robin to `workers` loop threads
//! through per-loop inboxes. Each loop owns its connections outright — no
//! cross-loop locking on the serving path — and runs a classic readiness
//! loop over the [`Poller`]: non-blocking reads feed an incremental
//! [`FrameBuffer`], decoded requests are answered through the same
//! `handle_request` path as the threaded backend, and responses go out
//! through a bounded per-connection write queue drained on writability.
//!
//! ## Push fan-out
//!
//! The loops collectively register one [`PublishWaker`] on the
//! [`StoryView`](dyndens_shard::StoryView): every shard publication (and
//! every split/merge roster swap) writes one byte into each loop's waker
//! pipe. A woken loop runs a fan-out pass: for every subscribed connection
//! it builds the `Push` frame covering the subscriber's cursor from the
//! shards' delta rings — deltas when retention covers the cursor, resync
//! snapshots when not — advances the cursor, and enqueues the frame.
//! Subscribers at the same cursor share one encoded frame (`Arc`'d into
//! each write queue), so a ten-thousand-subscriber fan-out encodes each
//! micro-batch once per loop, not once per subscriber.
//!
//! ## Slow readers
//!
//! A connection whose queued-but-unsent bytes would exceed
//! `write_queue_bytes` is evicted: queued frames are dropped (the partially
//! written head frame is kept so framing stays intact), a final typed
//! [`ErrorCode::SlowConsumer`] error is enqueued, and the connection closes
//! once it drains. One laggard can therefore delay nobody and pin at most
//! one write queue of memory.

#![cfg(unix)]

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use dyndens_obs::{names, Counter, Gauge, Histogram, ObsEvent};
use dyndens_shard::PublishWaker;

use crate::net::FrameBuffer;
use crate::poller::{Event, Interest, Poller};
use crate::protocol::{frame_message, ErrorCode, Request, Response};
use crate::server::{poll_entries, process_request, Shared, REQ_SUBSCRIBE, REQ_UNSUBSCRIBE};

/// Wakes one loop thread by writing a byte into its waker pipe. Non-blocking
/// on the write side: a full pipe already means a wakeup is pending, which
/// is all a level-triggered edge signal needs.
#[derive(Debug, Clone)]
struct LoopWaker {
    tx: Arc<UnixStream>,
}

impl LoopWaker {
    fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// The fleet-wide publication waker registered on the `StoryView`: one shard
/// publication wakes every loop (each loop owns a disjoint subscriber set,
/// and all of them must fan out).
#[derive(Debug)]
struct FleetWaker {
    wakers: Vec<LoopWaker>,
}

impl PublishWaker for FleetWaker {
    fn wake(&self, _seq: u64) {
        for waker in &self.wakers {
            waker.wake();
        }
    }
}

/// A connection freshly admitted by the accept thread, en route to a loop.
type Admitted = (TcpStream, u64);

struct LoopHandle {
    waker: LoopWaker,
    thread: Option<JoinHandle<()>>,
}

/// The running event-loop backend: the accept thread plus the loop pool.
pub(crate) struct EventedBackend {
    accept: Option<JoinHandle<()>>,
    loops: Vec<LoopHandle>,
    /// Keeps the fleet waker's strong count alive: the view's cells hold it
    /// weakly, so dropping the backend detaches the fan-out hook.
    _fleet: Arc<dyn PublishWaker>,
}

impl std::fmt::Debug for EventedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventedBackend")
            .field("loops", &self.loops.len())
            .finish_non_exhaustive()
    }
}

impl EventedBackend {
    pub(crate) fn start(
        listener: TcpListener,
        shared: Arc<Shared>,
        workers: usize,
    ) -> io::Result<EventedBackend> {
        let workers = workers.max(1);
        let mut pipes = Vec::with_capacity(workers);
        let mut wakers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            let waker = LoopWaker { tx: Arc::new(tx) };
            wakers.push(waker.clone());
            pipes.push((rx, waker));
        }
        let fleet: Arc<dyn PublishWaker> = Arc::new(FleetWaker { wakers });
        shared.view.watch(&fleet);

        let mut loops = Vec::with_capacity(workers);
        let mut dispatch = Vec::with_capacity(workers);
        for (idx, (rx, waker)) in pipes.into_iter().enumerate() {
            let inbox: Arc<Mutex<Vec<Admitted>>> = Arc::new(Mutex::new(Vec::new()));
            dispatch.push((Arc::clone(&inbox), waker.clone()));
            let mut event_loop =
                EventLoop::new(rx, inbox, Arc::clone(&shared), Arc::clone(&fleet))?;
            let thread = std::thread::Builder::new()
                .name(format!("dyndens-serve-loop-{idx}"))
                .spawn(move || event_loop.run())?;
            loops.push(LoopHandle {
                waker,
                thread: Some(thread),
            });
        }

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("dyndens-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, dispatch))?;
        Ok(EventedBackend {
            accept: Some(accept),
            loops,
            _fleet: fleet,
        })
    }

    /// Joins the accept thread and the loop pool. The caller has already set
    /// the shutdown flag and poked the listener.
    pub(crate) fn shutdown(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in &self.loops {
            handle.waker.wake();
        }
        for handle in &mut self.loops {
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    dispatch: Vec<(Arc<Mutex<Vec<Admitted>>>, LoopWaker)>,
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Some(conn_id) = shared.admit() else {
            // At the connection bound: close without touching a loop.
            continue;
        };
        let _ = stream.set_nodelay(true);
        let (inbox, waker) = &dispatch[next % dispatch.len()];
        next = next.wrapping_add(1);
        inbox
            .lock()
            .expect("loop inbox poisoned")
            .push((stream, conn_id));
        waker.wake();
    }
}

/// The loop's pre-registered metric handles (present iff obs is enabled).
#[derive(Debug)]
struct LoopObs {
    wakeups: Counter,
    fanout_us: Histogram,
    subscribers: Gauge,
}

/// One connection's state machine: incremental read buffer, bounded write
/// queue, optional subscription cursor.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    id: u64,
    rbuf: FrameBuffer,
    /// Completed frames awaiting the socket, `Arc`'d so one fan-out frame is
    /// shared across every subscriber's queue.
    wq: VecDeque<Arc<Vec<u8>>>,
    /// Bytes across all queued frames (including the partially sent head).
    wq_bytes: usize,
    /// Bytes of the head frame already written.
    woff: usize,
    /// The subscription cursor, present while the connection is subscribed.
    cursor: Option<Vec<u64>>,
    /// Set once the connection is condemned (slow-reader eviction): the
    /// queue drains, then the socket closes.
    closing: bool,
    /// Whether the poller currently watches writability for this conn.
    writable_interest: bool,
}

/// A memoised fan-out computation: subscribers sharing a cursor share the
/// encoded frame and the advanced cursor. `frame` is `None` when the cursor
/// is already current.
struct CachedPush {
    frame: Option<Arc<Vec<u8>>>,
    new_cursor: Vec<u64>,
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    waker_rx: UnixStream,
    inbox: Arc<Mutex<Vec<Admitted>>>,
    fleet: Arc<dyn PublishWaker>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// The shard count the loop last attached watchers under; a grown
    /// roster re-walks `StoryView::watch` to cover new shard cells.
    known_shards: usize,
    obs: Option<LoopObs>,
}

/// Token 0 is the waker pipe; connection slots are offset by 1.
const TOKEN_WAKER: usize = 0;

impl EventLoop {
    fn new(
        waker_rx: UnixStream,
        inbox: Arc<Mutex<Vec<Admitted>>>,
        shared: Arc<Shared>,
        fleet: Arc<dyn PublishWaker>,
    ) -> io::Result<EventLoop> {
        let obs = shared.obs.registry().map(|registry| LoopObs {
            wakeups: registry.counter(names::SERVE_WAKEUPS_TOTAL, &[]),
            fanout_us: registry.histogram(names::SERVE_FANOUT_LATENCY_US, &[]),
            subscribers: registry.gauge(names::SERVE_SUBSCRIBERS, &[]),
        });
        let known_shards = shared.view.n_shards();
        Ok(EventLoop {
            shared,
            poller: Poller::new()?,
            waker_rx,
            inbox,
            fleet,
            conns: Vec::new(),
            free: Vec::new(),
            known_shards,
            obs,
        })
    }

    fn run(&mut self) {
        if self
            .poller
            .register(self.waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.poller.wait(&mut events, None).is_err() {
                break;
            }
            let mut woken = false;
            for event in &events {
                if event.token == TOKEN_WAKER {
                    woken = true;
                    continue;
                }
                let slot = event.token - 1;
                if event.readable {
                    self.handle_readable(slot);
                }
                if event.writable {
                    self.handle_writable(slot);
                }
            }
            if woken {
                self.drain_waker();
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if woken {
                self.adopt_new_conns();
                self.fan_out();
            }
        }
        // Shutdown: close every connection this loop owns, releasing the
        // live-connection count (none of these closes are severs).
        for slot in 0..self.conns.len() {
            self.close(slot, false);
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn adopt_new_conns(&mut self) {
        let admitted: Vec<Admitted> =
            std::mem::take(&mut *self.inbox.lock().expect("loop inbox poisoned"));
        for (stream, id) in admitted {
            if stream.set_nonblocking(true).is_err() {
                self.shared.live_conns.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            if self
                .poller
                .register(stream.as_raw_fd(), slot + 1, Interest::READ)
                .is_err()
            {
                self.free.push(slot);
                self.shared.live_conns.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            self.conns[slot] = Some(Conn {
                stream,
                id,
                rbuf: FrameBuffer::new(),
                wq: VecDeque::new(),
                wq_bytes: 0,
                woff: 0,
                cursor: None,
                closing: false,
                writable_interest: false,
            });
        }
    }

    /// Reads until `WouldBlock` (level-triggered, so stopping early would
    /// only defer to the next wakeup; draining now saves the syscalls),
    /// handling every complete frame as it surfaces.
    fn handle_readable(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            match conn.rbuf.fill_from(&mut conn.stream) {
                Ok(0) => {
                    // EOF: clean if no frame was torn mid-stream. A condemned
                    // conn hanging up early is already accounted for.
                    let torn = conn.rbuf.has_partial() && !conn.closing;
                    self.close(slot, torn);
                    return;
                }
                Ok(_) => {
                    if self.process_frames(slot).is_err() {
                        self.close(slot, true);
                        return;
                    }
                    if self.conns.get(slot).is_none_or(Option::is_none) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, true);
                    return;
                }
            }
        }
    }

    /// Decodes and answers every complete frame buffered on `slot`. An
    /// `Err` means the stream desynchronised (framing/CRC) and must be
    /// severed.
    fn process_frames(&mut self, slot: usize) -> Result<(), ()> {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return Ok(());
            };
            let payload = match conn.rbuf.next_frame() {
                Ok(Some(payload)) => payload,
                Ok(None) => return Ok(()),
                Err(_) => return Err(()),
            };
            if conn.closing {
                // A condemned connection's requests no longer matter; keep
                // consuming frames (bounding the read buffer) while the
                // severance drains, but answer nothing.
                continue;
            }
            self.handle_frame(slot, &payload);
        }
    }

    /// Answers one decoded frame. Subscription traffic is intercepted here
    /// (it needs per-connection state); everything else goes through the
    /// shared `process_request` path.
    fn handle_frame(&mut self, slot: usize, payload: &[u8]) {
        let shared = Arc::clone(&self.shared);
        match Request::decode(payload) {
            Ok(Request::Subscribe { since }) => {
                let started = shared.req_obs.is_some().then(Instant::now);
                let n_shards = shared.view.n_shards();
                let cursor = if since.len() == n_shards {
                    since
                } else {
                    // Stale or bootstrap cursor: rebase every shard from 0;
                    // the catch-up push resyncs whatever retention no longer
                    // covers — the same contract as `Poll`.
                    vec![0; n_shards]
                };
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                let newly = conn.cursor.is_none();
                let conn_id = conn.id;
                conn.cursor = Some(cursor);
                if newly {
                    shared.subscribers.fetch_add(1, Ordering::Relaxed);
                    if let Some(registry) = shared.obs.registry() {
                        registry.emit(ObsEvent::Subscribed { conn: conn_id });
                    }
                }
                self.publish_subscriber_gauge();
                shared.requests_served.fetch_add(1, Ordering::Relaxed);
                self.record_request(REQ_SUBSCRIBE, started);
                let reply = Response::Subscribed {
                    n_shards: n_shards as u32,
                };
                self.enqueue(slot, Arc::new(frame_message(|buf| reply.encode_into(buf))));
                // Catch the subscriber up immediately: everything its cursor
                // is already behind on goes out as the first push.
                let mut cache = HashMap::new();
                self.push_to(slot, &mut cache);
            }
            Ok(Request::Unsubscribe) => {
                let started = shared.req_obs.is_some().then(Instant::now);
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                if conn.cursor.take().is_some() {
                    shared.subscribers.fetch_sub(1, Ordering::Relaxed);
                }
                self.publish_subscriber_gauge();
                shared.requests_served.fetch_add(1, Ordering::Relaxed);
                self.record_request(REQ_UNSUBSCRIBE, started);
                // The cursor is gone, so no further push can be enqueued:
                // the acknowledgement is the last subscription frame on the
                // wire, as the protocol promises.
                let reply = Response::Unsubscribed;
                self.enqueue(slot, Arc::new(frame_message(|buf| reply.encode_into(buf))));
            }
            _ => {
                // Plain request/response (or an undecodable payload): the
                // shared path decodes again — these requests are cold next
                // to pushes, so the double decode is noise.
                let response = process_request(payload, &shared);
                self.enqueue(
                    slot,
                    Arc::new(frame_message(|buf| response.encode_into(buf))),
                );
            }
        }
    }

    /// Records one subscribe/unsubscribe request against the per-type
    /// metrics (the shared `process_request` path does this for the kinds it
    /// handles).
    fn record_request(&self, kind: usize, started: Option<Instant>) {
        if let (Some(req_obs), Some(started)) = (self.shared.req_obs.as_ref(), started) {
            let (requests, latency) = &req_obs[kind];
            requests.inc();
            latency.record_micros(started.elapsed());
        }
    }

    fn publish_subscriber_gauge(&self) {
        if let Some(obs) = &self.obs {
            obs.subscribers
                .set(self.shared.subscribers.load(Ordering::Relaxed));
        }
    }

    /// One fan-out pass: push to every subscribed connection whose cursor a
    /// shard has published past. Runs after every wakeup; a pass that finds
    /// nothing new costs one atomic load per shard per subscriber.
    fn fan_out(&mut self) {
        let n_shards = self.shared.view.n_shards();
        if n_shards != self.known_shards {
            // Topology changed: re-walk the watcher attachment so cells
            // created by the split wake this loop too.
            self.known_shards = n_shards;
            self.shared.view.watch(&self.fleet);
        }
        let started = self.obs.is_some().then(Instant::now);
        let mut cache: HashMap<Vec<u64>, CachedPush> = HashMap::new();
        let mut any = false;
        for slot in 0..self.conns.len() {
            let subscribed = self
                .conns
                .get(slot)
                .and_then(Option::as_ref)
                .is_some_and(|c| c.cursor.is_some() && !c.closing);
            if subscribed {
                any = true;
                self.push_to(slot, &mut cache);
            }
        }
        if let Some(obs) = &self.obs {
            obs.wakeups.inc();
            if any {
                if let Some(started) = started {
                    obs.fanout_us.record_micros(started.elapsed());
                }
            }
        }
    }

    /// Builds (or reuses) the push frame covering `slot`'s cursor and
    /// enqueues it, advancing the cursor. No-op when nothing advanced.
    fn push_to(&mut self, slot: usize, cache: &mut HashMap<Vec<u64>, CachedPush>) {
        let shared = Arc::clone(&self.shared);
        let n_shards = shared.view.n_shards();
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let Some(cursor) = conn.cursor.as_mut() else {
            return;
        };
        if cursor.len() != n_shards {
            // The topology changed under the subscription (split/merge):
            // rebase from zero. Retention won't cover seq 0 on a busy shard,
            // so the affected slots go out as resyncs — the directive the
            // client's mirror honours by rebuilding from the snapshot.
            *cursor = vec![0; n_shards];
        }
        let key = cursor.clone();
        let cached = cache.entry(key.clone()).or_insert_with(|| {
            let mut advanced = key;
            let entries = poll_entries(&shared, &mut advanced);
            let frame = if entries.is_empty() {
                None
            } else {
                let resp = Response::Push {
                    n_shards: n_shards as u32,
                    entries,
                };
                Some(Arc::new(frame_message(|buf| resp.encode_into(buf))))
            };
            CachedPush {
                frame,
                new_cursor: advanced,
            }
        });
        let frame = cached.frame.clone();
        let new_cursor = cached.new_cursor.clone();
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if let Some(cursor) = conn.cursor.as_mut() {
            *cursor = new_cursor;
        }
        if let Some(frame) = frame {
            shared.pushes_sent.fetch_add(1, Ordering::Relaxed);
            self.enqueue(slot, frame);
        }
    }

    /// Appends a frame to `slot`'s write queue, evicting the connection as a
    /// slow reader if the queue bound would be exceeded, then flushes as
    /// much as the socket accepts.
    fn enqueue(&mut self, slot: usize, frame: Arc<Vec<u8>>) {
        let bound = self.shared.write_queue_bytes;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing {
            return;
        }
        // A single frame larger than the bound is still deliverable on an
        // otherwise-empty queue; only a *backlog* marks a slow reader.
        if conn.wq_bytes > 0 && conn.wq_bytes + frame.len() > bound {
            self.evict_slow(slot);
            return;
        }
        conn.wq_bytes += frame.len();
        conn.wq.push_back(frame);
        self.flush(slot);
    }

    /// Condemns a slow reader: drops its queued frames (keeping the
    /// partially written head so framing stays intact), enqueues the typed
    /// severance, and lets the queue drain to close.
    fn evict_slow(&mut self, slot: usize) {
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let queued_bytes = conn.wq_bytes as u64;
        let conn_id = conn.id;
        // Keep the head frame if mid-write — truncating it would desync the
        // client's framing right as we try to tell it why it's being cut.
        let head = if conn.woff > 0 {
            conn.wq.front().cloned()
        } else {
            None
        };
        conn.wq.clear();
        conn.wq_bytes = 0;
        if let Some(head) = head {
            conn.wq_bytes = head.len();
            conn.wq.push_back(head);
        }
        let severance = Response::Error {
            code: ErrorCode::SlowConsumer,
            message: format!(
                "write queue overflow: {queued_bytes} bytes queued against a \
                 {}-byte bound; subscriber evicted",
                shared.write_queue_bytes
            ),
        };
        let frame = Arc::new(frame_message(|buf| severance.encode_into(buf)));
        conn.wq_bytes += frame.len();
        conn.wq.push_back(frame);
        conn.closing = true;
        if conn.cursor.take().is_some() {
            shared.subscribers.fetch_sub(1, Ordering::Relaxed);
        }
        shared.slow_evictions.fetch_add(1, Ordering::Relaxed);
        shared.error_replies.fetch_add(1, Ordering::Relaxed);
        if let Some(registry) = shared.obs.registry() {
            registry.emit(ObsEvent::SlowReaderEvicted {
                conn: conn_id,
                queued_bytes,
            });
        }
        self.publish_subscriber_gauge();
        self.flush(slot);
    }

    fn handle_writable(&mut self, slot: usize) {
        self.flush(slot);
    }

    /// Writes queued frames until the socket pushes back, then reconciles
    /// poller interest (writable iff a backlog remains) and closes condemned
    /// connections whose severance has fully drained.
    fn flush(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let Some(head) = conn.wq.front() else { break };
            let head = Arc::clone(head);
            match conn.stream.write(&head[conn.woff..]) {
                Ok(0) => {
                    self.close(slot, true);
                    return;
                }
                Ok(n) => {
                    conn.woff += n;
                    if conn.woff == head.len() {
                        conn.wq_bytes -= head.len();
                        conn.woff = 0;
                        conn.wq.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, true);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.wq.is_empty() && conn.closing {
            // The severance is on the wire; the eviction was already
            // accounted, so this close is not a sever.
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.close(slot, false);
            return;
        }
        let want_writable = !conn.wq.is_empty();
        if want_writable != conn.writable_interest {
            conn.writable_interest = want_writable;
            let interest = if want_writable {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.reregister(fd, slot + 1, interest);
        }
    }

    /// Tears down `slot`: deregisters, releases the live count, frees the
    /// slot. `severed` marks framing/I/O failures (not clean hang-ups,
    /// evictions or shutdown).
    fn close(&mut self, slot: usize, severed: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.cursor.is_some() {
            self.shared.subscribers.fetch_sub(1, Ordering::Relaxed);
            self.publish_subscriber_gauge();
        }
        if severed && !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.conns_severed.fetch_add(1, Ordering::Relaxed);
            if let Some(registry) = self.shared.obs.registry() {
                registry.emit(ObsEvent::ConnSevered { conn: conn.id });
            }
        }
        self.shared.live_conns.fetch_sub(1, Ordering::Relaxed);
        self.free.push(slot);
    }
}
