//! The blocking client: framed request/response over one TCP connection,
//! plus [`Follower`], the delta-applying mirror of a remote story set.

use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::VertexSet;
use dyndens_obs::RegistrySnapshot;

use crate::net::{read_frame, write_frame};
use crate::protocol::{
    frame_message, DecodeFailure, ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat,
    WireStory,
};

/// An error talking to a story server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or desynchronised (includes CRC mismatches).
    Io(io::Error),
    /// The server's reply frame did not decode.
    Decode(DecodeFailure),
    /// The server answered with an [`ErrorCode`].
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server's reply type does not match the request, or a reply
    /// invariant the client relies on was violated.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Decode(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeFailure> for ClientError {
    fn from(e: DecodeFailure) -> Self {
        ClientError::Decode(e)
    }
}

/// A blocking connection to a story server. One in-flight request at a time;
/// open one client per thread for concurrency.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a story server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its reply.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(
            &mut self.writer,
            &frame_message(|buf| request.encode_into(buf)),
        )?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up before replying",
            ))
        })?;
        let response = Response::decode(&payload)?;
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    /// The merged current top-`k` stories and the per-shard sequence numbers
    /// they reflect.
    pub fn top_k(&mut self, k: u32) -> Result<(Vec<u64>, Vec<WireStory>), ClientError> {
        match self.call(&Request::TopK { k })? {
            Response::Stories {
                per_shard_seq,
                stories,
            } => Ok((per_shard_seq, stories)),
            _ => Err(ClientError::Protocol("expected a Stories reply to TopK")),
        }
    }

    /// One incremental read: the shard count and, for every shard that
    /// advanced past `since`, its delta suffix or resync snapshot. An empty
    /// `since` is the bootstrap cursor.
    pub fn poll(&mut self, since: &[u64]) -> Result<(u32, Vec<ShardPoll>), ClientError> {
        let request = Request::Poll {
            since: since.to_vec(),
        };
        match self.call(&request)? {
            Response::Poll { n_shards, entries } => Ok((n_shards, entries)),
            _ => Err(ClientError::Protocol("expected a Poll reply to Poll")),
        }
    }

    /// The fleet's merged work counters, the serving layer's own counters,
    /// and per-shard serving health.
    pub fn stats(&mut self) -> Result<(EngineStats, ServeStats, Vec<ShardStat>), ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                stats,
                serve,
                shards,
            } => Ok((stats, serve, shards)),
            _ => Err(ClientError::Protocol("expected a Stats reply to Stats")),
        }
    }

    /// The server's full observability snapshot: every registered counter,
    /// gauge and latency histogram plus the recent event journal. Empty when
    /// the server runs uninstrumented.
    pub fn metrics(&mut self) -> Result<RegistrySnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { registry } => Ok(registry),
            _ => Err(ClientError::Protocol("expected a Metrics reply to Metrics")),
        }
    }
}

/// A client-side mirror of the served story sets, maintained purely from
/// `Poll` replies: resync snapshots rebase a shard, delta suffixes advance
/// it event by event.
///
/// After any poll, [`story_sets`](Follower::story_sets) is exactly the union
/// of the per-shard story sets at the cursor's sequence numbers — the same
/// sets an in-process [`StoryView`](dyndens_shard::StoryView) reader at
/// those sequence numbers would observe (provided the server's `top_k` covers
/// each shard's full output-dense set, so resync snapshots are complete).
/// Densities are as-of each story's last event; a story whose density drifts
/// *without* crossing the output threshold emits no event, so only the set
/// membership (not every score) is guaranteed current between resyncs.
#[derive(Debug, Default)]
pub struct Follower {
    since: Vec<u64>,
    shards: Vec<BTreeMap<VertexSet, f64>>,
    events_applied: u64,
    resyncs: u64,
}

impl Follower {
    /// A follower at the bootstrap cursor: its first poll resynchronises (or
    /// replays from sequence zero, when retention still covers it).
    pub fn new() -> Follower {
        Follower::default()
    }

    /// The per-shard cursor: the sequence numbers the mirror is current to.
    /// Empty until the first poll learns the server's shard count.
    pub fn cursor(&self) -> &[u64] {
        &self.since
    }

    /// Total [`DenseEvent`]s applied through delta suffixes so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Number of resync rebases performed so far (each one means the
    /// follower had fallen behind a shard's delta retention).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Polls `client` once and applies the reply. Returns `true` if any
    /// shard advanced.
    pub fn poll(&mut self, client: &mut Client) -> Result<bool, ClientError> {
        let (n_shards, entries) = client.poll(&self.since)?;
        if self.since.is_empty() {
            self.since = vec![0; n_shards as usize];
            self.shards = (0..n_shards).map(|_| BTreeMap::new()).collect();
        } else if self.since.len() != n_shards as usize {
            // The server's topology changed under us (a shard split, or a
            // recovery into a differently-sized fleet). The server already
            // treated our stale cursor as a bootstrap cursor, so the entries
            // in this very reply rebase every slot: drop the old mirror and
            // apply them against a fresh one.
            self.since = vec![0; n_shards as usize];
            self.shards = (0..n_shards).map(|_| BTreeMap::new()).collect();
            self.resyncs += 1;
        }
        let advanced = !entries.is_empty();
        for entry in entries {
            let shard = entry.shard() as usize;
            if shard >= self.shards.len() {
                return Err(ClientError::Protocol("poll entry for unknown shard"));
            }
            match entry {
                ShardPoll::Resync {
                    seq, stories: set, ..
                } => {
                    self.shards[shard] = set.into_iter().collect();
                    self.since[shard] = seq;
                    self.resyncs += 1;
                }
                ShardPoll::Deltas {
                    from_seq,
                    to_seq,
                    events,
                    ..
                } => {
                    if from_seq != self.since[shard] {
                        return Err(ClientError::Protocol(
                            "delta suffix does not start at the cursor",
                        ));
                    }
                    self.events_applied += events.len() as u64;
                    for event in events {
                        apply_event(&mut self.shards[shard], &event);
                    }
                    self.since[shard] = to_seq;
                }
            }
        }
        Ok(advanced)
    }

    /// The mirrored story sets, union over shards, ordered by vertex set.
    pub fn story_sets(&self) -> Vec<(VertexSet, f64)> {
        let mut out: Vec<(VertexSet, f64)> = self
            .shards
            .iter()
            .flat_map(|m| m.iter().map(|(s, d)| (s.clone(), *d)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The mirrored vertex sets only, ordered.
    pub fn vertex_sets(&self) -> Vec<VertexSet> {
        self.story_sets().into_iter().map(|(s, _)| s).collect()
    }
}

fn apply_event(set: &mut BTreeMap<VertexSet, f64>, event: &DenseEvent) {
    match event {
        DenseEvent::BecameOutputDense { vertices, density } => {
            set.insert(vertices.clone(), *density);
        }
        DenseEvent::NoLongerOutputDense { vertices, .. } => {
            set.remove(vertices);
        }
    }
}
