//! The client side: configurable connections ([`ClientBuilder`]), blocking
//! request/response ([`Client`]), push subscriptions ([`Subscription`]) and
//! [`Mirror`], the delta-applying replica of a remote story set.
//!
//! ```text
//!   ClientBuilder ──connect──► Client ──subscribe──► Subscription
//!        ▲                      │  ▲                     │
//!        └── timeouts, retry,   │  └────unsubscribe──────┘
//!            resync policy      └── top_k / poll / stats / metrics
//! ```
//!
//! A [`Client`] issues one request at a time and reads its reply. Calling
//! [`Client::subscribe`] upgrades the connection to push mode: the server
//! streams [`PushBatch`]es whenever shards publish, and the connection comes
//! back to request/response mode through [`Subscription::unsubscribe`].
//! Either way, a [`Mirror`] turns the entries into a local story set that
//! matches what an in-process reader at the same sequence numbers would see.

use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::VertexSet;
use dyndens_obs::RegistrySnapshot;

use crate::net::{read_frame, write_frame, FrameBuffer};
use crate::protocol::{
    frame_message, DecodeFailure, ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat,
    WireStory,
};

/// An error talking to a story server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or desynchronised (includes CRC mismatches).
    Io(io::Error),
    /// The server's reply frame did not decode.
    Decode(DecodeFailure),
    /// The server answered with an [`ErrorCode`].
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server's reply type does not match the request, or a reply
    /// invariant the client relies on was violated.
    Protocol(&'static str),
    /// A push contained a resync entry while the client runs with
    /// [`ResyncPolicy::Fail`]: the subscriber fell behind the server's delta
    /// retention (or the topology changed) and chose to treat that as an
    /// error instead of rebasing.
    ResyncRequired {
        /// The shard whose entry demanded a resync.
        shard: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Decode(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::ResyncRequired { shard } => {
                write!(f, "shard {shard} requires a resync (policy: fail)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeFailure> for ClientError {
    fn from(e: DecodeFailure) -> Self {
        ClientError::Decode(e)
    }
}

/// What a subscriber does when the server sends a resync entry instead of a
/// delta suffix (it fell behind retention, or the shard topology changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResyncPolicy {
    /// Accept the snapshot and rebase the mirrored shard on it (the
    /// default): the mirror stays correct, at the cost of one snapshot-sized
    /// batch.
    #[default]
    Rebase,
    /// Surface [`ClientError::ResyncRequired`] instead of applying the
    /// snapshot — for callers that need gap-free event streams and prefer to
    /// rebuild through their own channel.
    Fail,
}

/// The connection settings a [`Client`] carries (and hands on to the
/// [`Subscription`] it may become).
#[derive(Debug, Clone, Copy)]
struct ClientConfig {
    resync_policy: ResyncPolicy,
}

/// Configures and opens a [`Client`]: timeouts, connect retries with
/// backoff, and the subscription resync policy.
///
/// ```no_run
/// # use std::time::Duration;
/// # use dyndens_serve::client::ClientBuilder;
/// let client = ClientBuilder::new()
///     .connect_timeout(Duration::from_secs(2))
///     .read_timeout(Some(Duration::from_secs(30)))
///     .retries(3)
///     .backoff(Duration::from_millis(50))
///     .connect("127.0.0.1:7171")
///     .unwrap();
/// # drop(client);
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    retries: u32,
    backoff: Duration,
    nodelay: bool,
    resync_policy: ResyncPolicy,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            connect_timeout: None,
            read_timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            nodelay: true,
            resync_policy: ResyncPolicy::Rebase,
        }
    }
}

impl ClientBuilder {
    /// A builder with defaults: no timeouts, no retries, `TCP_NODELAY` on,
    /// [`ResyncPolicy::Rebase`].
    pub fn new() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Bounds each TCP connect attempt. Default: the OS's own limit.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Bounds every blocking read — request replies *and*
    /// [`Subscription::recv`], where a timeout surfaces as an
    /// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] error.
    /// `None` (the default) blocks indefinitely.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// How many times to retry a failed connect (so `retries(3)` makes up to
    /// four attempts). Default: 0.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The delay before the first reconnect attempt; it doubles per attempt.
    /// Default: 100 ms.
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Whether to set `TCP_NODELAY` (default: true — the protocol is
    /// request/response and push frames should not wait on Nagle).
    pub fn nodelay(mut self, nodelay: bool) -> Self {
        self.nodelay = nodelay;
        self
    }

    /// How a [`Subscription`] built from this client treats resync entries.
    /// Default: [`ResyncPolicy::Rebase`].
    pub fn resync_policy(mut self, policy: ResyncPolicy) -> Self {
        self.resync_policy = policy;
        self
    }

    /// Connects, retrying with doubling backoff on failure.
    pub fn connect(self, addr: impl ToSocketAddrs) -> io::Result<Client> {
        let mut delay = self.backoff;
        let mut last_err = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match self.connect_once(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no socket addresses resolved")
        }))
    }

    fn connect_once(&self, addr: &impl ToSocketAddrs) -> io::Result<Client> {
        let mut last_err = None;
        for sockaddr in addr.to_socket_addrs()? {
            let attempt = match self.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(&sockaddr, timeout),
                None => TcpStream::connect(sockaddr),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(self.nodelay)?;
                    stream.set_read_timeout(self.read_timeout)?;
                    return Ok(Client {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: BufWriter::new(stream),
                        config: ClientConfig {
                            resync_policy: self.resync_policy,
                        },
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no socket addresses resolved")
        }))
    }
}

/// A blocking connection to a story server. One in-flight request at a time;
/// open one client per thread for concurrency. Build with
/// [`Client::builder`]; upgrade to push delivery with
/// [`Client::subscribe`].
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    config: ClientConfig,
}

impl Client {
    /// Starts configuring a connection; see [`ClientBuilder`].
    pub fn builder() -> ClientBuilder {
        ClientBuilder::new()
    }

    /// Connects with default settings.
    #[deprecated(note = "use `Client::builder().connect(addr)` to configure \
                         timeouts, retries and the resync policy")]
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        ClientBuilder::new().connect(addr)
    }

    /// Sends one request and reads its reply.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(
            &mut self.writer,
            &frame_message(|buf| request.encode_into(buf)),
        )?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up before replying",
            ))
        })?;
        let response = Response::decode(&payload)?;
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    /// The merged current top-`k` stories and the per-shard sequence numbers
    /// they reflect.
    pub fn top_k(&mut self, k: u32) -> Result<(Vec<u64>, Vec<WireStory>), ClientError> {
        match self.call(&Request::TopK { k })? {
            Response::Stories {
                per_shard_seq,
                stories,
            } => Ok((per_shard_seq, stories)),
            _ => Err(ClientError::Protocol("expected a Stories reply to TopK")),
        }
    }

    /// One incremental read: the shard count and, for every shard that
    /// advanced past `since`, its delta suffix or resync snapshot. An empty
    /// `since` is the bootstrap cursor.
    pub fn poll(&mut self, since: &[u64]) -> Result<(u32, Vec<ShardPoll>), ClientError> {
        let request = Request::Poll {
            since: since.to_vec(),
        };
        match self.call(&request)? {
            Response::Poll { n_shards, entries } => Ok((n_shards, entries)),
            _ => Err(ClientError::Protocol("expected a Poll reply to Poll")),
        }
    }

    /// The fleet's merged work counters, the serving layer's own counters,
    /// and per-shard serving health.
    pub fn stats(&mut self) -> Result<(EngineStats, ServeStats, Vec<ShardStat>), ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                stats,
                serve,
                shards,
            } => Ok((stats, serve, shards)),
            _ => Err(ClientError::Protocol("expected a Stats reply to Stats")),
        }
    }

    /// The server's full observability snapshot: every registered counter,
    /// gauge and latency histogram plus the recent event journal. Empty when
    /// the server runs uninstrumented.
    pub fn metrics(&mut self) -> Result<RegistrySnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { registry } => Ok(registry),
            _ => Err(ClientError::Protocol("expected a Metrics reply to Metrics")),
        }
    }

    /// Registers this connection as a push subscriber at cursor `since` (use
    /// `&[]` to bootstrap from nothing) and converts it into a
    /// [`Subscription`].
    ///
    /// The server immediately follows its acknowledgement with a catch-up
    /// [`PushBatch`] for everything the cursor is behind on, then pushes a
    /// batch whenever a shard publishes. On error the connection is consumed
    /// — push registration is a protocol-mode switch, and a connection whose
    /// mode is uncertain is not worth keeping. A threaded-mode server
    /// answers with [`ErrorCode::Unsupported`].
    pub fn subscribe(mut self, since: &[u64]) -> Result<Subscription, ClientError> {
        let request = Request::Subscribe {
            since: since.to_vec(),
        };
        let n_shards = match self.call(&request)? {
            Response::Subscribed { n_shards } => n_shards,
            _ => {
                return Err(ClientError::Protocol(
                    "expected a Subscribed reply to Subscribe",
                ))
            }
        };
        // The catch-up push may already sit in the BufReader; carry those
        // bytes into the frame buffer the non-blocking path reads from.
        let leftover = self.reader.buffer().to_vec();
        let stream = self.reader.into_inner();
        Ok(Subscription {
            stream,
            writer: self.writer,
            fbuf: FrameBuffer::with_initial(leftover),
            config: self.config,
            n_shards,
            nonblocking: false,
        })
    }
}

/// One push from the server: the shard count it was computed under and the
/// per-shard entries (delta suffixes or resync snapshots) that advance a
/// subscriber past its cursor. Feed it to [`Mirror::apply`] to maintain a
/// local story set.
#[derive(Debug, Clone)]
pub struct PushBatch {
    /// The server's shard count when the push was built. A change from the
    /// previous batch means the topology changed; the affected entries
    /// arrive as resyncs.
    pub n_shards: u32,
    /// Per-shard catch-up entries, at most one per shard.
    pub entries: Vec<ShardPoll>,
}

/// A connection in push mode: the server streams [`PushBatch`]es as shards
/// publish.
///
/// [`recv`](Subscription::recv) blocks for the next batch (and the
/// [`Iterator`] implementation wraps it); [`try_next`](Subscription::try_next)
/// returns immediately. [`unsubscribe`](Subscription::unsubscribe) drains the
/// stream and converts the connection back into a request/response
/// [`Client`].
///
/// A server that evicts this subscriber as a slow reader ends the stream
/// with [`ClientError::Server`] carrying [`ErrorCode::SlowConsumer`].
#[derive(Debug)]
pub struct Subscription {
    stream: TcpStream,
    writer: BufWriter<TcpStream>,
    fbuf: FrameBuffer,
    config: ClientConfig,
    n_shards: u32,
    nonblocking: bool,
}

impl Subscription {
    /// The server's shard count at subscribe time.
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    fn set_nonblocking(&mut self, on: bool) -> io::Result<()> {
        if self.nonblocking != on {
            self.stream.set_nonblocking(on)?;
            self.nonblocking = on;
        }
        Ok(())
    }

    /// Interprets one buffered frame, if complete.
    fn take_frame(&mut self) -> Result<Option<PushBatch>, ClientError> {
        let Some(payload) = self.fbuf.next_frame()? else {
            return Ok(None);
        };
        match Response::decode(&payload)? {
            Response::Push { n_shards, entries } => {
                if self.config.resync_policy == ResyncPolicy::Fail {
                    if let Some(entry) = entries
                        .iter()
                        .find(|e| matches!(e, ShardPoll::Resync { .. }))
                    {
                        return Err(ClientError::ResyncRequired {
                            shard: entry.shard(),
                        });
                    }
                }
                self.n_shards = n_shards;
                Ok(Some(PushBatch { n_shards, entries }))
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol(
                "unexpected non-push frame on a subscription",
            )),
        }
    }

    /// Blocks until the next [`PushBatch`] arrives. `Ok(None)` means the
    /// server hung up cleanly; with a read timeout configured, expiry
    /// surfaces as [`ClientError::Io`].
    pub fn recv(&mut self) -> Result<Option<PushBatch>, ClientError> {
        self.set_nonblocking(false)?;
        loop {
            if let Some(batch) = self.take_frame()? {
                return Ok(Some(batch));
            }
            match self.fbuf.fill_from(&mut self.stream) {
                Ok(0) => {
                    if self.fbuf.has_partial() {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server hung up inside a push frame",
                        )));
                    }
                    return Ok(None);
                }
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Returns the next [`PushBatch`] if one is already buffered or in the
    /// socket, without blocking. `Ok(None)` means nothing is pending yet.
    pub fn try_next(&mut self) -> Result<Option<PushBatch>, ClientError> {
        self.set_nonblocking(true)?;
        loop {
            if let Some(batch) = self.take_frame()? {
                return Ok(Some(batch));
            }
            match self.fbuf.fill_from(&mut self.stream) {
                Ok(0) => {
                    if self.fbuf.has_partial() {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server hung up inside a push frame",
                        )));
                    }
                    // A drained, cleanly closed stream has nothing pending
                    // and never will; surface that as the hang-up error the
                    // next recv would produce.
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server hung up",
                    )));
                }
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Deregisters the subscription and converts the connection back into a
    /// request/response [`Client`], discarding pushes still in flight (the
    /// server guarantees nothing follows its acknowledgement).
    pub fn unsubscribe(mut self) -> Result<Client, ClientError> {
        write_frame(
            &mut self.writer,
            &frame_message(|buf| Request::Unsubscribe.encode_into(buf)),
        )?;
        self.set_nonblocking(false)?;
        loop {
            let frame = loop {
                if let Some(payload) = self.fbuf.next_frame()? {
                    break payload;
                }
                match self.fbuf.fill_from(&mut self.stream) {
                    Ok(0) => {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server hung up before acknowledging unsubscribe",
                        )))
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            };
            match Response::decode(&frame)? {
                Response::Push { .. } => continue, // in flight before the ack
                Response::Unsubscribed => break,
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => {
                    return Err(ClientError::Protocol(
                        "unexpected frame while unsubscribing",
                    ))
                }
            }
        }
        // Nothing follows the acknowledgement until the next request, so the
        // frame buffer is empty and the plain buffered reader can take over.
        Ok(Client {
            reader: BufReader::new(self.stream.try_clone()?),
            writer: self.writer,
            config: self.config,
        })
    }
}

impl Iterator for Subscription {
    type Item = Result<PushBatch, ClientError>;

    /// Blocks for the next push; `None` when the server hangs up cleanly.
    fn next(&mut self) -> Option<Self::Item> {
        self.recv().transpose()
    }
}

/// A client-side mirror of the served story sets, maintained from `Poll`
/// replies and/or subscription [`PushBatch`]es: resync snapshots rebase a
/// shard, delta suffixes advance it event by event.
///
/// After any applied batch, [`story_sets`](Mirror::story_sets) is exactly
/// the union of the per-shard story sets at the cursor's sequence numbers —
/// the same sets an in-process [`StoryView`](dyndens_shard::StoryView)
/// reader at those sequence numbers would observe (provided the server's
/// `top_k` covers each shard's full output-dense set, so resync snapshots
/// are complete). Densities are as-of each story's last event; a story whose
/// density drifts *without* crossing the output threshold emits no event, so
/// only the set membership (not every score) is guaranteed current between
/// resyncs.
#[derive(Debug, Default)]
pub struct Mirror {
    since: Vec<u64>,
    shards: Vec<BTreeMap<VertexSet, f64>>,
    events_applied: u64,
    resyncs: u64,
}

/// The old name of [`Mirror`].
#[deprecated(note = "renamed to `Mirror`; it now also applies subscription \
                     push batches")]
pub type Follower = Mirror;

impl Mirror {
    /// A mirror at the bootstrap cursor: its first batch resynchronises (or
    /// replays from sequence zero, when retention still covers it).
    pub fn new() -> Mirror {
        Mirror::default()
    }

    /// The per-shard cursor: the sequence numbers the mirror is current to.
    /// Empty until the first batch teaches it the server's shard count.
    pub fn cursor(&self) -> &[u64] {
        &self.since
    }

    /// Total [`DenseEvent`]s applied through delta suffixes so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Number of resync rebases performed so far (each one means the mirror
    /// had fallen behind a shard's delta retention, or the topology
    /// changed).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Polls `client` once and applies the reply. Returns `true` if any
    /// shard advanced.
    pub fn poll(&mut self, client: &mut Client) -> Result<bool, ClientError> {
        let (n_shards, entries) = client.poll(&self.since)?;
        self.apply(&PushBatch { n_shards, entries })
    }

    /// Applies one batch of per-shard entries — a `Poll` reply or a
    /// subscription push. Returns `true` if any shard advanced.
    pub fn apply(&mut self, batch: &PushBatch) -> Result<bool, ClientError> {
        let n_shards = batch.n_shards as usize;
        if self.since.is_empty() {
            self.since = vec![0; n_shards];
            self.shards = (0..n_shards).map(|_| BTreeMap::new()).collect();
        } else if self.since.len() != n_shards {
            // The server's topology changed under us (a shard split, or a
            // recovery into a differently-sized fleet). The server already
            // treated our stale cursor as a bootstrap cursor, so the entries
            // in this very batch rebase every slot: drop the old mirror and
            // apply them against a fresh one.
            self.since = vec![0; n_shards];
            self.shards = (0..n_shards).map(|_| BTreeMap::new()).collect();
            self.resyncs += 1;
        }
        let advanced = !batch.entries.is_empty();
        for entry in &batch.entries {
            let shard = entry.shard() as usize;
            if shard >= self.shards.len() {
                return Err(ClientError::Protocol("poll entry for unknown shard"));
            }
            match entry {
                ShardPoll::Resync {
                    seq, stories: set, ..
                } => {
                    self.shards[shard] = set.iter().cloned().collect();
                    self.since[shard] = *seq;
                    self.resyncs += 1;
                }
                ShardPoll::Deltas {
                    from_seq,
                    to_seq,
                    events,
                    ..
                } => {
                    if *from_seq != self.since[shard] {
                        return Err(ClientError::Protocol(
                            "delta suffix does not start at the cursor",
                        ));
                    }
                    self.events_applied += events.len() as u64;
                    for event in events {
                        apply_event(&mut self.shards[shard], event);
                    }
                    self.since[shard] = *to_seq;
                }
            }
        }
        Ok(advanced)
    }

    /// The mirrored story sets, union over shards, ordered by vertex set.
    pub fn story_sets(&self) -> Vec<(VertexSet, f64)> {
        let mut out: Vec<(VertexSet, f64)> = self
            .shards
            .iter()
            .flat_map(|m| m.iter().map(|(s, d)| (s.clone(), *d)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The mirrored vertex sets only, ordered.
    pub fn vertex_sets(&self) -> Vec<VertexSet> {
        self.story_sets().into_iter().map(|(s, _)| s).collect()
    }
}

fn apply_event(set: &mut BTreeMap<VertexSet, f64>, event: &DenseEvent) {
    match event {
        DenseEvent::BecameOutputDense { vertices, density } => {
            set.insert(vertices.clone(), *density);
        }
        DenseEvent::NoLongerOutputDense { vertices, .. } => {
            set.remove(vertices);
        }
    }
}
