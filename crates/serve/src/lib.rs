//! # dyndens-serve
//!
//! Network serving for DynDens stories: a hand-rolled, std-only wire
//! protocol (the build environment has no crates.io access) that exposes the
//! sharded subsystem's [`StoryView`](dyndens_shard::StoryView) to
//! out-of-process readers, completing the paper's pipeline — *real-time
//! story identification served to readers* — beyond the maintenance-only
//! scope of related dynamic-density systems.
//!
//! ## Architecture
//!
//! ```text
//!   ingest process                           serving clients
//!  ┌─────────────────────────────────┐      ┌─────────────────────┐
//!  │ ShardedStoryPipeline            │      │ serve::Client       │
//!  │   shard workers ──► epoch       │ TCP  │   TopK/Poll/Stats   │
//!  │   cells + delta rings           ├──────┤ serve::Subscription │
//!  │     │ publish wakes the loops   │      │   pushed deltas     │
//!  │     ▼                           │      │ serve::Mirror       │
//!  │ serve::StoryServer              │      │   (delta-applied    │
//!  │   event loops over a Poller,    │      │    story mirror)    │
//!  │   bounded write queues          │      └─────────────────────┘
//!  └─────────────────────────────────┘
//! ```
//!
//! The server multiplexes every connection onto a small fixed pool of
//! readiness event loops ([`ServeMode::EventLoop`], the default on unix; a
//! portable thread-per-connection [`ServeMode::Threaded`] fallback remains).
//! Request types are chosen around what the epoch-pointer design makes
//! cheap:
//!
//! * [`Request::TopK`] — the merged current stories, densest first, with
//!   entity names when the server has a [`NameTable`].
//! * [`Request::Poll`] — the incremental pull: the client sends its
//!   per-shard sequence cursor; the server answers — after one atomic load
//!   per shard — with entries only for shards that advanced, each carrying
//!   the exact [`DenseEvent`](dyndens_core::DenseEvent) suffix since the
//!   cursor (or a resync snapshot once the client fell behind the shard's
//!   delta retention). No long-polling, no per-client server state.
//! * [`Request::Subscribe`] — the push registration: the server remembers
//!   the cursor and fans a `Push` frame out to every subscriber the moment a
//!   shard publishes, one encode per distinct cursor per event loop. Slow
//!   subscribers are evicted with a typed
//!   [`ErrorCode::SlowConsumer`] severance once their bounded write queue
//!   overflows.
//! * [`Request::Stats`] / [`Request::Metrics`] — the merged
//!   [`EngineStats`](dyndens_core::EngineStats) work ledger, per-shard
//!   serving health, and the full observability registry over the wire.
//!
//! Framing reuses the WAL's `len | crc32 | payload` records
//! ([`dyndens_graph::codec::put_frame`]); message payloads are versioned.
//! The normative byte-level specification is `docs/PROTOCOL.md` at the
//! repository root; `ARCHITECTURE.md` places this crate among the other
//! subsystems.
//!
//! ## Quick start
//!
//! ```
//! use dyndens_core::DynDensConfig;
//! use dyndens_density::AvgWeight;
//! use dyndens_graph::{EdgeUpdate, VertexId};
//! use dyndens_shard::{ShardConfig, ShardedDynDens};
//! use dyndens_serve::{Client, Mirror, StoryServer};
//!
//! let mut fleet = ShardedDynDens::new(AvgWeight, DynDensConfig::new(1.0, 4), ShardConfig::new(2));
//! let server = StoryServer::builder(fleet.view())
//!     .workers(1)
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//!
//! fleet.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), 1.5));
//! fleet.flush();
//!
//! // Pull mode: poll with a cursor whenever it suits the reader.
//! let mut client = Client::builder().connect(server.local_addr()).unwrap();
//! let mut mirror = Mirror::new();
//! mirror.poll(&mut client).unwrap();
//! assert_eq!(mirror.vertex_sets().len(), 1);
//!
//! // Push mode: subscribe once, receive deltas as shards publish.
//! let client = Client::builder().connect(server.local_addr()).unwrap();
//! let mut sub = client.subscribe(&[]).unwrap();
//! let mut mirror = Mirror::new();
//! let batch = sub.recv().unwrap().expect("catch-up push");
//! mirror.apply(&batch).unwrap();
//! assert_eq!(mirror.vertex_sets().len(), 1);
//! let _client = sub.unsubscribe().unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
mod evented;
pub mod net;
mod poller;
pub mod protocol;
pub mod server;

#[allow(deprecated)]
pub use client::Follower;
pub use client::{
    Client, ClientBuilder, ClientError, Mirror, PushBatch, ResyncPolicy, Subscription,
};
pub use protocol::{
    DecodeFailure, ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat, WireStory,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{NameTable, ServeMode, ServerBuilder, StoryServer};

// Send/Sync audit: server state is shared across the accept thread and the
// event loops, and clients/subscriptions are handed to worker threads in the
// benchmarks.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StoryServer>();
    assert_send_sync::<NameTable>();
    const fn assert_send<T: Send>() {}
    assert_send::<Client>();
    assert_send::<Subscription>();
    assert_send::<Mirror>();
};
