//! # dyndens-serve
//!
//! Network serving for DynDens stories: a hand-rolled, std-only wire
//! protocol (the build environment has no crates.io access) that exposes the
//! sharded subsystem's [`StoryView`](dyndens_shard::StoryView) to
//! out-of-process readers, completing
//! the paper's pipeline — *real-time story identification served to
//! readers* — beyond the maintenance-only scope of related dynamic-density
//! systems.
//!
//! ## Architecture
//!
//! ```text
//!   ingest process                         serving clients
//!  ┌───────────────────────────────┐      ┌───────────────────┐
//!  │ ShardedStoryPipeline          │      │ serve::Client     │
//!  │   shard workers ──► epoch     │ TCP  │   TopK / Poll /   │
//!  │   cells + delta rings         ├──────┤   Stats           │
//!  │ serve::StoryServer            │      │ serve::Follower   │
//!  │   (reads StoryView, never     │      │   (delta-applied  │
//!  │    blocks ingest)             │      │    story mirror)  │
//!  └───────────────────────────────┘      └───────────────────┘
//! ```
//!
//! Three request types, chosen around what the epoch-pointer design makes
//! cheap:
//!
//! * [`Request::TopK`] — the merged current stories, densest first, with
//!   entity names when the server has a [`NameTable`].
//! * [`Request::Poll`] — the incremental read: the client sends its
//!   per-shard sequence cursor; the server answers — after one atomic load
//!   per shard — with entries only for shards that advanced, each carrying
//!   the exact [`DenseEvent`](dyndens_core::DenseEvent) suffix since the
//!   cursor (or a resync snapshot once the client fell behind the shard's
//!   delta retention). No long-polling, no per-client server state.
//! * [`Request::Stats`] — the merged
//!   [`EngineStats`](dyndens_core::EngineStats) work ledger plus per-shard
//!   seq/retention health.
//!
//! Framing reuses the WAL's `len | crc32 | payload` records
//! ([`dyndens_graph::codec::put_frame`]); message payloads are versioned.
//! The normative byte-level specification is `docs/PROTOCOL.md` at the
//! repository root; `ARCHITECTURE.md` places this crate among the other
//! subsystems.
//!
//! ## Quick start
//!
//! ```
//! use dyndens_core::DynDensConfig;
//! use dyndens_density::AvgWeight;
//! use dyndens_graph::{EdgeUpdate, VertexId};
//! use dyndens_shard::{ShardConfig, ShardedDynDens};
//! use dyndens_serve::{Client, Follower, StoryServer};
//!
//! let mut fleet = ShardedDynDens::new(AvgWeight, DynDensConfig::new(1.0, 4), ShardConfig::new(2));
//! let server = StoryServer::bind("127.0.0.1:0", fleet.view()).unwrap();
//!
//! fleet.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), 1.5));
//! fleet.flush();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let mut follower = Follower::new();
//! follower.poll(&mut client).unwrap();
//! assert_eq!(follower.vertex_sets().len(), 1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Follower};
pub use protocol::{
    DecodeFailure, ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat, WireStory,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{NameTable, StoryServer};

// Send/Sync audit: server state is shared across the accept and connection
// threads, and clients are handed to worker threads in the benchmarks.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StoryServer>();
    assert_send_sync::<NameTable>();
    const fn assert_send<T: Send>() {}
    assert_send::<Client>();
    assert_send::<Follower>();
};
