//! The story server: a std-only TCP front-end over a [`StoryView`].
//!
//! Two backends behind one [`ServerBuilder`]:
//!
//! - [`ServeMode::EventLoop`] (the default on unix): a readiness event loop
//!   multiplexing every connection onto a small fixed worker pool, with
//!   non-blocking per-connection read/write state machines, bounded write
//!   queues with slow-reader eviction, and protocol-v3 push subscriptions
//!   fanning `DeltaRing` micro-batches out to every subscriber the moment a
//!   shard publishes (see the `evented` module).
//! - [`ServeMode::Threaded`]: one accept thread plus one thread per
//!   connection — the portable fallback, still the right shape when fan-in
//!   is a bounded set of edge caches. It serves the request/response
//!   protocol but answers `Subscribe` with a typed `Unsupported` error.
//!
//! All request handling is read-only over the shards' published epochs, so a
//! server never blocks ingest for more than an epoch-pointer clone.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use dyndens_obs::{names, Counter, Histogram, ObsEvent, ObsHandle};
use dyndens_shard::{DeltaCatchUp, StoryView};

use crate::net::{read_frame, write_frame};
use crate::protocol::{
    frame_message, DecodeFailure, ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat,
    WireStory,
};

/// A shared, swappable vertex → entity-name table.
///
/// The ingest process owns the entity registry and its growth; a serving
/// thread only ever needs a recent snapshot of it. `publish` swaps in a new
/// snapshot (cheap: one `Arc` store), `load` grabs the current one. A server
/// with an empty table serves unnamed, vertex-level stories.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Arc<Mutex<Arc<Vec<String>>>>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Swaps in a new snapshot of names, indexed by vertex id.
    pub fn publish(&self, names: Vec<String>) {
        *self.names.lock().expect("name table poisoned") = Arc::new(names);
    }

    /// The current snapshot.
    pub fn load(&self) -> Arc<Vec<String>> {
        self.names.lock().expect("name table poisoned").clone()
    }
}

/// The request kinds the per-type serving metrics are labelled with, in
/// [`request_kind`] index order. `error` is the pseudo-kind for frames whose
/// payload failed to decode into any request.
pub(crate) const REQUEST_KINDS: &[&str] = &[
    "top_k",
    "poll",
    "stats",
    "metrics",
    "subscribe",
    "unsubscribe",
    "error",
];
pub(crate) const REQ_SUBSCRIBE: usize = 4;
pub(crate) const REQ_UNSUBSCRIBE: usize = 5;
pub(crate) const REQ_ERROR: usize = 6;

pub(crate) fn request_kind(request: &Request) -> usize {
    match request {
        Request::TopK { .. } => 0,
        Request::Poll { .. } => 1,
        Request::Stats => 2,
        Request::Metrics => 3,
        Request::Subscribe { .. } => 4,
        Request::Unsubscribe => 5,
    }
}

/// State shared between the accept thread, the serving threads or event
/// loops, and the facade.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) view: StoryView,
    pub(crate) names: NameTable,
    pub(crate) shutdown: AtomicBool,
    /// Clones of live connection sockets (threaded mode only),
    /// slot-allocated so shutdown can sever blocked readers. A connection
    /// clears its slot when it ends (and the slot is reused), so the table —
    /// and the duplicated file descriptors it holds — stays bounded by the
    /// number of *live* connections, not the number ever accepted.
    conns: Mutex<Vec<Option<TcpStream>>>,
    /// Live connections across both modes; the accept guard that enforces
    /// `max_connections`.
    pub(crate) live_conns: AtomicUsize,
    /// Hard accept bound: a connection beyond it is counted rejected and
    /// closed without a thread, a slot or a handshake.
    pub(crate) max_connections: usize,
    /// Per-connection write-queue bound, bytes (event-loop mode); a
    /// connection whose queued-but-unsent bytes would exceed it is evicted
    /// as a slow reader.
    pub(crate) write_queue_bytes: usize,
    /// Currently registered push subscribers (event-loop mode).
    pub(crate) subscribers: AtomicU64,
    /// The [`ServeStats`] cells. `Arc`'d so an enabled registry reads the
    /// very same cells through its adopted counter series — the serving hot
    /// path never double-counts.
    pub(crate) requests_served: Arc<AtomicU64>,
    pub(crate) conns_accepted: Arc<AtomicU64>,
    pub(crate) conns_severed: Arc<AtomicU64>,
    pub(crate) resyncs_served: Arc<AtomicU64>,
    pub(crate) error_replies: Arc<AtomicU64>,
    pub(crate) conns_rejected: Arc<AtomicU64>,
    pub(crate) pushes_sent: Arc<AtomicU64>,
    pub(crate) slow_evictions: Arc<AtomicU64>,
    pub(crate) obs: ObsHandle,
    /// Pre-registered per-request-type `(requests, latency)` handles,
    /// indexed like [`REQUEST_KINDS`]; present iff `obs` is enabled.
    pub(crate) req_obs: Option<Vec<(Counter, Histogram)>>,
}

impl Shared {
    pub(crate) fn serve_stats(&self) -> ServeStats {
        ServeStats {
            requests_served: self.requests_served.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_severed: self.conns_severed.load(Ordering::Relaxed),
            resyncs_served: self.resyncs_served.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            pushes_sent: self.pushes_sent.load(Ordering::Relaxed),
            slow_evictions: self.slow_evictions.load(Ordering::Relaxed),
        }
    }

    /// Applies the accept-time admission policy: under the bound, the
    /// connection is counted live and assigned an id; at the bound it is
    /// counted rejected and the caller must drop it.
    pub(crate) fn admit(&self) -> Option<u64> {
        if self.live_conns.load(Ordering::Relaxed) >= self.max_connections {
            self.conns_rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.live_conns.fetch_add(1, Ordering::Relaxed);
        let conn_id = self.conns_accepted.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(registry) = self.obs.registry() {
            registry.emit(ObsEvent::ConnAccepted { conn: conn_id });
        }
        Some(conn_id)
    }

    /// Registers a live connection's socket clone, returning its slot
    /// (threaded mode).
    fn register(&self, conn: TcpStream) -> usize {
        let mut conns = self.conns.lock().expect("conn table poisoned");
        match conns.iter_mut().position(|slot| slot.is_none()) {
            Some(slot) => {
                conns[slot] = Some(conn);
                slot
            }
            None => {
                conns.push(Some(conn));
                conns.len() - 1
            }
        }
    }

    /// Releases a finished connection's slot (closing the clone).
    fn unregister(&self, slot: usize) {
        self.conns.lock().expect("conn table poisoned")[slot] = None;
    }
}

/// Which serving backend a [`ServerBuilder`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Readiness event loop on a fixed worker pool: non-blocking
    /// connections, bounded write queues, push subscriptions. Unix only.
    EventLoop,
    /// One thread per connection: portable, no subscriptions (a `Subscribe`
    /// is answered with [`ErrorCode::Unsupported`]).
    Threaded,
}

impl ServeMode {
    /// The best mode for the build target: [`ServeMode::EventLoop`] on unix,
    /// [`ServeMode::Threaded`] elsewhere.
    pub fn default_for_target() -> ServeMode {
        if cfg!(unix) {
            ServeMode::EventLoop
        } else {
            ServeMode::Threaded
        }
    }
}

/// Configures and binds a [`StoryServer`]: serving mode, worker count,
/// connection bound, write-queue bound and instrumentation in one place.
///
/// ```no_run
/// # use dyndens_serve::StoryServer;
/// # fn view() -> dyndens_shard::StoryView { unimplemented!() }
/// let server = StoryServer::builder(view())
///     .workers(2)
///     .max_connections(10_000)
///     .write_queue_bytes(1 << 20)
///     .bind("127.0.0.1:0")
///     .unwrap();
/// # drop(server);
/// ```
#[derive(Debug)]
pub struct ServerBuilder {
    view: StoryView,
    obs: ObsHandle,
    mode: ServeMode,
    workers: usize,
    max_connections: usize,
    write_queue_bytes: usize,
}

impl ServerBuilder {
    fn new(view: StoryView) -> ServerBuilder {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerBuilder {
            view,
            obs: ObsHandle::none(),
            mode: ServeMode::default_for_target(),
            workers: cores.min(4),
            max_connections: 65_536,
            write_queue_bytes: 1 << 20,
        }
    }

    /// Instruments the server: its connection/request/push counters become
    /// registry series (adopting the very cells `Stats` replies read, so the
    /// two surfaces can never disagree), request types get latency
    /// histograms, and connection lifecycle, resyncs and subscription events
    /// are journalled. The registry is also what a [`Request::Metrics`]
    /// against this server snapshots.
    pub fn obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the serving backend. Defaults to
    /// [`ServeMode::default_for_target`].
    pub fn mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Event-loop worker threads (clamped to at least 1). Defaults to the
    /// machine's available parallelism, capped at 4 — fan-out is
    /// I/O-bound, not compute-bound. Ignored in threaded mode.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Hard accept bound on simultaneous connections (both modes); beyond
    /// it, new connections are counted rejected and closed immediately.
    /// Defaults to 65 536.
    pub fn max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Per-connection write-queue bound in bytes (event-loop mode). A
    /// connection whose unsent backlog would exceed it is evicted as a slow
    /// reader: queued frames are dropped, a final typed
    /// [`ErrorCode::SlowConsumer`] error is sent, and the connection is
    /// closed. Defaults to 1 MiB.
    pub fn write_queue_bytes(mut self, bytes: usize) -> Self {
        self.write_queue_bytes = bytes.max(1024);
        self
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<StoryServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let requests_served = Arc::new(AtomicU64::new(0));
        let conns_accepted = Arc::new(AtomicU64::new(0));
        let conns_severed = Arc::new(AtomicU64::new(0));
        let resyncs_served = Arc::new(AtomicU64::new(0));
        let error_replies = Arc::new(AtomicU64::new(0));
        let conns_rejected = Arc::new(AtomicU64::new(0));
        let pushes_sent = Arc::new(AtomicU64::new(0));
        let slow_evictions = Arc::new(AtomicU64::new(0));
        let req_obs = self.obs.registry().map(|registry| {
            for (name, cell) in [
                (names::SERVE_CONNS_ACCEPTED_TOTAL, &conns_accepted),
                (names::SERVE_CONNS_SEVERED_TOTAL, &conns_severed),
                (names::SERVE_RESYNCS_TOTAL, &resyncs_served),
                (names::SERVE_ERROR_REPLIES_TOTAL, &error_replies),
                (names::SERVE_CONNS_REJECTED_TOTAL, &conns_rejected),
                (names::SERVE_PUSHES_TOTAL, &pushes_sent),
                (names::SERVE_SLOW_EVICTIONS_TOTAL, &slow_evictions),
            ] {
                registry.adopt_counter(name, &[], Arc::clone(cell));
            }
            REQUEST_KINDS
                .iter()
                .map(|kind| {
                    let labels: &[(&str, &str)] = &[("type", kind)];
                    (
                        registry.counter(names::SERVE_REQUESTS_TOTAL, labels),
                        registry.histogram(names::SERVE_REQUEST_LATENCY_US, labels),
                    )
                })
                .collect()
        });
        let shared = Arc::new(Shared {
            view: self.view,
            names: NameTable::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            live_conns: AtomicUsize::new(0),
            max_connections: self.max_connections,
            write_queue_bytes: self.write_queue_bytes,
            subscribers: AtomicU64::new(0),
            requests_served,
            conns_accepted,
            conns_severed,
            resyncs_served,
            error_replies,
            conns_rejected,
            pushes_sent,
            slow_evictions,
            obs: self.obs,
            req_obs,
        });
        let backend = match self.mode {
            ServeMode::Threaded => {
                let conn_threads = Arc::new(Mutex::new(Vec::new()));
                let accept_shared = Arc::clone(&shared);
                let accept_threads = Arc::clone(&conn_threads);
                let accept = std::thread::Builder::new()
                    .name("dyndens-serve-accept".into())
                    .spawn(move || accept_loop(listener, accept_shared, accept_threads))?;
                Backend::Threaded {
                    accept: Some(accept),
                    conn_threads,
                }
            }
            ServeMode::EventLoop => {
                #[cfg(unix)]
                {
                    Backend::Evented(crate::evented::EventedBackend::start(
                        listener,
                        Arc::clone(&shared),
                        self.workers,
                    )?)
                }
                #[cfg(not(unix))]
                {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the event-loop server mode requires a unix target; \
                         use ServeMode::Threaded",
                    ));
                }
            }
        };
        Ok(StoryServer {
            local_addr,
            shared,
            backend,
        })
    }
}

#[derive(Debug)]
enum Backend {
    Threaded {
        accept: Option<JoinHandle<()>>,
        /// Handles of spawned connection threads; finished ones are *joined*
        /// (not just dropped) on each accept, so the list is bounded by live
        /// connections and no thread outlives the facade unobserved.
        conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    #[cfg(unix)]
    Evented(crate::evented::EventedBackend),
}

/// A running story server. Dropping it stops the accept loop, severs open
/// connections and joins every serving thread before returning.
#[derive(Debug)]
pub struct StoryServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    backend: Backend,
}

impl StoryServer {
    /// Starts configuring a server over `view`; see [`ServerBuilder`].
    pub fn builder(view: StoryView) -> ServerBuilder {
        ServerBuilder::new(view)
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `view` with default settings ([`ServeMode::default_for_target`], no
    /// instrumentation). The returned server's [`names`](StoryServer::names)
    /// table starts empty; publish the ingest side's entity names into it to
    /// serve named stories.
    pub fn bind(addr: impl ToSocketAddrs, view: StoryView) -> io::Result<StoryServer> {
        Self::builder(view).bind(addr)
    }

    /// Like [`bind`](StoryServer::bind), but instrumented; shorthand for
    /// `builder(view).obs(obs).bind(addr)`.
    pub fn bind_with_obs(
        addr: impl ToSocketAddrs,
        view: StoryView,
        obs: ObsHandle,
    ) -> io::Result<StoryServer> {
        Self::builder(view).obs(obs).bind(addr)
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's entity-name table. Publish the ingest side's names into
    /// it (periodically, or whenever new entities are interned) to serve
    /// named stories.
    pub fn names(&self) -> NameTable {
        self.shared.names.clone()
    }

    /// Number of requests answered since the server started (all request
    /// types, including error replies; pushes are not requests).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests_served.load(Ordering::Relaxed)
    }

    /// The serving-layer counters, as a [`Request::Stats`] reply would
    /// carry them.
    pub fn serve_stats(&self) -> ServeStats {
        self.shared.serve_stats()
    }

    /// Currently registered push subscribers (always 0 in threaded mode).
    pub fn subscribers(&self) -> u64 {
        self.shared.subscribers.load(Ordering::Relaxed)
    }

    /// Live connections right now (accepted minus closed).
    pub fn live_connections(&self) -> usize {
        self.shared.live_conns.load(Ordering::Relaxed)
    }
}

impl Drop for StoryServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        match &mut self.backend {
            Backend::Threaded {
                accept,
                conn_threads,
            } => {
                if let Some(handle) = accept.take() {
                    let _ = handle.join();
                }
                // Sever live connections (readers blocked on a socket fail
                // fast), then join their threads: after drop, no serving
                // thread touches the view or the name table again.
                for conn in self
                    .shared
                    .conns
                    .lock()
                    .expect("conn table poisoned")
                    .iter()
                    .flatten()
                {
                    let _ = conn.shutdown(Shutdown::Both);
                }
                for handle in conn_threads.lock().expect("thread list poisoned").drain(..) {
                    let _ = handle.join();
                }
            }
            #[cfg(unix)]
            Backend::Evented(backend) => backend.shutdown(),
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Some(conn_id) = shared.admit() else {
            // At the connection bound: close without a thread or a slot.
            continue;
        };
        let _ = stream.set_nodelay(true);
        let slot = match stream.try_clone() {
            Ok(clone) => Some(shared.register(clone)),
            Err(_) => None,
        };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dyndens-serve-conn".into())
            .spawn(move || {
                let result = serve_connection(stream, &conn_shared);
                // A clean peer hang-up returns Ok; an Err is a severed
                // stream (CRC desync, reset, mid-frame EOF) — unless we are
                // the ones tearing the socket down at shutdown.
                if result.is_err() && !conn_shared.shutdown.load(Ordering::SeqCst) {
                    conn_shared.conns_severed.fetch_add(1, Ordering::Relaxed);
                    if let Some(registry) = conn_shared.obs.registry() {
                        registry.emit(ObsEvent::ConnSevered { conn: conn_id });
                    }
                }
                if let Some(slot) = slot {
                    conn_shared.unregister(slot);
                }
                conn_shared.live_conns.fetch_sub(1, Ordering::Relaxed);
            });
        match handle {
            Ok(handle) => {
                let mut threads = conn_threads.lock().expect("thread list poisoned");
                // Join finished threads (cheap: they have already returned)
                // so the handle list is bounded by live connections and
                // every thread is observed, not leaked at the OS layer
                // until process exit.
                let mut i = 0;
                while i < threads.len() {
                    if threads[i].is_finished() {
                        let finished = threads.swap_remove(i);
                        let _ = finished.join();
                    } else {
                        i += 1;
                    }
                }
                threads.push(handle);
            }
            Err(_) => {
                // Spawn failed: the closure never ran, so the live count is
                // still ours to release.
                shared.live_conns.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Reads framed requests until the peer hangs up, the stream desynchronises
/// (CRC/framing error) or the server shuts down.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let response = process_request(&payload, shared);
        write_frame(&mut writer, &frame_message(|buf| response.encode_into(buf)))?;
    }
    Ok(())
}

/// Decodes one request payload and answers it, maintaining the request
/// counters and per-type latency metrics. Both backends route plain
/// request/response traffic through here; the evented backend intercepts
/// `Subscribe`/`Unsubscribe` before calling it.
pub(crate) fn process_request(payload: &[u8], shared: &Shared) -> Response {
    let started = shared.req_obs.is_some().then(Instant::now);
    let (kind, response) = match Request::decode(payload) {
        Ok(request) => (request_kind(&request), handle_request(&request, shared)),
        // An intact frame with an undecodable payload: the stream is
        // still synchronised, so report the problem and keep serving.
        Err(failure) => (REQ_ERROR, error_response(&failure)),
    };
    if matches!(response, Response::Error { .. }) {
        shared.error_replies.fetch_add(1, Ordering::Relaxed);
    }
    shared.requests_served.fetch_add(1, Ordering::Relaxed);
    if let (Some(req_obs), Some(started)) = (shared.req_obs.as_ref(), started) {
        let (requests, latency) = &req_obs[kind];
        requests.inc();
        latency.record_micros(started.elapsed());
    }
    response
}

pub(crate) fn error_response(failure: &DecodeFailure) -> Response {
    let code = match failure {
        DecodeFailure::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
        DecodeFailure::UnknownTag(_) => ErrorCode::UnknownTag,
        DecodeFailure::Malformed(_) => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        message: failure.to_string(),
    }
}

/// Builds the poll entries for every shard past `since` (shared by the
/// `Poll` handler and the push fan-out): deltas when retention covers the
/// cursor, a resync snapshot when it does not. Advances `cursor[shard]` to
/// the sequence each entry catches the reader up to and maintains the resync
/// counter and journal.
pub(crate) fn poll_entries(shared: &Shared, cursor: &mut [u64]) -> Vec<ShardPoll> {
    let view = &shared.view;
    let mut entries = Vec::new();
    for (shard, slot) in cursor.iter_mut().enumerate() {
        let since_seq = *slot;
        // The cheap path: one atomic load decides whether the shard has
        // anything at all for this reader.
        if view.shard_seq(shard) <= since_seq {
            continue;
        }
        match view.deltas_since(shard, since_seq) {
            DeltaCatchUp::Current => {}
            DeltaCatchUp::Events { to_seq, events } => {
                entries.push(ShardPoll::Deltas {
                    shard: shard as u32,
                    from_seq: since_seq,
                    to_seq,
                    events,
                });
                *slot = to_seq;
            }
            DeltaCatchUp::Resync => {
                shared.resyncs_served.fetch_add(1, Ordering::Relaxed);
                if let Some(registry) = shared.obs.registry() {
                    registry.emit(ObsEvent::PollResync {
                        shard: shard as u32,
                    });
                }
                let snapshot = view.shard_snapshot(shard);
                entries.push(ShardPoll::Resync {
                    shard: shard as u32,
                    seq: snapshot.seq,
                    stories: snapshot.top_stories.clone(),
                });
                *slot = snapshot.seq;
            }
        }
    }
    entries
}

/// Answers one request against the view's current epochs.
pub(crate) fn handle_request(request: &Request, shared: &Shared) -> Response {
    let view = &shared.view;
    match request {
        Request::TopK { k } => {
            let merged = view.snapshot();
            let names = shared.names.load();
            let stories = merged
                .stories
                .into_iter()
                .take(*k as usize)
                .map(|(vertices, density)| {
                    let entities = if names.is_empty() {
                        Vec::new()
                    } else {
                        vertices
                            .iter()
                            .map(|v| {
                                names
                                    .get(v.index())
                                    .cloned()
                                    .unwrap_or_else(|| format!("entity#{v}"))
                            })
                            .collect()
                    };
                    WireStory {
                        vertices,
                        density,
                        entities,
                    }
                })
                .collect();
            Response::Stories {
                per_shard_seq: merged.per_shard_seq,
                stories,
            }
        }
        Request::Poll { since } => {
            let n_shards = view.n_shards();
            // A cursor whose length disagrees with the current topology is a
            // reader from before a shard split (or from another deployment):
            // treat it as the bootstrap cursor. The reply's `n_shards` tells
            // the client the new topology and its per-shard entries rebase
            // every slot — the clean-resync path pollers take after a split,
            // with no error round-trip.
            let mut cursor = if since.len() == n_shards {
                since.clone()
            } else {
                vec![0; n_shards]
            };
            let entries = poll_entries(shared, &mut cursor);
            Response::Poll {
                n_shards: n_shards as u32,
                entries,
            }
        }
        Request::Stats => {
            let stats = view.stats();
            let shards = (0..view.n_shards())
                .map(|shard| {
                    let snapshot = view.shard_snapshot(shard);
                    ShardStat {
                        shard: shard as u32,
                        seq: snapshot.seq,
                        output_dense: snapshot.output_dense as u64,
                        delta_coverage_from: view.delta_coverage_from(shard),
                    }
                })
                .collect();
            Response::Stats {
                stats,
                serve: shared.serve_stats(),
                shards,
            }
        }
        Request::Metrics => Response::Metrics {
            registry: shared
                .obs
                .registry()
                .map(|registry| registry.snapshot())
                .unwrap_or_default(),
        },
        // The threaded backend has no fan-out machinery; the evented backend
        // intercepts these before reaching here.
        Request::Subscribe { .. } | Request::Unsubscribe => Response::Error {
            code: ErrorCode::Unsupported,
            message: "push subscriptions require the event-loop server mode".to_string(),
        },
    }
}
