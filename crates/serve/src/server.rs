//! The story server: a std-only TCP front-end over a [`StoryView`].
//!
//! One accept thread plus one thread per connection — the right shape for a
//! serving tier whose fan-in is a bounded set of edge caches or API
//! processes, and the simplest thing that exercises the protocol end to end.
//! All request handling is read-only over the shards' published epochs, so a
//! server never blocks ingest for more than an epoch-pointer clone.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use dyndens_obs::{names, Counter, Histogram, ObsEvent, ObsHandle};
use dyndens_shard::{DeltaCatchUp, StoryView};

use crate::net::{read_frame, write_frame};
use crate::protocol::{
    frame_message, DecodeFailure, ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat,
    WireStory,
};

/// A shared, swappable vertex → entity-name table.
///
/// The ingest process owns the entity registry and its growth; a serving
/// thread only ever needs a recent snapshot of it. `publish` swaps in a new
/// snapshot (cheap: one `Arc` store), `load` grabs the current one. A server
/// with an empty table serves unnamed, vertex-level stories.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Arc<Mutex<Arc<Vec<String>>>>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Swaps in a new snapshot of names, indexed by vertex id.
    pub fn publish(&self, names: Vec<String>) {
        *self.names.lock().expect("name table poisoned") = Arc::new(names);
    }

    /// The current snapshot.
    pub fn load(&self) -> Arc<Vec<String>> {
        self.names.lock().expect("name table poisoned").clone()
    }
}

/// The request kinds the per-type serving metrics are labelled with, in
/// [`request_kind`] index order. `error` is the pseudo-kind for frames whose
/// payload failed to decode into any request.
const REQUEST_KINDS: &[&str] = &["top_k", "poll", "stats", "metrics", "error"];
const REQ_ERROR: usize = 4;

fn request_kind(request: &Request) -> usize {
    match request {
        Request::TopK { .. } => 0,
        Request::Poll { .. } => 1,
        Request::Stats => 2,
        Request::Metrics => 3,
    }
}

/// State shared between the accept thread, connection threads and the facade.
#[derive(Debug)]
struct Shared {
    view: StoryView,
    names: NameTable,
    shutdown: AtomicBool,
    /// Clones of live connection sockets, slot-allocated so shutdown can
    /// sever blocked readers. A connection clears its slot when it ends
    /// (and the slot is reused), so the table — and the duplicated file
    /// descriptors it holds — stays bounded by the number of *live*
    /// connections, not the number ever accepted.
    conns: Mutex<Vec<Option<TcpStream>>>,
    /// The [`ServeStats`] cells. `Arc`'d so an enabled registry reads the
    /// very same cells through its adopted counter series — the serving hot
    /// path never double-counts.
    requests_served: Arc<AtomicU64>,
    conns_accepted: Arc<AtomicU64>,
    conns_severed: Arc<AtomicU64>,
    resyncs_served: Arc<AtomicU64>,
    error_replies: Arc<AtomicU64>,
    obs: ObsHandle,
    /// Pre-registered per-request-type `(requests, latency)` handles,
    /// indexed like [`REQUEST_KINDS`]; present iff `obs` is enabled.
    req_obs: Option<Vec<(Counter, Histogram)>>,
}

impl Shared {
    fn serve_stats(&self) -> ServeStats {
        ServeStats {
            requests_served: self.requests_served.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_severed: self.conns_severed.load(Ordering::Relaxed),
            resyncs_served: self.resyncs_served.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
        }
    }

    /// Registers a live connection's socket clone, returning its slot.
    fn register(&self, conn: TcpStream) -> usize {
        let mut conns = self.conns.lock().expect("conn table poisoned");
        match conns.iter_mut().position(|slot| slot.is_none()) {
            Some(slot) => {
                conns[slot] = Some(conn);
                slot
            }
            None => {
                conns.push(Some(conn));
                conns.len() - 1
            }
        }
    }

    /// Releases a finished connection's slot (closing the clone).
    fn unregister(&self, slot: usize) {
        self.conns.lock().expect("conn table poisoned")[slot] = None;
    }
}

/// A running story server. Dropping it stops the accept loop, severs open
/// connections and joins every serving thread before returning.
#[derive(Debug)]
pub struct StoryServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    /// Handles of spawned connection threads; finished ones are swept on
    /// each accept, so this too is bounded by live connections.
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl StoryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `view`. The returned server's [`names`](StoryServer::names) table
    /// starts empty; publish the ingest side's entity names into it to serve
    /// named stories.
    pub fn bind(addr: impl ToSocketAddrs, view: StoryView) -> io::Result<StoryServer> {
        Self::bind_with_obs(addr, view, ObsHandle::none())
    }

    /// Like [`bind`](StoryServer::bind), but instrumented: the server's
    /// connection/request/resync counters become registry series (adopting
    /// the very cells [`Response::Stats`] reads, so the two surfaces can
    /// never disagree), every request type gets a latency histogram, and
    /// connection lifecycle plus poll resyncs are journalled. The registry
    /// is also what a [`Request::Metrics`] against this server snapshots.
    pub fn bind_with_obs(
        addr: impl ToSocketAddrs,
        view: StoryView,
        obs: ObsHandle,
    ) -> io::Result<StoryServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let requests_served = Arc::new(AtomicU64::new(0));
        let conns_accepted = Arc::new(AtomicU64::new(0));
        let conns_severed = Arc::new(AtomicU64::new(0));
        let resyncs_served = Arc::new(AtomicU64::new(0));
        let error_replies = Arc::new(AtomicU64::new(0));
        let req_obs = obs.registry().map(|registry| {
            registry.adopt_counter(
                names::SERVE_CONNS_ACCEPTED_TOTAL,
                &[],
                Arc::clone(&conns_accepted),
            );
            registry.adopt_counter(
                names::SERVE_CONNS_SEVERED_TOTAL,
                &[],
                Arc::clone(&conns_severed),
            );
            registry.adopt_counter(names::SERVE_RESYNCS_TOTAL, &[], Arc::clone(&resyncs_served));
            registry.adopt_counter(
                names::SERVE_ERROR_REPLIES_TOTAL,
                &[],
                Arc::clone(&error_replies),
            );
            REQUEST_KINDS
                .iter()
                .map(|kind| {
                    let labels: &[(&str, &str)] = &[("type", kind)];
                    (
                        registry.counter(names::SERVE_REQUESTS_TOTAL, labels),
                        registry.histogram(names::SERVE_REQUEST_LATENCY_US, labels),
                    )
                })
                .collect()
        });
        let shared = Arc::new(Shared {
            view,
            names: NameTable::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            requests_served,
            conns_accepted,
            conns_severed,
            resyncs_served,
            error_replies,
            obs,
            req_obs,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_threads = Arc::clone(&conn_threads);
        let accept = std::thread::Builder::new()
            .name("dyndens-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_threads))?;
        Ok(StoryServer {
            local_addr,
            shared,
            accept: Some(accept),
            conn_threads,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's entity-name table. Publish the ingest side's names into
    /// it (periodically, or whenever new entities are interned) to serve
    /// named stories.
    pub fn names(&self) -> NameTable {
        self.shared.names.clone()
    }

    /// Number of requests answered since the server started (all request
    /// types, including error replies).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests_served.load(Ordering::Relaxed)
    }

    /// The serving-layer counters, as a [`Request::Stats`] reply would
    /// carry them.
    pub fn serve_stats(&self) -> ServeStats {
        self.shared.serve_stats()
    }
}

impl Drop for StoryServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Sever live connections (readers blocked on a socket fail fast),
        // then join their threads: after drop, no serving thread touches
        // the view or the name table again.
        for conn in self
            .shared
            .conns
            .lock()
            .expect("conn table poisoned")
            .iter()
            .flatten()
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self
            .conn_threads
            .lock()
            .expect("thread list poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let conn_id = shared.conns_accepted.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(registry) = shared.obs.registry() {
            registry.emit(ObsEvent::ConnAccepted { conn: conn_id });
        }
        let slot = match stream.try_clone() {
            Ok(clone) => Some(shared.register(clone)),
            Err(_) => None,
        };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dyndens-serve-conn".into())
            .spawn(move || {
                let result = serve_connection(stream, &conn_shared);
                // A clean peer hang-up returns Ok; an Err is a severed
                // stream (CRC desync, reset, mid-frame EOF) — unless we are
                // the ones tearing the socket down at shutdown.
                if result.is_err() && !conn_shared.shutdown.load(Ordering::SeqCst) {
                    conn_shared.conns_severed.fetch_add(1, Ordering::Relaxed);
                    if let Some(registry) = conn_shared.obs.registry() {
                        registry.emit(ObsEvent::ConnSevered { conn: conn_id });
                    }
                }
                if let Some(slot) = slot {
                    conn_shared.unregister(slot);
                }
            });
        if let Ok(handle) = handle {
            let mut threads = conn_threads.lock().expect("thread list poisoned");
            // Sweep finished threads so the handle list (like the socket
            // table) is bounded by live connections.
            threads.retain(|t| !t.is_finished());
            threads.push(handle);
        }
    }
}

/// Reads framed requests until the peer hangs up, the stream desynchronises
/// (CRC/framing error) or the server shuts down.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let started = shared.req_obs.is_some().then(Instant::now);
        let (kind, response) = match Request::decode(&payload) {
            Ok(request) => (request_kind(&request), handle_request(&request, shared)),
            // An intact frame with an undecodable payload: the stream is
            // still synchronised, so report the problem and keep serving.
            Err(failure) => (REQ_ERROR, error_response(&failure)),
        };
        if matches!(response, Response::Error { .. }) {
            shared.error_replies.fetch_add(1, Ordering::Relaxed);
        }
        shared.requests_served.fetch_add(1, Ordering::Relaxed);
        if let (Some(req_obs), Some(started)) = (shared.req_obs.as_ref(), started) {
            let (requests, latency) = &req_obs[kind];
            requests.inc();
            latency.record_micros(started.elapsed());
        }
        write_frame(&mut writer, &frame_message(|buf| response.encode_into(buf)))?;
    }
    Ok(())
}

fn error_response(failure: &DecodeFailure) -> Response {
    let code = match failure {
        DecodeFailure::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
        DecodeFailure::UnknownTag(_) => ErrorCode::UnknownTag,
        DecodeFailure::Malformed(_) => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        message: failure.to_string(),
    }
}

/// Answers one request against the view's current epochs.
fn handle_request(request: &Request, shared: &Shared) -> Response {
    let view = &shared.view;
    match request {
        Request::TopK { k } => {
            let merged = view.snapshot();
            let names = shared.names.load();
            let stories = merged
                .stories
                .into_iter()
                .take(*k as usize)
                .map(|(vertices, density)| {
                    let entities = if names.is_empty() {
                        Vec::new()
                    } else {
                        vertices
                            .iter()
                            .map(|v| {
                                names
                                    .get(v.index())
                                    .cloned()
                                    .unwrap_or_else(|| format!("entity#{v}"))
                            })
                            .collect()
                    };
                    WireStory {
                        vertices,
                        density,
                        entities,
                    }
                })
                .collect();
            Response::Stories {
                per_shard_seq: merged.per_shard_seq,
                stories,
            }
        }
        Request::Poll { since } => {
            let n_shards = view.n_shards();
            // A cursor whose length disagrees with the current topology is a
            // reader from before a shard split (or from another deployment):
            // treat it as the bootstrap cursor. The reply's `n_shards` tells
            // the client the new topology and its per-shard entries rebase
            // every slot — the clean-resync path pollers take after a split,
            // with no error round-trip.
            let since = if since.len() == n_shards {
                since.as_slice()
            } else {
                &[]
            };
            let mut entries = Vec::new();
            for shard in 0..n_shards {
                let since_seq = since.get(shard).copied().unwrap_or(0);
                // The cheap path: one atomic load decides whether the shard
                // has anything at all for this client.
                if view.shard_seq(shard) <= since_seq {
                    continue;
                }
                match view.deltas_since(shard, since_seq) {
                    DeltaCatchUp::Current => {}
                    DeltaCatchUp::Events { to_seq, events } => entries.push(ShardPoll::Deltas {
                        shard: shard as u32,
                        from_seq: since_seq,
                        to_seq,
                        events,
                    }),
                    DeltaCatchUp::Resync => {
                        shared.resyncs_served.fetch_add(1, Ordering::Relaxed);
                        if let Some(registry) = shared.obs.registry() {
                            registry.emit(ObsEvent::PollResync {
                                shard: shard as u32,
                            });
                        }
                        let snapshot = view.shard_snapshot(shard);
                        entries.push(ShardPoll::Resync {
                            shard: shard as u32,
                            seq: snapshot.seq,
                            stories: snapshot.top_stories.clone(),
                        });
                    }
                }
            }
            Response::Poll {
                n_shards: n_shards as u32,
                entries,
            }
        }
        Request::Stats => {
            let stats = view.stats();
            let shards = (0..view.n_shards())
                .map(|shard| {
                    let snapshot = view.shard_snapshot(shard);
                    ShardStat {
                        shard: shard as u32,
                        seq: snapshot.seq,
                        output_dense: snapshot.output_dense as u64,
                        delta_coverage_from: view.delta_coverage_from(shard),
                    }
                })
                .collect();
            Response::Stats {
                stats,
                serve: shared.serve_stats(),
                shards,
            }
        }
        Request::Metrics => Response::Metrics {
            registry: shared
                .obs
                .registry()
                .map(|registry| registry.snapshot())
                .unwrap_or_default(),
        },
    }
}
