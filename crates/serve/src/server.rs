//! The story server: a std-only TCP front-end over a [`StoryView`].
//!
//! One accept thread plus one thread per connection — the right shape for a
//! serving tier whose fan-in is a bounded set of edge caches or API
//! processes, and the simplest thing that exercises the protocol end to end.
//! All request handling is read-only over the shards' published epochs, so a
//! server never blocks ingest for more than an epoch-pointer clone.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dyndens_shard::{DeltaCatchUp, StoryView};

use crate::net::{read_frame, write_frame};
use crate::protocol::{
    frame_message, DecodeFailure, ErrorCode, Request, Response, ShardPoll, ShardStat, WireStory,
};

/// A shared, swappable vertex → entity-name table.
///
/// The ingest process owns the entity registry and its growth; a serving
/// thread only ever needs a recent snapshot of it. `publish` swaps in a new
/// snapshot (cheap: one `Arc` store), `load` grabs the current one. A server
/// with an empty table serves unnamed, vertex-level stories.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Arc<Mutex<Arc<Vec<String>>>>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Swaps in a new snapshot of names, indexed by vertex id.
    pub fn publish(&self, names: Vec<String>) {
        *self.names.lock().expect("name table poisoned") = Arc::new(names);
    }

    /// The current snapshot.
    pub fn load(&self) -> Arc<Vec<String>> {
        self.names.lock().expect("name table poisoned").clone()
    }
}

/// State shared between the accept thread, connection threads and the facade.
#[derive(Debug)]
struct Shared {
    view: StoryView,
    names: NameTable,
    shutdown: AtomicBool,
    /// Clones of live connection sockets, slot-allocated so shutdown can
    /// sever blocked readers. A connection clears its slot when it ends
    /// (and the slot is reused), so the table — and the duplicated file
    /// descriptors it holds — stays bounded by the number of *live*
    /// connections, not the number ever accepted.
    conns: Mutex<Vec<Option<TcpStream>>>,
    requests_served: AtomicU64,
}

impl Shared {
    /// Registers a live connection's socket clone, returning its slot.
    fn register(&self, conn: TcpStream) -> usize {
        let mut conns = self.conns.lock().expect("conn table poisoned");
        match conns.iter_mut().position(|slot| slot.is_none()) {
            Some(slot) => {
                conns[slot] = Some(conn);
                slot
            }
            None => {
                conns.push(Some(conn));
                conns.len() - 1
            }
        }
    }

    /// Releases a finished connection's slot (closing the clone).
    fn unregister(&self, slot: usize) {
        self.conns.lock().expect("conn table poisoned")[slot] = None;
    }
}

/// A running story server. Dropping it stops the accept loop, severs open
/// connections and joins every serving thread before returning.
#[derive(Debug)]
pub struct StoryServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    /// Handles of spawned connection threads; finished ones are swept on
    /// each accept, so this too is bounded by live connections.
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl StoryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `view`. The returned server's [`names`](StoryServer::names) table
    /// starts empty; publish the ingest side's entity names into it to serve
    /// named stories.
    pub fn bind(addr: impl ToSocketAddrs, view: StoryView) -> io::Result<StoryServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            view,
            names: NameTable::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            requests_served: AtomicU64::new(0),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_threads = Arc::clone(&conn_threads);
        let accept = std::thread::Builder::new()
            .name("dyndens-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_threads))?;
        Ok(StoryServer {
            local_addr,
            shared,
            accept: Some(accept),
            conn_threads,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's entity-name table. Publish the ingest side's names into
    /// it (periodically, or whenever new entities are interned) to serve
    /// named stories.
    pub fn names(&self) -> NameTable {
        self.shared.names.clone()
    }

    /// Number of requests answered since the server started (all request
    /// types, including error replies).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests_served.load(Ordering::Relaxed)
    }
}

impl Drop for StoryServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Sever live connections (readers blocked on a socket fail fast),
        // then join their threads: after drop, no serving thread touches
        // the view or the name table again.
        for conn in self
            .shared
            .conns
            .lock()
            .expect("conn table poisoned")
            .iter()
            .flatten()
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self
            .conn_threads
            .lock()
            .expect("thread list poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let slot = match stream.try_clone() {
            Ok(clone) => Some(shared.register(clone)),
            Err(_) => None,
        };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dyndens-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_shared);
                if let Some(slot) = slot {
                    conn_shared.unregister(slot);
                }
            });
        if let Ok(handle) = handle {
            let mut threads = conn_threads.lock().expect("thread list poisoned");
            // Sweep finished threads so the handle list (like the socket
            // table) is bounded by live connections.
            threads.retain(|t| !t.is_finished());
            threads.push(handle);
        }
    }
}

/// Reads framed requests until the peer hangs up, the stream desynchronises
/// (CRC/framing error) or the server shuts down.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let response = match Request::decode(&payload) {
            Ok(request) => handle_request(&request, shared),
            // An intact frame with an undecodable payload: the stream is
            // still synchronised, so report the problem and keep serving.
            Err(failure) => error_response(&failure),
        };
        shared.requests_served.fetch_add(1, Ordering::Relaxed);
        write_frame(&mut writer, &frame_message(|buf| response.encode_into(buf)))?;
    }
    Ok(())
}

fn error_response(failure: &DecodeFailure) -> Response {
    let code = match failure {
        DecodeFailure::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
        DecodeFailure::UnknownTag(_) => ErrorCode::UnknownTag,
        DecodeFailure::Malformed(_) => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        message: failure.to_string(),
    }
}

/// Answers one request against the view's current epochs.
fn handle_request(request: &Request, shared: &Shared) -> Response {
    let view = &shared.view;
    match request {
        Request::TopK { k } => {
            let merged = view.snapshot();
            let names = shared.names.load();
            let stories = merged
                .stories
                .into_iter()
                .take(*k as usize)
                .map(|(vertices, density)| {
                    let entities = if names.is_empty() {
                        Vec::new()
                    } else {
                        vertices
                            .iter()
                            .map(|v| {
                                names
                                    .get(v.index())
                                    .cloned()
                                    .unwrap_or_else(|| format!("entity#{v}"))
                            })
                            .collect()
                    };
                    WireStory {
                        vertices,
                        density,
                        entities,
                    }
                })
                .collect();
            Response::Stories {
                per_shard_seq: merged.per_shard_seq,
                stories,
            }
        }
        Request::Poll { since } => {
            let n_shards = view.n_shards();
            // A cursor whose length disagrees with the current topology is a
            // reader from before a shard split (or from another deployment):
            // treat it as the bootstrap cursor. The reply's `n_shards` tells
            // the client the new topology and its per-shard entries rebase
            // every slot — the clean-resync path pollers take after a split,
            // with no error round-trip.
            let since = if since.len() == n_shards {
                since.as_slice()
            } else {
                &[]
            };
            let mut entries = Vec::new();
            for shard in 0..n_shards {
                let since_seq = since.get(shard).copied().unwrap_or(0);
                // The cheap path: one atomic load decides whether the shard
                // has anything at all for this client.
                if view.shard_seq(shard) <= since_seq {
                    continue;
                }
                match view.deltas_since(shard, since_seq) {
                    DeltaCatchUp::Current => {}
                    DeltaCatchUp::Events { to_seq, events } => entries.push(ShardPoll::Deltas {
                        shard: shard as u32,
                        from_seq: since_seq,
                        to_seq,
                        events,
                    }),
                    DeltaCatchUp::Resync => {
                        let snapshot = view.shard_snapshot(shard);
                        entries.push(ShardPoll::Resync {
                            shard: shard as u32,
                            seq: snapshot.seq,
                            stories: snapshot.top_stories.clone(),
                        });
                    }
                }
            }
            Response::Poll {
                n_shards: n_shards as u32,
                entries,
            }
        }
        Request::Stats => {
            let stats = view.stats();
            let shards = (0..view.n_shards())
                .map(|shard| {
                    let snapshot = view.shard_snapshot(shard);
                    ShardStat {
                        shard: shard as u32,
                        seq: snapshot.seq,
                        output_dense: snapshot.output_dense as u64,
                        delta_coverage_from: view.delta_coverage_from(shard),
                    }
                })
                .collect();
            Response::Stats { stats, shards }
        }
    }
}
