//! The dyndens-serve wire protocol: message types and their binary codec.
//!
//! This module is the *implementation* of the protocol; the normative
//! specification lives in `docs/PROTOCOL.md` at the repository root and is
//! written so that a non-Rust client can be built from it alone. The two must
//! agree; the round-trip property tests in `tests/wire_roundtrip.rs` pin the
//! encodings.
//!
//! Every message travels as one CRC-framed record (the same
//! `len | crc32 | payload` framing as the shard WAL — see
//! [`dyndens_graph::codec::put_frame`]), whose payload starts with a protocol
//! version byte and a message tag byte. Request and response tags share one
//! numbering space; requests use `0x01..=0x7F`, responses `0x80..=0xFF`.

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::codec::{put_f64, put_frame};
use dyndens_graph::codec::{put_str, put_u32, put_u64, put_u8, ByteReader, CodecError};
use dyndens_graph::VertexSet;
use dyndens_obs::RegistrySnapshot;

/// The protocol revision this build speaks. A decoder rejects every other
/// version; additions to message bodies require a bump (bodies are
/// fixed-layout — decoders reject trailing bytes).
///
/// Revision 2 added the `Metrics` request/response pair and the
/// [`ServeStats`] block inside `Stats` replies. Revision 3 added the push
/// subscription family (`Subscribe`/`Unsubscribe` requests, `Subscribed`/
/// `Unsubscribed`/`Push` responses), grew [`ServeStats`] from five to eight
/// counters, and assigned error codes 5 (`SlowConsumer`) and 6
/// (`Unsupported`).
pub const PROTOCOL_VERSION: u8 = 3;

/// Upper bound a frame reader accepts for one message, before allocating
/// anything: 32 MiB. A corrupt or hostile length prefix beyond it is rejected
/// as a framing error rather than an attempted allocation.
pub const MAX_FRAME_LEN: u32 = 32 << 20;

/// A request, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The merged current top-`k` stories (tag `0x01`).
    TopK {
        /// Maximum number of stories to return.
        k: u32,
    },
    /// Incremental read (tag `0x02`): for every shard that advanced past the
    /// client's cursor, the `DenseEvent` suffix since it (or a resync
    /// snapshot once the client fell behind the shard's delta retention).
    Poll {
        /// The client's per-shard sequence cursor. An empty vector is the
        /// bootstrap cursor (all shards from sequence 0); otherwise the
        /// length must equal the server's shard count.
        since: Vec<u64>,
    },
    /// Merged work counters plus per-shard serving health (tag `0x03`).
    Stats,
    /// The server's full observability snapshot (tag `0x04`): every
    /// registered counter, gauge and latency histogram plus the recent
    /// structured-event journal. Answers with [`Response::Metrics`]; a
    /// server running without instrumentation answers with an empty
    /// snapshot.
    Metrics,
    /// Register a push subscription (tag `0x05`): the client states its
    /// per-shard cursor **once**; from then on the server fans out
    /// [`Response::Push`] frames whenever a shard publishes past it — the
    /// connection carries no further request traffic until the client
    /// unsubscribes or hangs up. Answered with [`Response::Subscribed`], then
    /// an immediate catch-up `Push` if any shard is already past the cursor.
    /// A thread-per-connection server answers with a typed
    /// [`ErrorCode::Unsupported`] error instead.
    Subscribe {
        /// The client's per-shard sequence cursor, with the same semantics
        /// as [`Request::Poll`]: empty means bootstrap (every shard from
        /// sequence 0), as does a stale length from before a topology change.
        since: Vec<u64>,
    },
    /// Deregister the connection's push subscription (tag `0x06`). The
    /// server stops fanning out, then answers [`Response::Unsubscribed`];
    /// `Push` frames already in flight arrive before the acknowledgement,
    /// never after it. The connection then reverts to request/response use.
    Unsubscribe,
}

/// One story on the wire: the vertex set, its density, and the entity names
/// (empty when the server has no name table).
#[derive(Debug, Clone, PartialEq)]
pub struct WireStory {
    /// The story's vertex set.
    pub vertices: VertexSet,
    /// The story's density under the server's measure, bit-exact.
    pub density: f64,
    /// Human-readable entity names, parallel to `vertices`; empty when the
    /// server serves unnamed vertex-level stories.
    pub entities: Vec<String>,
}

/// One shard's contribution to a [`Response::Poll`].
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPoll {
    /// The exact contiguous event suffix `from_seq..to_seq`: applying the
    /// events in order to the story set the client held at `from_seq` yields
    /// the shard's story set at `to_seq`.
    Deltas {
        /// The shard the events belong to.
        shard: u32,
        /// The cursor the events start from (equals the requested cursor).
        from_seq: u64,
        /// The shard sequence the events catch the client up to.
        to_seq: u64,
        /// The events, in publication order.
        events: Vec<DenseEvent>,
    },
    /// The client fell behind the shard's delta retention (or the shard just
    /// recovered from a crash): rebase on this full published story list,
    /// then resume delta-following from `seq`.
    Resync {
        /// The shard being resynchronised.
        shard: u32,
        /// The shard sequence number of the snapshot.
        seq: u64,
        /// The shard's published stories (its top-k; the *full* story set
        /// whenever `top_k` is at least the shard's output-dense count).
        stories: Vec<(VertexSet, f64)>,
    },
}

impl ShardPoll {
    /// The shard index this entry refers to.
    pub fn shard(&self) -> u32 {
        match self {
            ShardPoll::Deltas { shard, .. } | ShardPoll::Resync { shard, .. } => *shard,
        }
    }
}

/// Per-shard serving health, carried by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// The shard index.
    pub shard: u32,
    /// The shard's latest published sequence number.
    pub seq: u64,
    /// The shard's total output-dense subgraph count (may exceed the
    /// published top-k).
    pub output_dense: u64,
    /// The earliest cursor a `Poll` can be served deltas for, or `None`
    /// while the shard has published nothing since construction/recovery.
    /// `seq - delta_coverage_from` is the shard's poll-tolerance window;
    /// the gap between `seq` and a reader's cursor is that reader's
    /// staleness in updates.
    pub delta_coverage_from: Option<u64>,
}

/// Serving-layer counters carried by [`Response::Stats`]: what the server
/// itself did, as opposed to the ingest fleet's [`EngineStats`] work ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered since the server started (all request types,
    /// including error replies).
    pub requests_served: u64,
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections severed by a framing or I/O failure (CRC mismatch,
    /// mid-frame EOF, reset) rather than a clean peer hang-up or server
    /// shutdown.
    pub conns_severed: u64,
    /// Resync entries served in `Poll` and `Push` replies — each one is a
    /// reader that fell behind a shard's delta retention, or a shard that
    /// restarted (recovery, split, merge) under the reader.
    pub resyncs_served: u64,
    /// Typed [`Response::Error`] replies sent.
    pub error_replies: u64,
    /// Connections refused at accept because the server was at its
    /// `max_connections` bound.
    pub conns_rejected: u64,
    /// [`Response::Push`] frames enqueued to subscribers.
    pub pushes_sent: u64,
    /// Subscribers evicted because their bounded write queue overflowed
    /// (each received a final [`ErrorCode::SlowConsumer`] severance).
    pub slow_evictions: u64,
}

impl ServeStats {
    /// Number of counters in the wire encoding of this protocol revision
    /// (the mirror of [`EngineStats::WIRE_COUNTERS`]). Adding a counter is a
    /// wire-format change: bump [`PROTOCOL_VERSION`] alongside this constant
    /// (the destructuring in [`encode_into`](ServeStats::encode_into) forces
    /// the revisit).
    pub const WIRE_COUNTERS: u8 = 8;

    /// Appends the canonical wire encoding:
    /// `n u8 (= 8) | n × counter u64`, counters in declaration order.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let ServeStats {
            requests_served,
            conns_accepted,
            conns_severed,
            resyncs_served,
            error_replies,
            conns_rejected,
            pushes_sent,
            slow_evictions,
        } = self;
        put_u8(buf, Self::WIRE_COUNTERS);
        for counter in [
            requests_served,
            conns_accepted,
            conns_severed,
            resyncs_served,
            error_replies,
            conns_rejected,
            pushes_sent,
            slow_evictions,
        ] {
            put_u64(buf, *counter);
        }
    }

    /// Decodes a serving-stats block, rejecting a counter count other than
    /// [`ServeStats::WIRE_COUNTERS`] (a mismatch means the peer speaks a
    /// different protocol revision).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ServeStats, CodecError> {
        if r.u8()? != Self::WIRE_COUNTERS {
            return Err(CodecError::Invalid("serve stats counter count mismatch"));
        }
        Ok(ServeStats {
            requests_served: r.u64()?,
            conns_accepted: r.u64()?,
            conns_severed: r.u64()?,
            resyncs_served: r.u64()?,
            error_replies: r.u64()?,
            conns_rejected: r.u64()?,
            pushes_sent: r.u64()?,
            slow_evictions: r.u64()?,
        })
    }
}

/// Error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request's version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion = 1,
    /// The request tag is unknown to this server.
    UnknownTag = 2,
    /// The request body failed to decode.
    Malformed = 3,
    /// A `Poll` cursor's length does not match the server's shard count.
    BadCursor = 4,
    /// Final severance frame sent to a push subscriber whose bounded write
    /// queue overflowed: the subscriber read slower than the fan-out
    /// produced, so the server evicted it rather than buffer without bound.
    /// The connection is closed after this frame.
    SlowConsumer = 5,
    /// The request is valid but this server mode cannot serve it (e.g.
    /// `Subscribe` against a thread-per-connection server). The connection
    /// stays usable.
    Unsupported = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::UnsupportedVersion),
            2 => Some(ErrorCode::UnknownTag),
            3 => Some(ErrorCode::Malformed),
            4 => Some(ErrorCode::BadCursor),
            5 => Some(ErrorCode::SlowConsumer),
            6 => Some(ErrorCode::Unsupported),
            _ => None,
        }
    }
}

/// A response, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::TopK`] (tag `0x81`).
    Stories {
        /// The per-shard sequence numbers the answer reflects.
        per_shard_seq: Vec<u64>,
        /// The merged stories, densest first.
        stories: Vec<WireStory>,
    },
    /// Answer to [`Request::Poll`] (tag `0x82`). Shards that did not advance
    /// past the client's cursor are simply absent from `entries`.
    Poll {
        /// The server's shard count (so a bootstrap client can size its
        /// cursor).
        n_shards: u32,
        /// One entry per shard that advanced.
        entries: Vec<ShardPoll>,
    },
    /// Answer to [`Request::Stats`] (tag `0x83`).
    Stats {
        /// The fleet's merged work counters, as of the latest published
        /// snapshots.
        stats: EngineStats,
        /// The serving layer's own counters.
        serve: ServeStats,
        /// Per-shard serving health.
        shards: Vec<ShardStat>,
    },
    /// Answer to [`Request::Metrics`] (tag `0x84`): the server's full
    /// observability snapshot. Empty (no series, no events) when the server
    /// runs uninstrumented.
    Metrics {
        /// Every registered metric series plus the recent event journal.
        registry: RegistrySnapshot,
    },
    /// Answer to [`Request::Subscribe`] (tag `0x85`): the subscription is
    /// registered; `Push` frames follow as shards publish.
    Subscribed {
        /// The server's shard count (so a bootstrap subscriber can size its
        /// mirror before the first push arrives).
        n_shards: u32,
    },
    /// Answer to [`Request::Unsubscribe`] (tag `0x86`): fan-out to this
    /// connection has stopped; no `Push` frame follows this acknowledgement.
    Unsubscribed,
    /// A server-initiated fan-out frame (tag `0x87`), sent to subscribed
    /// connections whenever a shard publishes past the subscriber's cursor.
    /// The body is shaped exactly like a [`Response::Poll`] answer: one
    /// entry per shard that advanced, deltas when retention covers the
    /// cursor, a resync snapshot when it does not (or when the topology
    /// changed under the subscriber). The server advances its copy of the
    /// cursor as it pushes; the client never re-states it.
    Push {
        /// The server's current shard count; growth mid-subscription means a
        /// split committed, and the affected entries arrive as resyncs.
        n_shards: u32,
        /// One entry per shard that advanced past the subscriber's cursor.
        entries: Vec<ShardPoll>,
    },
    /// The request could not be served (tag `0xEE`). The connection stays
    /// usable — framing was intact, only this request was rejected — except
    /// after [`ErrorCode::SlowConsumer`], which is a severance: the server
    /// closes the connection once the frame is written.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Why an intact frame failed to decode into a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeFailure {
    /// The payload's version byte differs from [`PROTOCOL_VERSION`].
    UnsupportedVersion(u8),
    /// The message tag is not assigned (in this direction).
    UnknownTag(u8),
    /// The body is truncated, has trailing bytes, or violates an invariant.
    Malformed(CodecError),
}

impl std::fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeFailure::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (expected {PROTOCOL_VERSION})"
                )
            }
            DecodeFailure::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            DecodeFailure::Malformed(e) => write!(f, "malformed message body: {e}"),
        }
    }
}

impl std::error::Error for DecodeFailure {}

impl From<CodecError> for DecodeFailure {
    fn from(e: CodecError) -> Self {
        DecodeFailure::Malformed(e)
    }
}

// Message tags. Requests and responses share one numbering space so a tag is
// never ambiguous in a captured byte stream.
const TAG_TOPK: u8 = 0x01;
const TAG_POLL: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_METRICS: u8 = 0x04;
const TAG_SUBSCRIBE: u8 = 0x05;
const TAG_UNSUBSCRIBE: u8 = 0x06;
const TAG_STORIES_REPLY: u8 = 0x81;
const TAG_POLL_REPLY: u8 = 0x82;
const TAG_STATS_REPLY: u8 = 0x83;
const TAG_METRICS_REPLY: u8 = 0x84;
const TAG_SUBSCRIBED_REPLY: u8 = 0x85;
const TAG_UNSUBSCRIBED_REPLY: u8 = 0x86;
const TAG_PUSH: u8 = 0x87;
const TAG_ERROR: u8 = 0xEE;

fn begin(buf: &mut Vec<u8>, tag: u8) {
    put_u8(buf, PROTOCOL_VERSION);
    put_u8(buf, tag);
}

/// Reads the version and tag bytes, rejecting foreign versions.
fn header(r: &mut ByteReader<'_>) -> Result<u8, DecodeFailure> {
    let version = r.u8().map_err(DecodeFailure::Malformed)?;
    if version != PROTOCOL_VERSION {
        return Err(DecodeFailure::UnsupportedVersion(version));
    }
    r.u8().map_err(DecodeFailure::Malformed)
}

/// Bodies are fixed-layout per version: trailing bytes mean the peer speaks
/// a different revision, so they are rejected rather than skipped.
fn finish<T>(value: T, r: &ByteReader<'_>) -> Result<T, DecodeFailure> {
    if r.is_empty() {
        Ok(value)
    } else {
        Err(DecodeFailure::Malformed(CodecError::Invalid(
            "trailing bytes after message body",
        )))
    }
}

/// Guards a count prefix against the bytes that could possibly back it, so a
/// corrupt count can never drive an allocation (`min_encoded` is the smallest
/// possible encoding of one element).
fn check_count(r: &ByteReader<'_>, count: usize, min_encoded: usize) -> Result<(), CodecError> {
    if r.remaining() < count.saturating_mul(min_encoded) {
        return Err(CodecError::Truncated {
            needed: count.saturating_mul(min_encoded),
            available: r.remaining(),
        });
    }
    Ok(())
}

impl Request {
    /// Appends the versioned payload (not the frame) for this request.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::TopK { k } => {
                begin(buf, TAG_TOPK);
                put_u32(buf, *k);
            }
            Request::Poll { since } => {
                begin(buf, TAG_POLL);
                put_u32(buf, since.len() as u32);
                for s in since {
                    put_u64(buf, *s);
                }
            }
            Request::Stats => begin(buf, TAG_STATS),
            Request::Metrics => begin(buf, TAG_METRICS),
            Request::Subscribe { since } => {
                begin(buf, TAG_SUBSCRIBE);
                put_u32(buf, since.len() as u32);
                for s in since {
                    put_u64(buf, *s);
                }
            }
            Request::Unsubscribe => begin(buf, TAG_UNSUBSCRIBE),
        }
    }

    /// Decodes one request payload (the bytes inside a frame).
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeFailure> {
        let mut r = ByteReader::new(payload);
        let tag = header(&mut r)?;
        let request = match tag {
            TAG_TOPK => Request::TopK { k: r.u32()? },
            TAG_POLL => {
                let n = r.u32()? as usize;
                check_count(&r, n, 8)?;
                let since = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
                Request::Poll { since }
            }
            TAG_STATS => Request::Stats,
            TAG_METRICS => Request::Metrics,
            TAG_SUBSCRIBE => {
                let n = r.u32()? as usize;
                check_count(&r, n, 8)?;
                let since = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
                Request::Subscribe { since }
            }
            TAG_UNSUBSCRIBE => Request::Unsubscribe,
            other => return Err(DecodeFailure::UnknownTag(other)),
        };
        finish(request, &r)
    }
}

impl WireStory {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.vertices.encode_into(buf);
        put_f64(buf, self.density);
        put_u32(buf, self.entities.len() as u32);
        for name in &self.entities {
            put_str(buf, name);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<WireStory, CodecError> {
        let vertices = VertexSet::decode(r)?;
        let density = r.f64()?;
        if !density.is_finite() {
            return Err(CodecError::Invalid("story density is not finite"));
        }
        let n = r.u32()? as usize;
        check_count(r, n, 4)?;
        let entities = (0..n)
            .map(|_| r.str().map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WireStory {
            vertices,
            density,
            entities,
        })
    }
}

fn encode_scored_set(buf: &mut Vec<u8>, (set, density): &(VertexSet, f64)) {
    set.encode_into(buf);
    put_f64(buf, *density);
}

fn decode_scored_set(r: &mut ByteReader<'_>) -> Result<(VertexSet, f64), CodecError> {
    let set = VertexSet::decode(r)?;
    let density = r.f64()?;
    if !density.is_finite() {
        return Err(CodecError::Invalid("story density is not finite"));
    }
    Ok((set, density))
}

/// Encodes a `Poll`/`Push` body: `n_shards u32 | count u32 | count × entry`
/// (the two responses share one body shape by design — a subscriber's mirror
/// applies pushes with the same code it applies poll answers with).
fn encode_poll_body(buf: &mut Vec<u8>, n_shards: u32, entries: &[ShardPoll]) {
    put_u32(buf, n_shards);
    put_u32(buf, entries.len() as u32);
    for entry in entries {
        match entry {
            ShardPoll::Deltas {
                shard,
                from_seq,
                to_seq,
                events,
            } => {
                put_u32(buf, *shard);
                put_u8(buf, 0);
                put_u64(buf, *from_seq);
                put_u64(buf, *to_seq);
                put_u32(buf, events.len() as u32);
                for event in events {
                    event.encode_into(buf);
                }
            }
            ShardPoll::Resync {
                shard,
                seq,
                stories,
            } => {
                put_u32(buf, *shard);
                put_u8(buf, 1);
                put_u64(buf, *seq);
                put_u32(buf, stories.len() as u32);
                for story in stories {
                    encode_scored_set(buf, story);
                }
            }
        }
    }
}

/// Decodes a `Poll`/`Push` body; the inverse of [`encode_poll_body`].
fn decode_poll_body(r: &mut ByteReader<'_>) -> Result<(u32, Vec<ShardPoll>), DecodeFailure> {
    let n_shards = r.u32()?;
    let n = r.u32()? as usize;
    check_count(r, n, 13)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let shard = r.u32()?;
        let entry = match r.u8()? {
            0 => {
                let from_seq = r.u64()?;
                let to_seq = r.u64()?;
                if to_seq <= from_seq {
                    return Err(DecodeFailure::Malformed(CodecError::Invalid(
                        "poll deltas do not advance the cursor",
                    )));
                }
                let n_events = r.u32()? as usize;
                check_count(r, n_events, 13)?;
                let events = (0..n_events)
                    .map(|_| DenseEvent::decode(r))
                    .collect::<Result<Vec<_>, _>>()?;
                ShardPoll::Deltas {
                    shard,
                    from_seq,
                    to_seq,
                    events,
                }
            }
            1 => {
                let seq = r.u64()?;
                let n_stories = r.u32()? as usize;
                check_count(r, n_stories, 12)?;
                let stories = (0..n_stories)
                    .map(|_| decode_scored_set(r))
                    .collect::<Result<Vec<_>, _>>()?;
                ShardPoll::Resync {
                    shard,
                    seq,
                    stories,
                }
            }
            _ => {
                return Err(DecodeFailure::Malformed(CodecError::Invalid(
                    "unknown poll entry kind",
                )))
            }
        };
        entries.push(entry);
    }
    Ok((n_shards, entries))
}

impl Response {
    /// Appends the versioned payload (not the frame) for this response.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Stories {
                per_shard_seq,
                stories,
            } => {
                begin(buf, TAG_STORIES_REPLY);
                put_u32(buf, per_shard_seq.len() as u32);
                for s in per_shard_seq {
                    put_u64(buf, *s);
                }
                put_u32(buf, stories.len() as u32);
                for story in stories {
                    story.encode_into(buf);
                }
            }
            Response::Poll { n_shards, entries } => {
                begin(buf, TAG_POLL_REPLY);
                encode_poll_body(buf, *n_shards, entries);
            }
            Response::Stats {
                stats,
                serve,
                shards,
            } => {
                begin(buf, TAG_STATS_REPLY);
                stats.encode_into(buf);
                serve.encode_into(buf);
                put_u32(buf, shards.len() as u32);
                for s in shards {
                    put_u32(buf, s.shard);
                    put_u64(buf, s.seq);
                    put_u64(buf, s.output_dense);
                    match s.delta_coverage_from {
                        Some(from) => {
                            put_u8(buf, 1);
                            put_u64(buf, from);
                        }
                        None => put_u8(buf, 0),
                    }
                }
            }
            Response::Metrics { registry } => {
                begin(buf, TAG_METRICS_REPLY);
                registry.encode_into(buf);
            }
            Response::Subscribed { n_shards } => {
                begin(buf, TAG_SUBSCRIBED_REPLY);
                put_u32(buf, *n_shards);
            }
            Response::Unsubscribed => begin(buf, TAG_UNSUBSCRIBED_REPLY),
            Response::Push { n_shards, entries } => {
                begin(buf, TAG_PUSH);
                encode_poll_body(buf, *n_shards, entries);
            }
            Response::Error { code, message } => {
                begin(buf, TAG_ERROR);
                put_u8(buf, *code as u8);
                put_str(buf, message);
            }
        }
    }

    /// Decodes one response payload (the bytes inside a frame).
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeFailure> {
        let mut r = ByteReader::new(payload);
        let tag = header(&mut r)?;
        let response = match tag {
            TAG_STORIES_REPLY => {
                let n = r.u32()? as usize;
                check_count(&r, n, 8)?;
                let per_shard_seq = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
                let n = r.u32()? as usize;
                check_count(&r, n, 16)?;
                let stories = (0..n)
                    .map(|_| WireStory::decode(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Response::Stories {
                    per_shard_seq,
                    stories,
                }
            }
            TAG_POLL_REPLY => {
                let (n_shards, entries) = decode_poll_body(&mut r)?;
                Response::Poll { n_shards, entries }
            }
            TAG_STATS_REPLY => {
                let stats = EngineStats::decode(&mut r)?;
                let serve = ServeStats::decode(&mut r)?;
                let n = r.u32()? as usize;
                check_count(&r, n, 21)?;
                let shards = (0..n)
                    .map(|_| {
                        let shard = r.u32()?;
                        let seq = r.u64()?;
                        let output_dense = r.u64()?;
                        let delta_coverage_from = match r.u8()? {
                            0 => None,
                            1 => Some(r.u64()?),
                            _ => return Err(CodecError::Invalid("bad coverage flag")),
                        };
                        Ok(ShardStat {
                            shard,
                            seq,
                            output_dense,
                            delta_coverage_from,
                        })
                    })
                    .collect::<Result<Vec<_>, CodecError>>()?;
                Response::Stats {
                    stats,
                    serve,
                    shards,
                }
            }
            TAG_METRICS_REPLY => Response::Metrics {
                registry: RegistrySnapshot::decode(&mut r)?,
            },
            TAG_SUBSCRIBED_REPLY => Response::Subscribed { n_shards: r.u32()? },
            TAG_UNSUBSCRIBED_REPLY => Response::Unsubscribed,
            TAG_PUSH => {
                let (n_shards, entries) = decode_poll_body(&mut r)?;
                Response::Push { n_shards, entries }
            }
            TAG_ERROR => {
                let code =
                    ErrorCode::from_u8(r.u8()?).ok_or(CodecError::Invalid("unknown error code"))?;
                let message = r.str()?.to_string();
                Response::Error { code, message }
            }
            other => return Err(DecodeFailure::UnknownTag(other)),
        };
        finish(response, &r)
    }
}

/// Encodes a message payload and wraps it in the CRC frame, ready to write
/// to a socket.
pub fn frame_message(encode: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut payload = Vec::new();
    encode(&mut payload);
    let mut framed = Vec::with_capacity(payload.len() + 8);
    put_frame(&mut framed, &payload);
    framed
}
