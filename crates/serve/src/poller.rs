//! A minimal std-only readiness poller.
//!
//! The event-loop server needs one primitive: "block until any of these
//! sockets is readable/writable". std does not expose one, and this workspace
//! takes no external dependencies, so this module declares the handful of
//! libc entry points itself (std already links libc; these are declarations,
//! not a new dependency). Two backends share one interface:
//!
//! - **epoll** on Linux: O(ready) wakeups, the interest set lives in the
//!   kernel. This is what carries ten-thousand-subscriber fan-in.
//! - **poll(2)** everywhere else on unix (and selectable on Linux for
//!   tests): the interest set is rebuilt into a `pollfd` array per wait —
//!   O(registered) per wakeup, fine for hundreds of connections and
//!   portable to every unix.
//!
//! Both are **level-triggered**: an event keeps firing while the condition
//! holds, so a connection handler that stops mid-backlog is re-woken rather
//! than wedged. Non-unix targets get neither; the server falls back to its
//! thread-per-connection mode there (see `ServeMode::default_for_target`).

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness conditions a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest: the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest: a connection with a non-empty write queue.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is readable (or has a pending hangup/error to observe via
    /// `read`).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// The poller handle: registrations keyed by raw fd, events labeled by
/// caller-chosen tokens.
#[derive(Debug)]
pub(crate) struct Poller {
    imp: Imp,
}

#[derive(Debug)]
enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollPoller),
    // On Linux the fallback is only constructed by tests; elsewhere it is
    // the only backend.
    #[cfg_attr(all(target_os = "linux", not(test)), allow(dead_code))]
    Poll(pollfd::PollPoller),
}

impl Poller {
    /// Opens the best backend for this target: epoll on Linux, poll(2)
    /// elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                imp: Imp::Epoll(epoll::EpollPoller::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::new_poll_fallback()
        }
    }

    /// Opens the portable poll(2) backend unconditionally. Exists so the
    /// fallback path is exercised by tests on Linux too, not only on the
    /// platforms that need it.
    #[cfg_attr(all(target_os = "linux", not(test)), allow(dead_code))]
    pub fn new_poll_fallback() -> io::Result<Poller> {
        Ok(Poller {
            imp: Imp::Poll(pollfd::PollPoller::new()),
        })
    }

    /// `true` if this poller runs on the epoll backend.
    #[cfg(test)]
    pub fn is_epoll(&self) -> bool {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => true,
            Imp::Poll(_) => false,
        }
    }

    /// Starts watching `fd` under `token`. One registration per fd.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.register(fd, token, interest),
            Imp::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes the interest set of an existing registration.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.reregister(fd, token, interest),
            Imp::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Call **before** closing the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.deregister(fd),
            Imp::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// elapses), appending events to `out` (which is cleared first).
    /// `None` blocks indefinitely. EINTR retries internally.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.wait(out, timeout),
            Imp::Poll(p) => p.wait(out, timeout),
        }
    }
}

/// Clamps a timeout to the `int` milliseconds both syscalls take
/// (`-1` = infinite), rounding up so a 100µs timeout is not a busy-wait.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !t.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The epoll ABI, declared directly: std links libc, so these resolve
    // without any external crate.
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. x86-64 packs it to match the
    /// 32-bit layout; every other architecture uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    #[derive(Debug)]
    pub(super) struct EpollPoller {
        epfd: RawFd,
        scratch: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for EpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let events = self.events;
            let data = self.data;
            f.debug_struct("EpollEvent")
                .field("events", &events)
                .field("data", &data)
                .finish()
        }
    }

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(EpollPoller {
                epfd,
                scratch: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let n = loop {
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.scratch.as_mut_ptr(),
                        self.scratch.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.scratch[..n] {
                let events = ev.events;
                out.push(Event {
                    token: ev.data as usize,
                    // Error/hangup conditions surface as readability so the
                    // handler's next `read` observes them.
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            // A full scratch buffer means more events may be pending; grow so
            // a huge ready set cannot starve high-numbered fds.
            if n == self.scratch.len() {
                self.scratch
                    .resize(n * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

mod pollfd {
    use super::{timeout_ms, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// The portable `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    /// The fallback backend: the interest table lives in userspace and is
    /// rebuilt into a `pollfd` array per wait.
    #[derive(Debug)]
    pub(super) struct PollPoller {
        registered: HashMap<RawFd, (usize, Interest)>,
        scratch: Vec<(PollFd, usize)>,
    }

    impl PollPoller {
        pub fn new() -> PollPoller {
            PollPoller {
                registered: HashMap::new(),
                scratch: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.registered.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            match self.registered.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.registered.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            self.scratch.clear();
            for (&fd, &(token, interest)) in &self.registered {
                self.scratch.push((
                    PollFd {
                        fd,
                        events: mask(interest),
                        revents: 0,
                    },
                    token,
                ));
            }
            // `poll` needs a contiguous pollfd array; split the parallel
            // token list off rather than interleave.
            let mut fds: Vec<PollFd> = self.scratch.iter().map(|(p, _)| *p).collect();
            loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if ret >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            for (pfd, (_, token)) in fds.iter().zip(&self.scratch) {
                let re = pfd.revents;
                if re == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: re & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: re & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn exercise(mut poller: Poller) {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: a zero timeout returns no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        // A write on the peer makes it readable.
        a.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 7)
            .expect("readable event");
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);

        // Level-triggered write interest fires while the buffer has room.
        poller
            .reregister(b.as_raw_fd(), 7, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 7)
            .expect("writable event");
        assert!(ev.writable);

        // Peer hangup surfaces as readability (read returns Ok(0)).
        drop(a);
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("hangup event");
        assert!(ev.readable);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after hangup");

        poller.deregister(b.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn default_backend_delivers_readiness() {
        let poller = Poller::new().unwrap();
        #[cfg(target_os = "linux")]
        assert!(poller.is_epoll(), "Linux must get the epoll backend");
        exercise(poller);
    }

    #[test]
    fn poll_fallback_delivers_readiness() {
        let poller = Poller::new_poll_fallback().unwrap();
        assert!(!poller.is_epoll());
        exercise(poller);
    }
}
