//! Framed message I/O over byte streams.
//!
//! The wire carries the same `len u32 | crc32(payload) u32 | payload` records
//! as the shard WAL ([`dyndens_graph::codec::put_frame`]); this module reads
//! and writes them incrementally over sockets. A CRC mismatch or a mid-frame
//! EOF desynchronises the stream, so both are surfaced as I/O errors and the
//! connection is torn down rather than resynchronised.

use std::io::{self, Read, Write};

use dyndens_graph::codec::crc32;

use crate::protocol::MAX_FRAME_LEN;

/// Writes one framed payload and flushes.
pub fn write_frame(w: &mut impl Write, framed: &[u8]) -> io::Result<()> {
    w.write_all(framed)?;
    w.flush()
}

/// Reads one framed payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages); EOF inside a frame, a
/// length above [`MAX_FRAME_LEN`] and a CRC mismatch are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    // Distinguish "no more messages" from "message cut off": only a zero-byte
    // read before the first header byte is a clean end of stream.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != stored_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame CRC mismatch",
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::codec::put_frame;

    #[test]
    fn frame_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        put_frame(&mut wire, b"first");
        put_frame(&mut wire, b"");
        put_frame(&mut wire, b"third message");
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"third message");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_and_corrupt_frames_are_io_errors() {
        let mut wire = Vec::new();
        put_frame(&mut wire, b"payload");
        // EOF inside the header.
        let mut cursor = io::Cursor::new(&wire[..5]);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // EOF inside the payload.
        let mut cursor = io::Cursor::new(&wire[..10]);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Flipped payload byte: CRC mismatch.
        let mut corrupt = wire.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        let mut cursor = io::Cursor::new(corrupt);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Hostile length prefix: rejected before allocation.
        let mut hostile = wire;
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(hostile);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
