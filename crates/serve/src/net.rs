//! Framed message I/O over byte streams.
//!
//! The wire carries the same `len u32 | crc32(payload) u32 | payload` records
//! as the shard WAL ([`dyndens_graph::codec::put_frame`]); this module reads
//! and writes them incrementally over sockets. A CRC mismatch or a mid-frame
//! EOF desynchronises the stream, so both are surfaced as I/O errors and the
//! connection is torn down rather than resynchronised.

use std::io::{self, Read, Write};

use dyndens_graph::codec::crc32;

use crate::protocol::MAX_FRAME_LEN;

/// Writes one framed payload and flushes.
pub fn write_frame(w: &mut impl Write, framed: &[u8]) -> io::Result<()> {
    w.write_all(framed)?;
    w.flush()
}

/// Reads one framed payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages); EOF inside a frame, a
/// length above [`MAX_FRAME_LEN`] and a CRC mismatch are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    // Distinguish "no more messages" from "message cut off": only a zero-byte
    // read before the first header byte is a clean end of stream.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != stored_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame CRC mismatch",
        ));
    }
    Ok(Some(payload))
}

/// How many bytes [`FrameBuffer::fill_from`] asks the source for per call.
const FILL_CHUNK: usize = 16 * 1024;

/// An incremental frame decoder for non-blocking streams.
///
/// [`read_frame`] blocks until a whole frame arrives, which a readiness event
/// loop cannot afford: a frame may straddle arbitrarily many readiness
/// events. `FrameBuffer` splits the work into [`fill_from`](Self::fill_from)
/// (one `read` call, appending whatever arrived) and
/// [`next_frame`](Self::next_frame) (pops one complete, CRC-verified frame if
/// buffered). Both the evented server and the client's non-blocking
/// `try_next` path use it; framing errors carry the same `io::ErrorKind`s as
/// [`read_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Creates a buffer pre-seeded with bytes already read from the stream
    /// (e.g. the unconsumed tail of a `BufReader` being converted to
    /// non-blocking use).
    pub fn with_initial(bytes: Vec<u8>) -> Self {
        FrameBuffer {
            buf: bytes,
            start: 0,
        }
    }

    /// Performs **one** `read` on `r`, appending whatever arrived. Returns
    /// the byte count (`Ok(0)` is EOF). `WouldBlock` and every other error
    /// pass through untouched; the buffer is unchanged on error.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let old = self.buf.len();
        self.buf.resize(old + FILL_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Pops one complete frame's payload, if buffered. Returns `Ok(None)`
    /// when more bytes are needed; a hostile length prefix or a CRC mismatch
    /// is an `InvalidData` error, exactly as in [`read_frame`].
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let pending = &self.buf[self.start..];
        if pending.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound"),
            ));
        }
        let stored_crc = u32::from_le_bytes([pending[4], pending[5], pending[6], pending[7]]);
        let total = 8 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[8..total].to_vec();
        self.start += total;
        // Reclaim the consumed prefix once it dominates the allocation, so a
        // long-lived connection's buffer stays proportional to its backlog.
        if self.start > FILL_CHUNK && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        if crc32(&payload) != stored_crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame CRC mismatch",
            ));
        }
        Ok(Some(payload))
    }

    /// `true` while the buffer holds a partial frame — an EOF now would be a
    /// torn frame, not a clean hang-up.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::codec::put_frame;

    #[test]
    fn frame_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        put_frame(&mut wire, b"first");
        put_frame(&mut wire, b"");
        put_frame(&mut wire, b"third message");
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"third message");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_and_corrupt_frames_are_io_errors() {
        let mut wire = Vec::new();
        put_frame(&mut wire, b"payload");
        // EOF inside the header.
        let mut cursor = io::Cursor::new(&wire[..5]);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // EOF inside the payload.
        let mut cursor = io::Cursor::new(&wire[..10]);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Flipped payload byte: CRC mismatch.
        let mut corrupt = wire.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        let mut cursor = io::Cursor::new(corrupt);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Hostile length prefix: rejected before allocation.
        let mut hostile = wire;
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(hostile);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn frame_buffer_decodes_byte_by_byte() {
        let mut wire = Vec::new();
        put_frame(&mut wire, b"alpha");
        put_frame(&mut wire, b"");
        put_frame(&mut wire, b"beta frame");

        let mut fb = FrameBuffer::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        // Feed one byte at a time: frames must pop exactly at the boundaries.
        for chunk in wire.chunks(1) {
            let mut cursor = io::Cursor::new(chunk);
            assert_eq!(fb.fill_from(&mut cursor).unwrap(), 1);
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(
            got,
            vec![b"alpha".to_vec(), b"".to_vec(), b"beta frame".to_vec()]
        );
        assert!(!fb.has_partial());
        assert_eq!(fb.buffered_len(), 0);
    }

    #[test]
    fn frame_buffer_rejects_corruption_and_tracks_partials() {
        let mut wire = Vec::new();
        put_frame(&mut wire, b"payload");

        // Partial header: not an error, just not a frame yet.
        let mut fb = FrameBuffer::with_initial(wire[..5].to_vec());
        assert!(fb.next_frame().unwrap().is_none());
        assert!(fb.has_partial());

        // Corrupt payload byte: CRC mismatch.
        let mut corrupt = wire.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        let mut fb = FrameBuffer::with_initial(corrupt);
        assert_eq!(
            fb.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Hostile length prefix: rejected before buffering the "payload".
        let mut hostile = wire;
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut fb = FrameBuffer::with_initial(hostile);
        assert_eq!(
            fb.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn frame_buffer_compacts_consumed_prefix() {
        let big = vec![0xABu8; FILL_CHUNK];
        let mut wire = Vec::new();
        for _ in 0..4 {
            put_frame(&mut wire, &big);
        }
        let mut fb = FrameBuffer::with_initial(wire);
        for _ in 0..4 {
            assert_eq!(fb.next_frame().unwrap().unwrap(), big);
        }
        assert_eq!(fb.buffered_len(), 0);
        // The consumed prefix was reclaimed, not retained forever.
        assert!(fb.buf.len() < 2 * FILL_CHUNK, "buffer compacted");
    }
}
