//! Property tests pinning the serve wire protocol: encode → decode must be
//! the identity for every message type (requests and responses, all
//! variants), and decoding must reject truncated payloads, trailing bytes
//! and corrupt frames without panicking — mirroring the codec round-trip
//! suite in `crates/graph/tests/codec_roundtrip.rs`.

use std::io;

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::VertexSet;
use dyndens_obs::{
    HistogramSample, HistogramSnapshot, MetricName, MetricSample, ObsEvent, ObsRecord,
    RebalanceStage, RegistrySnapshot, SpanMark, N_BUCKETS,
};
use dyndens_serve::net::read_frame;
use dyndens_serve::protocol::frame_message;
use dyndens_serve::{ErrorCode, Request, Response, ServeStats, ShardPoll, ShardStat, WireStory};
use proptest::prelude::*;

fn vertex_set_strategy() -> impl Strategy<Value = VertexSet> {
    prop::collection::vec(0..50_000u32, 0..8).prop_map(|ids| VertexSet::from_ids(&ids))
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..38u8, 0..12).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=25 => (b'a' + c) as char,
                26..=35 => (b'0' + c - 26) as char,
                36 => ' ',
                _ => 'é', // exercise multi-byte UTF-8
            })
            .collect()
    })
}

fn density_strategy() -> impl Strategy<Value = f64> {
    (-1e9f64..1e9, 0..3u8).prop_map(|(d, scale)| match scale {
        0 => d,
        1 => d * 1e-12,
        _ => d.trunc(),
    })
}

fn event_strategy() -> impl Strategy<Value = DenseEvent> {
    (0..2u8, vertex_set_strategy(), density_strategy()).prop_map(|(kind, vertices, density)| {
        if kind == 0 {
            DenseEvent::BecameOutputDense { vertices, density }
        } else {
            DenseEvent::NoLongerOutputDense { vertices, density }
        }
    })
}

fn story_strategy() -> impl Strategy<Value = WireStory> {
    (
        vertex_set_strategy(),
        density_strategy(),
        prop::collection::vec(name_strategy(), 0..5),
    )
        .prop_map(|(vertices, density, entities)| WireStory {
            vertices,
            density,
            entities,
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0..6u8,
        0..10_000u32,
        prop::collection::vec(0..u64::MAX, 0..6),
    )
        .prop_map(|(variant, k, since)| match variant {
            0 => Request::TopK { k },
            1 => Request::Poll { since },
            2 => Request::Stats,
            3 => Request::Metrics,
            4 => Request::Subscribe { since },
            _ => Request::Unsubscribe,
        })
}

fn shard_poll_strategy() -> impl Strategy<Value = ShardPoll> {
    (
        0..2u8,
        0..64u32,
        0..1_000_000u64,
        1..1_000_000u64,
        prop::collection::vec(event_strategy(), 0..6),
        prop::collection::vec((vertex_set_strategy(), density_strategy()), 0..6),
    )
        .prop_map(|(variant, shard, from_seq, advance, events, stories)| {
            if variant == 0 {
                ShardPoll::Deltas {
                    shard,
                    from_seq,
                    to_seq: from_seq + advance,
                    events,
                }
            } else {
                ShardPoll::Resync {
                    shard,
                    seq: from_seq,
                    stories,
                }
            }
        })
}

fn stats_strategy() -> impl Strategy<Value = EngineStats> {
    (0..u64::MAX, 0..u64::MAX, 0..u64::MAX, 0..u64::MAX).prop_map(|(a, b, c, d)| EngineStats {
        updates: a,
        positive_updates: b,
        negative_updates: c,
        explorations: d,
        cheap_explorations: a ^ b,
        candidates_examined: b ^ c,
        subgraphs_inserted: c ^ d,
        subgraphs_evicted: d.rotate_left(7),
        explore_all_invocations: a.rotate_left(13),
        star_markers_created: b.wrapping_add(c),
        star_markers_removed: c.wrapping_add(d),
        max_explore_skips: a.wrapping_mul(3),
        degree_prioritize_skips: d.wrapping_mul(5),
    })
}

fn serve_stats_strategy() -> impl Strategy<Value = ServeStats> {
    (0..u64::MAX, 0..u64::MAX, 0..u64::MAX).prop_map(|(a, b, c)| ServeStats {
        requests_served: a,
        conns_accepted: b,
        conns_severed: c,
        resyncs_served: a ^ b,
        error_replies: b ^ c,
        conns_rejected: a ^ c,
        pushes_sent: a.rotate_left(11),
        slow_evictions: b.rotate_left(23),
    })
}

fn metric_name_strategy() -> impl Strategy<Value = MetricName> {
    // The codec preserves label order verbatim, so any pair list round-trips
    // (the registry always produces sorted labels, but the wire format does
    // not require it).
    (
        name_strategy(),
        prop::collection::vec((name_strategy(), name_strategy()), 0..3),
    )
        .prop_map(|(name, labels)| MetricName { name, labels })
}

fn histogram_snapshot_strategy() -> impl Strategy<Value = HistogramSnapshot> {
    // The codec demands strictly ascending bucket indexes below N_BUCKETS:
    // prefix-summing positive gaps delivers that by construction (at most
    // five gaps under 300 stays well below N_BUCKETS = 1920).
    (
        prop::collection::vec((1..300u32, 1..u64::MAX), 0..6),
        0..u64::MAX,
    )
        .prop_map(|(steps, sum)| {
            let mut index = 0u32;
            let mut buckets = Vec::with_capacity(steps.len());
            for (gap, n) in steps {
                index += gap;
                assert!((index as usize) < N_BUCKETS);
                buckets.push((index, n));
            }
            let count = buckets
                .iter()
                .fold(0u64, |acc, &(_, n)| acc.wrapping_add(n));
            HistogramSnapshot {
                count,
                sum,
                buckets,
            }
        })
}

fn obs_event_strategy() -> impl Strategy<Value = ObsEvent> {
    (0..12u8, 0..64u32, 0..u64::MAX, 0..u64::MAX, 0..2u8).prop_map(
        |(variant, shard, a, b, flag)| {
            let flag = flag == 1;
            let stage = match a % 3 {
                0 => RebalanceStage::Parked,
                1 => RebalanceStage::Rebuilt,
                _ => RebalanceStage::Committed,
            };
            match variant {
                0 => ObsEvent::WorkerBatch {
                    shard,
                    batch: b as u32,
                    apply_us: a,
                },
                1 => ObsEvent::WalFsync {
                    shard,
                    bytes: a,
                    fsync_us: b,
                },
                2 => ObsEvent::Checkpoint {
                    shard,
                    seq: a,
                    bytes: b,
                },
                3 => ObsEvent::Recovery {
                    shard,
                    snapshot_seq: a,
                    replayed_updates: b,
                    recovered_seq: a.wrapping_add(b),
                    repaired_torn_tail: flag,
                },
                4 => ObsEvent::SplitPhase {
                    slot: shard,
                    new_slot: shard + 1,
                    stage,
                    parked: a,
                    replayed: b,
                },
                5 => ObsEvent::MergePhase {
                    slot: shard,
                    freed_slot: shard + 1,
                    stage,
                    parked: a,
                },
                6 => ObsEvent::CompactionWindow {
                    pruned_pairs: a,
                    cancelled_updates: b,
                    evicted_edges: a ^ b,
                    reclaimed_bytes: a.rotate_left(9),
                },
                7 => ObsEvent::ConnAccepted { conn: a },
                8 => ObsEvent::ConnSevered { conn: a },
                9 => ObsEvent::PollResync { shard },
                10 => ObsEvent::Subscribed { conn: a },
                _ => ObsEvent::SlowReaderEvicted {
                    conn: a,
                    queued_bytes: b,
                },
            }
        },
    )
}

fn obs_record_strategy() -> impl Strategy<Value = ObsRecord> {
    (
        0..u64::MAX,
        0..u64::MAX,
        0..u64::MAX,
        0..3u8,
        obs_event_strategy(),
    )
        .prop_map(|(seq, at_unix_ms, span, mark, event)| ObsRecord {
            seq,
            at_unix_ms,
            span,
            mark: match mark {
                0 => SpanMark::Instant,
                1 => SpanMark::Begin,
                _ => SpanMark::End,
            },
            event,
        })
}

fn registry_snapshot_strategy() -> impl Strategy<Value = RegistrySnapshot> {
    (
        prop::collection::vec((metric_name_strategy(), 0..u64::MAX), 0..4),
        prop::collection::vec((metric_name_strategy(), 0..u64::MAX), 0..4),
        prop::collection::vec(
            (metric_name_strategy(), histogram_snapshot_strategy()),
            0..3,
        ),
        prop::collection::vec(obs_record_strategy(), 0..4),
    )
        .prop_map(|(counters, gauges, histograms, events)| RegistrySnapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| MetricSample { name, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, value)| MetricSample { name, value })
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|(name, hist)| HistogramSample { name, hist })
                .collect(),
            events,
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        0..8u8,
        prop::collection::vec(0..u64::MAX, 0..6),
        prop::collection::vec(story_strategy(), 0..5),
        prop::collection::vec(shard_poll_strategy(), 0..5),
        (
            stats_strategy(),
            serve_stats_strategy(),
            registry_snapshot_strategy(),
        ),
        (0..64u32, 0..u64::MAX, 0..2u8, name_strategy()),
    )
        .prop_map(
            |(
                variant,
                seqs,
                stories,
                entries,
                (stats, serve, registry),
                (shard, seq, cov, message),
            )| match variant {
                0 => Response::Stories {
                    per_shard_seq: seqs,
                    stories,
                },
                1 => Response::Poll {
                    n_shards: entries.iter().map(|e| e.shard() + 1).max().unwrap_or(1),
                    entries,
                },
                2 => Response::Stats {
                    stats,
                    serve,
                    shards: (0..shard % 5)
                        .map(|i| ShardStat {
                            shard: i,
                            seq: seq.wrapping_add(i as u64),
                            output_dense: seq.rotate_left(i),
                            delta_coverage_from: (cov == 1).then_some(seq / 2),
                        })
                        .collect(),
                },
                3 => Response::Metrics { registry },
                4 => Response::Subscribed {
                    n_shards: shard + 1,
                },
                5 => Response::Unsubscribed,
                6 => Response::Push {
                    n_shards: entries.iter().map(|e| e.shard() + 1).max().unwrap_or(1),
                    entries,
                },
                _ => Response::Error {
                    code: match shard % 6 {
                        0 => ErrorCode::UnsupportedVersion,
                        1 => ErrorCode::UnknownTag,
                        2 => ErrorCode::Malformed,
                        3 => ErrorCode::BadCursor,
                        4 => ErrorCode::SlowConsumer,
                        _ => ErrorCode::Unsupported,
                    },
                    message,
                },
            },
        )
}

fn encode_request(request: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    request.encode_into(&mut payload);
    payload
}

fn encode_response(response: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    response.encode_into(&mut payload);
    payload
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn request_round_trips_exactly(request in request_strategy()) {
        let payload = encode_request(&request);
        prop_assert_eq!(Request::decode(&payload).unwrap(), request);
    }

    #[test]
    fn response_round_trips_exactly(response in response_strategy()) {
        let payload = encode_response(&response);
        let back = Response::decode(&payload).unwrap();
        // Densities must survive bit-exactly, which `PartialEq` on f64
        // already demands (the strategies generate no NaNs).
        prop_assert_eq!(back, response);
    }

    #[test]
    fn truncated_payloads_are_rejected_not_panicked(
        request in request_strategy(),
        response in response_strategy(),
        num in 0..1_000_000usize,
    ) {
        let payload = encode_request(&request);
        let cut = num % payload.len();
        prop_assert!(Request::decode(&payload[..cut]).is_err());
        let payload = encode_response(&response);
        let cut = num % payload.len();
        prop_assert!(Response::decode(&payload[..cut]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected(request in request_strategy(), junk in 1..=255u8) {
        let mut payload = encode_request(&request);
        payload.push(junk);
        prop_assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(
        bytes in prop::collection::vec(0..=255u8, 0..80)
    ) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn corrupt_frames_are_detected_by_the_crc(
        request in request_strategy(),
        flip in (0..u32::MAX, 0..8u32),
    ) {
        let mut framed = frame_message(|buf| request.encode_into(buf));
        // Flip one bit anywhere in the frame (header or payload).
        let byte = (flip.0 as usize) % framed.len();
        framed[byte] ^= 1 << flip.1;
        let mut cursor = io::Cursor::new(framed);
        // The flip must never be silently absorbed: either the frame is
        // rejected, or (flips in the length prefix can shorten the frame)
        // the recovered payload differs and decode sees garbage that it
        // either rejects or — only if the flip undid itself — returns
        // unchanged.
        if let Ok(Some(payload)) = read_frame(&mut cursor) {
            if let Ok(back) = Request::decode(&payload) {
                prop_assert_eq!(back, request);
            }
        }
    }
}

#[test]
fn version_byte_gates_decoding() {
    let mut payload = encode_request(&Request::Stats);
    payload[0] = 9;
    assert!(matches!(
        Request::decode(&payload),
        Err(dyndens_serve::DecodeFailure::UnsupportedVersion(9))
    ));
    let mut payload = encode_response(&Response::Poll {
        n_shards: 1,
        entries: vec![],
    });
    payload[0] = 0;
    assert!(matches!(
        Response::decode(&payload),
        Err(dyndens_serve::DecodeFailure::UnsupportedVersion(0))
    ));
}

#[test]
fn unknown_tags_are_rejected_with_the_tag() {
    let payload = [dyndens_serve::PROTOCOL_VERSION, 0x42];
    assert!(matches!(
        Request::decode(&payload),
        Err(dyndens_serve::DecodeFailure::UnknownTag(0x42))
    ));
    assert!(matches!(
        Response::decode(&payload),
        Err(dyndens_serve::DecodeFailure::UnknownTag(0x42))
    ));
}
