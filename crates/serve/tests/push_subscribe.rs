//! Push-mode serving: the `Subscribe`/`Push` protocol exercised end to end
//! against a live fleet — catch-up on subscribe, live fan-out as shards
//! publish, clean unsubscribe back to request/reply mode, non-blocking
//! `try_next`, the typed slow-consumer severance, and the threaded
//! fallback's typed rejection.

use std::time::{Duration, Instant};

use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_graph::{EdgeUpdate, VertexId};
use dyndens_serve::{Client, ClientError, ErrorCode, Mirror, ServeMode, StoryServer};
use dyndens_shard::{ShardConfig, ShardedDynDens};

fn fleet(n_shards: usize) -> ShardedDynDens<AvgWeight> {
    ShardedDynDens::new(
        AvgWeight,
        DynDensConfig::new(1.0, 4).with_delta_it(0.15),
        ShardConfig::new(n_shards)
            .with_max_batch(64)
            .with_top_k(usize::MAX),
    )
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Deterministic community-structured edge stream: disjoint groups of 4–5
/// vertices with per-pair weights clamped below the too-dense regime, so
/// delta reconstruction is exact (the same workload shape the top-level
/// serving-equivalence suite uses).
fn updates(n: usize, n_groups: usize, seed: u64) -> Vec<EdgeUpdate> {
    const MAX_PAIR_WEIGHT: f64 = 1.45;
    let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut weights: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let g = (rng.next() as usize) % n_groups;
        let size = (4 + g % 2) as u32;
        let base = (g * 8) as u32;
        let a = base + rng.next() as u32 % size;
        let b = base + rng.next() as u32 % size;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let current = *weights.get(&key).unwrap_or(&0.0);
        let magnitude = 0.02 + ((rng.next() % 100) as f64) * 0.001;
        let delta = if rng.next() % 100 < 15 {
            if current <= 0.0 {
                continue;
            }
            -magnitude.min(current)
        } else {
            magnitude.min(MAX_PAIR_WEIGHT - current)
        };
        if delta.abs() < 1e-9 {
            continue;
        }
        *weights.entry(key).or_insert(0.0) += delta;
        out.push(EdgeUpdate::new(VertexId(a), VertexId(b), delta));
    }
    out
}

/// A stream that first builds thousands of disjoint *marginally* dense
/// 4-cliques, then round-robins one edge of each across the density
/// threshold: every touch makes its story appear or disappear, and only
/// threshold crossings are evented — so each publication carries hundreds
/// of events and every flush pushes a meaty delta batch.
fn churn_updates(n: usize) -> Vec<EdgeUpdate> {
    const GROUPS: u32 = 2_000;
    let mut out = Vec::with_capacity(n);
    for g in 0..GROUPS {
        let base = g * 8;
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                out.push(EdgeUpdate::new(
                    VertexId(base + i),
                    VertexId(base + j),
                    1.02,
                ));
            }
        }
    }
    // Swinging one edge by 0.6 moves the clique's average weight across the
    // 1.0 threshold: 1.02 -> 0.92 -> 1.02 -> ...
    let mut sign = -1.0;
    let mut g: u32 = 0;
    while out.len() < n {
        let base = g * 8;
        out.push(EdgeUpdate::new(
            VertexId(base),
            VertexId(base + 1),
            0.6 * sign,
        ));
        g += 1;
        if g == GROUPS {
            g = 0;
            sign = -sign;
        }
    }
    out.truncate(n);
    out
}

fn client(server: &StoryServer) -> Client {
    Client::builder()
        .read_timeout(Some(Duration::from_secs(60)))
        .connect(server.local_addr())
        .expect("connect")
}

/// Drives the subscription until the mirror's cursor matches `target`.
fn drain_until(sub: &mut dyndens_serve::Subscription, mirror: &mut Mirror, target: &[u64]) {
    while mirror.cursor() != target {
        let batch = sub
            .recv()
            .expect("subscription healthy")
            .expect("server alive");
        mirror.apply(&batch).expect("push applies");
    }
}

#[test]
fn subscribe_catches_up_follows_live_and_unsubscribes() {
    let mut fleet = fleet(2);
    let stream = updates(4_000, 32, 7);
    let (head, tail) = stream.split_at(2_000);

    // Publish the head before anyone subscribes: the subscriber must get it
    // as an immediate catch-up push, not wait for the next publication.
    fleet.apply_batch(head);
    fleet.flush();

    let server = StoryServer::builder(fleet.view())
        .workers(1)
        .bind("127.0.0.1:0")
        .unwrap();
    let sub_client = client(&server);
    let mut sub = sub_client.subscribe(&[]).expect("subscribe");
    assert_eq!(sub.n_shards(), 2);

    let view = fleet.view();
    let mut mirror = Mirror::new();
    drain_until(&mut sub, &mut mirror, &view.per_shard_seq());
    assert_eq!(server.subscribers(), 1);

    // Live phase: every flush publishes; pushes must carry the mirror to the
    // exact same per-shard cursor with no further request from the client.
    for chunk in tail.chunks(256) {
        fleet.apply_batch(chunk);
        fleet.flush();
    }
    drain_until(&mut sub, &mut mirror, &view.per_shard_seq());

    // The pushed mirror reconstructs the identical story sets (Mirror keeps
    // its sets ordered by vertex set, so sort the ground truth the same way).
    let merged = view.snapshot();
    let mut want: Vec<_> = merged.stories.iter().map(|(s, _)| s.clone()).collect();
    want.sort();
    assert_eq!(
        mirror.vertex_sets(),
        want,
        "push-fed story sets diverge from the in-process view"
    );
    assert!(mirror.events_applied() > 0);

    // Unsubscribe hands back a request/reply client on the same connection.
    let mut back = sub.unsubscribe().expect("unsubscribe");
    assert_eq!(server.subscribers(), 0);
    let (per_shard_seq, _) = back.top_k(u32::MAX).unwrap();
    assert_eq!(per_shard_seq, view.per_shard_seq());

    let stats = server.serve_stats();
    assert!(
        stats.pushes_sent >= 2,
        "catch-up plus at least one live push"
    );
    assert_eq!(stats.slow_evictions, 0);
}

#[test]
fn try_next_is_nonblocking_and_sees_later_publications() {
    let fleet = fleet(2);
    let server = StoryServer::builder(fleet.view())
        .workers(1)
        .bind("127.0.0.1:0")
        .unwrap();

    // Nothing has published: subscribing sends no catch-up frame, and
    // try_next must return immediately with nothing rather than block.
    let mut sub = client(&server).subscribe(&[]).expect("subscribe");
    assert!(sub.try_next().expect("idle poll").is_none());

    fleet.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), 2.0));
    fleet.flush();

    let deadline = Instant::now() + Duration::from_secs(60);
    let batch = loop {
        if let Some(batch) = sub.try_next().expect("poll") {
            break batch;
        }
        assert!(Instant::now() < deadline, "push never arrived");
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(batch.n_shards, 2);
    assert!(!batch.entries.is_empty());
}

#[test]
fn slow_subscriber_is_evicted_while_healthy_one_keeps_receiving() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    let mut fleet = fleet(2);
    let server = StoryServer::builder(fleet.view())
        .workers(1)
        // Small enough that a subscriber whose socket stops draining
        // overflows within a few hundred KB of published deltas; large
        // enough that a live reader rides out fan-out bursts.
        .write_queue_bytes(256 * 1024)
        .bind("127.0.0.1:0")
        .unwrap();

    // The laggard subscribes and then never reads; the healthy subscriber
    // drains continuously on its own thread and must never be severed.
    let mut laggard = client(&server).subscribe(&[]).expect("laggard subscribe");
    let healthy = Client::builder()
        .read_timeout(Some(Duration::from_millis(20)))
        .connect(server.local_addr())
        .expect("connect")
        .subscribe(&[])
        .expect("healthy subscribe");

    // Once the main thread knows the final cursor it parks it here; the
    // drainer exits as soon as its mirror reaches it.
    let finish_line: Arc<Mutex<Option<Vec<u64>>>> = Arc::new(Mutex::new(None));
    let severed = Arc::new(AtomicBool::new(false));
    let drainer = {
        let finish_line = Arc::clone(&finish_line);
        let severed = Arc::clone(&severed);
        std::thread::spawn(move || {
            let mut sub = healthy;
            let mut mirror = Mirror::new();
            let deadline = Instant::now() + Duration::from_secs(120);
            loop {
                match sub.recv() {
                    Ok(Some(batch)) => {
                        mirror.apply(&batch).expect("push applies");
                    }
                    Ok(None) => break,
                    Err(ClientError::Io(e))
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => {
                        severed.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                if let Some(target) = finish_line.lock().unwrap().as_ref() {
                    if mirror.cursor() == target.as_slice() {
                        break;
                    }
                }
                if Instant::now() > deadline {
                    break;
                }
            }
            mirror
        })
    };

    // Publish in small paced chunks until the laggard's queue overflows.
    let stream = churn_updates(400_000);
    let mut evicted = false;
    for chunk in stream.chunks(200) {
        fleet.apply_batch(chunk);
        fleet.flush();
        if server.serve_stats().slow_evictions > 0 {
            evicted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        evicted,
        "laggard was never evicted: the write-queue bound is not enforced ({:?})",
        server.serve_stats()
    );

    // The laggard's connection was severed with a typed final frame: its
    // queued pushes drain first, then the severance surfaces.
    let verdict = loop {
        match laggard.recv() {
            Ok(Some(_)) => continue,
            other => break other,
        }
    };
    match verdict {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::SlowConsumer),
        other => panic!("expected a SlowConsumer severance, got {other:?}"),
    }

    // The healthy subscriber is unaffected: it catches up to the exact
    // final cursor and was never severed.
    let target = fleet.view().per_shard_seq();
    *finish_line.lock().unwrap() = Some(target.clone());
    let mirror = drainer.join().expect("drainer thread");
    assert!(
        !severed.load(Ordering::SeqCst),
        "the healthy subscriber must keep receiving while the laggard is cut"
    );
    assert_eq!(
        mirror.cursor(),
        target.as_slice(),
        "the healthy subscriber missed publications"
    );

    let stats = server.serve_stats();
    assert!(stats.slow_evictions >= 1);
    assert!(
        stats.error_replies >= 1,
        "severance counts as an error reply"
    );
}

#[test]
fn threaded_mode_rejects_subscribe_with_typed_error() {
    let fleet = fleet(1);
    let server = StoryServer::builder(fleet.view())
        .mode(ServeMode::Threaded)
        .bind("127.0.0.1:0")
        .unwrap();

    let c = client(&server);
    match c.subscribe(&[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("threaded mode must reject Subscribe, got {other:?}"),
    }

    // The connection the failed subscribe consumed is gone, but the server
    // keeps serving request/reply clients.
    let mut c = client(&server);
    let (per_shard_seq, _) = c.top_k(1).unwrap();
    assert_eq!(per_shard_seq, vec![0]);
}
