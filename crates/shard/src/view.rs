//! The non-blocking read path: per-shard epoch cells and the merged story
//! view.

use std::sync::{Arc, Mutex};

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::VertexSet;

/// Sorts stories densest first, with ties broken by vertex set so snapshots
/// are deterministic. Shared by the per-shard publication path and the merged
/// view so the two orderings can never diverge.
pub(crate) fn sort_stories(stories: &mut [(VertexSet, f64)]) {
    stories.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
}

/// An ArcSwap-style epoch pointer: writers publish immutable snapshots by
/// swapping an `Arc`, readers grab the current `Arc` and then read entirely
/// lock-free.
///
/// The critical section on either side is a single pointer clone/store — a
/// handful of nanoseconds — so readers never block writers for the duration
/// of a read, and writers never block readers for the duration of an update.
/// (A dedicated lock-free `ArcSwap` would remove even that window; this
/// std-only cell keeps the same API shape so one can be dropped in later.)
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// Creates a cell holding `value` as its first epoch.
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// Returns the current epoch's snapshot.
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("epoch cell poisoned").clone()
    }

    /// Publishes a new epoch.
    pub fn store(&self, value: Arc<T>) {
        *self.slot.lock().expect("epoch cell poisoned") = value;
    }
}

/// An immutable, sequence-numbered view of one shard, published by its worker
/// after every micro-batch.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// The shard index this snapshot belongs to.
    pub shard: usize,
    /// Number of updates this shard has applied so far. Monotone; readers can
    /// use it to detect progress and to order snapshots of the same shard.
    pub seq: u64,
    /// The shard's current output-dense subgraphs, densest first (ties broken
    /// by vertex set), truncated to the configured `top_k`.
    pub top_stories: Vec<(VertexSet, f64)>,
    /// Total number of output-dense subgraphs in the shard (may exceed
    /// `top_stories.len()`).
    pub output_dense: usize,
    /// The shard engine's cumulative work counters.
    pub stats: EngineStats,
    /// The shard's `seq` before the micro-batch that produced this snapshot;
    /// [`ShardSnapshot::delta_events`] covers updates
    /// `delta_base_seq..seq`.
    pub delta_base_seq: u64,
    /// The [`DenseEvent`]s emitted by the micro-batch that produced this
    /// snapshot (the stream a subscriber would tail for incremental story
    /// changes).
    pub delta_events: Vec<DenseEvent>,
}

impl ShardSnapshot {
    /// The empty snapshot a shard starts from.
    pub fn empty(shard: usize) -> Self {
        ShardSnapshot {
            shard,
            ..Default::default()
        }
    }
}

/// The merged, sequence-numbered answer served to readers.
#[derive(Debug, Clone)]
pub struct MergedStories {
    /// Sum of the per-shard sequence numbers: the total number of updates
    /// reflected in this view. Monotone across snapshots of the same view.
    pub seq: u64,
    /// The per-shard sequence numbers backing [`MergedStories::seq`].
    pub per_shard_seq: Vec<u64>,
    /// The merged top-k output-dense subgraphs, densest first.
    pub stories: Vec<(VertexSet, f64)>,
    /// Total number of output-dense subgraphs across all shards.
    pub output_dense_total: usize,
}

/// A cheap, cloneable handle for reading merged story snapshots without
/// coordinating with the ingest path.
#[derive(Debug, Clone)]
pub struct StoryView {
    cells: Arc<Vec<EpochCell<ShardSnapshot>>>,
    top_k: usize,
}

impl StoryView {
    pub(crate) fn new(cells: Arc<Vec<EpochCell<ShardSnapshot>>>, top_k: usize) -> Self {
        StoryView { cells, top_k }
    }

    /// Number of shards feeding this view.
    pub fn n_shards(&self) -> usize {
        self.cells.len()
    }

    /// The latest published snapshot of one shard.
    pub fn shard_snapshot(&self, shard: usize) -> Arc<ShardSnapshot> {
        self.cells[shard].load()
    }

    /// Merges the latest per-shard snapshots into a top-k story view.
    ///
    /// Reads are wait-free with respect to ingest up to the epoch-pointer
    /// clone; the merge itself runs on the reader's thread over immutable
    /// data. Each call observes each shard's latest published epoch, so `seq`
    /// is monotone over repeated calls.
    pub fn snapshot(&self) -> MergedStories {
        let shards: Vec<Arc<ShardSnapshot>> = self.cells.iter().map(|c| c.load()).collect();
        let per_shard_seq: Vec<u64> = shards.iter().map(|s| s.seq).collect();
        let seq = per_shard_seq.iter().sum();
        let output_dense_total = shards.iter().map(|s| s.output_dense).sum();
        let mut stories: Vec<(VertexSet, f64)> = shards
            .iter()
            .flat_map(|s| s.top_stories.iter().cloned())
            .collect();
        sort_stories(&mut stories);
        stories.truncate(self.top_k);
        MergedStories {
            seq,
            per_shard_seq,
            stories,
            output_dense_total,
        }
    }

    /// The merged cumulative work counters of all shards, as of their latest
    /// published snapshots.
    pub fn stats(&self) -> EngineStats {
        let shards: Vec<Arc<ShardSnapshot>> = self.cells.iter().map(|c| c.load()).collect();
        EngineStats::merged(shards.iter().map(|s| &s.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::VertexSet;

    fn snap(shard: usize, seq: u64, stories: &[(&[u32], f64)]) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            seq,
            top_stories: stories
                .iter()
                .map(|(ids, d)| (VertexSet::from_ids(ids), *d))
                .collect(),
            output_dense: stories.len(),
            ..Default::default()
        }
    }

    #[test]
    fn epoch_cell_swaps_epochs() {
        let cell = EpochCell::new(1u32);
        let old = cell.load();
        cell.store(Arc::new(2));
        assert_eq!(*old, 1, "readers keep their epoch");
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn merged_snapshot_is_sorted_and_truncated() {
        let cells = Arc::new(vec![
            EpochCell::new(snap(0, 10, &[(&[0, 4], 1.5), (&[0, 8], 0.9)])),
            EpochCell::new(snap(1, 5, &[(&[1, 5], 1.2), (&[1, 9], 1.6)])),
        ]);
        let view = StoryView::new(cells, 3);
        assert_eq!(view.n_shards(), 2);
        let merged = view.snapshot();
        assert_eq!(merged.seq, 15);
        assert_eq!(merged.per_shard_seq, vec![10, 5]);
        assert_eq!(merged.output_dense_total, 4);
        assert_eq!(merged.stories.len(), 3);
        let densities: Vec<f64> = merged.stories.iter().map(|(_, d)| *d).collect();
        assert_eq!(densities, vec![1.6, 1.5, 1.2]);
        assert_eq!(view.shard_snapshot(1).seq, 5);
    }

    #[test]
    fn view_stats_merge_shards() {
        let mut a = snap(0, 1, &[]);
        a.stats.updates = 3;
        let mut b = snap(1, 1, &[]);
        b.stats.updates = 4;
        let view = StoryView::new(Arc::new(vec![EpochCell::new(a), EpochCell::new(b)]), 4);
        assert_eq!(view.stats().updates, 7);
    }
}
