//! The non-blocking read path: per-shard epoch cells, the bounded delta
//! retention ring, and the merged story view.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::VertexSet;

/// A publication callback attached to an [`EpochCell`] (or, through
/// [`StoryView::watch`], to every cell of a fleet).
///
/// `wake` runs on the **publishing thread** (a shard worker, or the facade
/// during a split/merge), immediately after the new epoch became visible. It
/// must therefore be cheap and non-blocking — the intended implementation is
/// an edge-style wakeup (write one byte to a self-pipe, set a flag), with all
/// real work done by the woken thread. This is the hook an event-driven
/// server uses to fan out `DeltaRing` micro-batches to push subscribers
/// without polling.
pub trait PublishWaker: Send + Sync {
    /// Notifies the waker that a publication happened; `seq` is the cell's
    /// sequence number at publication (unchanged for plain [`EpochCell::store`]
    /// publications such as roster swaps).
    fn wake(&self, seq: u64);
}

/// Sorts stories densest first, with ties broken by vertex set so snapshots
/// are deterministic. Shared by the per-shard publication path and the merged
/// view so the two orderings can never diverge.
pub(crate) fn sort_stories(stories: &mut [(VertexSet, f64)]) {
    stories.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
}

/// An ArcSwap-style epoch pointer: writers publish immutable snapshots by
/// swapping an `Arc`, readers grab the current `Arc` and then read entirely
/// lock-free.
///
/// The critical section on either side is a single pointer clone/store — a
/// handful of nanoseconds — so readers never block writers for the duration
/// of a read, and writers never block readers for the duration of an update.
/// (A dedicated lock-free `ArcSwap` would remove even that window; this
/// std-only cell keeps the same API shape so one can be dropped in later.)
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: Mutex<Arc<T>>,
    /// The publication sequence number of the current epoch, readable
    /// without touching the slot's lock. This is what makes network `Poll`
    /// requests cheap: a server answering "has shard `i` advanced past seq
    /// `s`?" performs one relaxed atomic load per shard and touches the
    /// snapshot itself only for shards that actually advanced.
    seq: AtomicU64,
    /// Publication wakers, held weakly so a departed subscriber system (a
    /// dropped server) unregisters itself by dropping its `Arc`. Dead weaks
    /// are swept on every notify and every attach.
    watchers: Mutex<Vec<Weak<dyn PublishWaker>>>,
}

impl<T> EpochCell<T> {
    /// Creates a cell holding `value` as its first epoch, at sequence 0.
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: Mutex::new(Arc::new(value)),
            seq: AtomicU64::new(0),
            watchers: Mutex::new(Vec::new()),
        }
    }

    /// Returns the current epoch's snapshot.
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("epoch cell poisoned").clone()
    }

    /// Publishes a new epoch, leaving the sequence number unchanged, and
    /// wakes every attached watcher.
    pub fn store(&self, value: Arc<T>) {
        *self.slot.lock().expect("epoch cell poisoned") = value;
        self.notify(self.seq());
    }

    /// Publishes a new epoch stamped with its publication sequence number,
    /// and wakes every attached watcher.
    pub fn store_with_seq(&self, value: Arc<T>, seq: u64) {
        *self.slot.lock().expect("epoch cell poisoned") = value;
        self.seq.store(seq, Ordering::Release);
        self.notify(seq);
    }

    /// The sequence number of the latest published epoch, without locking.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Attaches a publication waker to this cell. The cell holds it weakly,
    /// so dropping the last strong `Arc` detaches it; re-attaching the same
    /// waker is a no-op, so callers can idempotently re-walk a fleet after a
    /// topology change without growing the watcher list.
    pub fn watch(&self, waker: &Arc<dyn PublishWaker>) {
        let mut watchers = self.watchers.lock().expect("watcher list poisoned");
        watchers.retain(|w| w.strong_count() > 0);
        if !watchers.iter().any(|w| w.ptr_eq(&Arc::downgrade(waker))) {
            watchers.push(Arc::downgrade(waker));
        }
    }

    /// Wakes every live watcher, outside the slot lock (publication is
    /// already visible when the callbacks run).
    fn notify(&self, seq: u64) {
        let mut watchers = self.watchers.lock().expect("watcher list poisoned");
        watchers.retain(|w| match w.upgrade() {
            Some(waker) => {
                waker.wake(seq);
                true
            }
            None => false,
        });
    }
}

/// One published micro-batch of [`DenseEvent`]s, retained by a shard's
/// [`DeltaRing`]. Covers updates `base_seq..seq` of its shard; consecutive
/// retained batches are contiguous (`batch[i].seq == batch[i + 1].base_seq`).
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// The shard's sequence number before the micro-batch.
    pub base_seq: u64,
    /// The shard's sequence number after the micro-batch.
    pub seq: u64,
    /// The events the micro-batch emitted (often empty — retention is cheap).
    pub events: Arc<[DenseEvent]>,
}

/// A bounded ring of the most recent [`DeltaBatch`]es published by one shard.
///
/// This is what turns the per-micro-batch delta stream into something a
/// remote reader can *poll*: a client that last saw sequence `s` asks for
/// everything after `s`, and as long as `s` is still covered by the ring the
/// answer is the exact event suffix — no long-polling, no subscription state
/// on the server. A client that fell further behind than the retention bound
/// is told to resynchronise from the full snapshot instead
/// ([`DeltaCatchUp::Resync`]).
#[derive(Debug)]
pub struct DeltaRing {
    batches: Mutex<VecDeque<DeltaBatch>>,
    capacity: usize,
}

impl DeltaRing {
    /// Creates an empty ring retaining up to `capacity` micro-batches.
    pub fn new(capacity: usize) -> Self {
        DeltaRing {
            batches: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    /// Appends one published micro-batch, evicting the oldest batch once the
    /// retention bound is reached.
    pub fn push(&self, batch: DeltaBatch) {
        let mut batches = self.batches.lock().expect("delta ring poisoned");
        if batches.len() == self.capacity {
            batches.pop_front();
        }
        batches.push_back(batch);
    }

    /// The earliest sequence number a [`catch_up`](DeltaRing::catch_up) from
    /// this ring can serve deltas for, or `None` while the ring is empty
    /// (nothing published yet, or a deployment freshly recovered — its
    /// pre-crash event stream is gone by design).
    pub fn coverage_from(&self) -> Option<u64> {
        self.batches
            .lock()
            .expect("delta ring poisoned")
            .front()
            .map(|b| b.base_seq)
    }

    /// The events after `since_seq`, if the ring still covers it.
    pub fn catch_up(&self, since_seq: u64) -> DeltaCatchUp {
        let batches = self.batches.lock().expect("delta ring poisoned");
        let Some(newest) = batches.back() else {
            return DeltaCatchUp::Resync;
        };
        if since_seq >= newest.seq {
            return DeltaCatchUp::Current;
        }
        if batches.front().expect("non-empty ring").base_seq > since_seq {
            return DeltaCatchUp::Resync;
        }
        let to_seq = newest.seq;
        let events = batches
            .iter()
            .filter(|b| b.seq > since_seq)
            .flat_map(|b| b.events.iter().cloned())
            .collect();
        DeltaCatchUp::Events { to_seq, events }
    }
}

/// The answer to "what changed in this shard after sequence `s`?".
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaCatchUp {
    /// Nothing: the shard has not advanced past the asked-for sequence.
    Current,
    /// The exact [`DenseEvent`] suffix covering `since_seq..to_seq`. Applying
    /// the events in order to the story set the reader held at `since_seq`
    /// yields the story set at `to_seq`.
    Events {
        /// The shard sequence number the events catch the reader up to.
        to_seq: u64,
        /// The events, in publication order.
        events: Vec<DenseEvent>,
    },
    /// The reader is further behind than the retention bound (or the shard
    /// just recovered from a crash and the pre-crash event stream is gone):
    /// it must rebase on the shard's full published snapshot.
    Resync,
}

/// An immutable, sequence-numbered view of one shard, published by its worker
/// after every micro-batch.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// The shard index this snapshot belongs to.
    pub shard: usize,
    /// Number of updates this shard has applied so far. Monotone; readers can
    /// use it to detect progress and to order snapshots of the same shard.
    pub seq: u64,
    /// The shard's current output-dense subgraphs, densest first (ties broken
    /// by vertex set), truncated to the configured `top_k`.
    pub top_stories: Vec<(VertexSet, f64)>,
    /// Total number of output-dense subgraphs in the shard (may exceed
    /// `top_stories.len()`).
    pub output_dense: usize,
    /// The shard engine's cumulative work counters.
    pub stats: EngineStats,
    /// The shard's `seq` before the micro-batch that produced this snapshot;
    /// [`ShardSnapshot::delta_events`] covers updates
    /// `delta_base_seq..seq`.
    pub delta_base_seq: u64,
    /// The [`DenseEvent`]s emitted by the micro-batch that produced this
    /// snapshot (the stream a subscriber would tail for incremental story
    /// changes). Shared with the shard's [`DeltaRing`] batch, so publication
    /// materialises the event list once.
    pub delta_events: Arc<[DenseEvent]>,
}

impl ShardSnapshot {
    /// The empty snapshot a shard starts from.
    pub fn empty(shard: usize) -> Self {
        ShardSnapshot {
            shard,
            ..Default::default()
        }
    }
}

/// The merged, sequence-numbered answer served to readers.
#[derive(Debug, Clone)]
pub struct MergedStories {
    /// Sum of the per-shard sequence numbers: the total number of updates
    /// reflected in this view. Monotone across snapshots of the same view.
    pub seq: u64,
    /// The per-shard sequence numbers backing [`MergedStories::seq`].
    pub per_shard_seq: Vec<u64>,
    /// The merged top-k output-dense subgraphs, densest first.
    pub stories: Vec<(VertexSet, f64)>,
    /// Total number of output-dense subgraphs across all shards.
    pub output_dense_total: usize,
}

/// The current worker roster: one epoch cell and one delta ring per live
/// worker slot. The roster itself is published through an [`EpochCell`] so
/// that a shard split (which grows the fleet) is observed by every
/// [`StoryView`] clone on its next read — cells and rings are individually
/// `Arc`-shared, so untouched shards keep publishing into the same objects
/// across roster generations.
#[derive(Debug, Clone)]
pub(crate) struct ShardRoster {
    pub(crate) cells: Vec<Arc<EpochCell<ShardSnapshot>>>,
    pub(crate) rings: Vec<Arc<DeltaRing>>,
}

/// A cheap, cloneable handle for reading merged story snapshots without
/// coordinating with the ingest path.
///
/// The view always reflects the **current topology**: after a shard split,
/// [`n_shards`](StoryView::n_shards) grows, the split slot's delta ring
/// starts empty (pollers resynchronise from its snapshot, exactly as after
/// crash recovery) and the new slot appears with the split point's sequence
/// number.
#[derive(Debug, Clone)]
pub struct StoryView {
    roster: Arc<EpochCell<ShardRoster>>,
    top_k: usize,
}

impl StoryView {
    pub(crate) fn new(roster: Arc<EpochCell<ShardRoster>>, top_k: usize) -> Self {
        StoryView { roster, top_k }
    }

    /// Number of shards feeding this view (grows across splits).
    pub fn n_shards(&self) -> usize {
        self.roster.load().cells.len()
    }

    /// Attaches `waker` to the roster cell and to every current shard cell,
    /// so it fires on every worker publication *and* on every topology change
    /// (split/merge roster swap). Attachment is idempotent per cell, and the
    /// cells hold the waker weakly — dropping the last strong `Arc` detaches
    /// it everywhere.
    ///
    /// A split adds shard cells this call has not seen; because the roster
    /// swap itself wakes the waker, a subscriber system re-calls `watch`
    /// whenever it observes [`n_shards`](StoryView::n_shards) change, which
    /// covers the new cells before any client can fall behind on them
    /// (fresh split slots start with an empty delta ring anyway, so their
    /// first publication forces a resync).
    pub fn watch(&self, waker: &Arc<dyn PublishWaker>) {
        self.roster.watch(waker);
        for cell in &self.roster.load().cells {
            cell.watch(waker);
        }
    }

    /// The latest published snapshot of one shard.
    pub fn shard_snapshot(&self, shard: usize) -> Arc<ShardSnapshot> {
        self.roster.load().cells[shard].load()
    }

    /// The latest published sequence number of one shard: a single atomic
    /// load past the roster pointer, no locks, no snapshot traffic. The
    /// primitive a polling server uses to decide whether a shard has
    /// anything new for a client.
    #[inline]
    pub fn shard_seq(&self, shard: usize) -> u64 {
        self.roster.load().cells[shard].seq()
    }

    /// The latest published sequence numbers of all shards (one atomic load
    /// each).
    pub fn per_shard_seq(&self) -> Vec<u64> {
        self.roster.load().cells.iter().map(|c| c.seq()).collect()
    }

    /// The [`DenseEvent`]s of `shard` after `since_seq`, served from the
    /// shard's bounded [`DeltaRing`]: [`DeltaCatchUp::Current`] if the shard
    /// has not advanced, the exact contiguous event suffix if retention still
    /// covers `since_seq`, and [`DeltaCatchUp::Resync`] if the reader fell
    /// behind the retention bound and must rebase on
    /// [`shard_snapshot`](StoryView::shard_snapshot).
    pub fn deltas_since(&self, shard: usize, since_seq: u64) -> DeltaCatchUp {
        self.roster.load().rings[shard].catch_up(since_seq)
    }

    /// The earliest sequence number [`deltas_since`](StoryView::deltas_since)
    /// can serve deltas for on `shard`, or `None` while nothing has been
    /// published since construction (or recovery, or a split of this shard).
    pub fn delta_coverage_from(&self, shard: usize) -> Option<u64> {
        self.roster.load().rings[shard].coverage_from()
    }

    /// Merges the latest per-shard snapshots into a top-k story view.
    ///
    /// Reads are wait-free with respect to ingest up to the epoch-pointer
    /// clones; the merge itself runs on the reader's thread over immutable
    /// data. Each call observes each shard's latest published epoch, so
    /// per-shard sequence numbers are monotone over repeated calls (the
    /// *number* of shards can grow between calls when a split commits).
    pub fn snapshot(&self) -> MergedStories {
        let roster = self.roster.load();
        let shards: Vec<Arc<ShardSnapshot>> = roster.cells.iter().map(|c| c.load()).collect();
        let per_shard_seq: Vec<u64> = shards.iter().map(|s| s.seq).collect();
        let seq = per_shard_seq.iter().sum();
        let output_dense_total = shards.iter().map(|s| s.output_dense).sum();
        let mut stories: Vec<(VertexSet, f64)> = shards
            .iter()
            .flat_map(|s| s.top_stories.iter().cloned())
            .collect();
        sort_stories(&mut stories);
        stories.truncate(self.top_k);
        MergedStories {
            seq,
            per_shard_seq,
            stories,
            output_dense_total,
        }
    }

    /// The merged cumulative work counters of all shards, as of their latest
    /// published snapshots.
    pub fn stats(&self) -> EngineStats {
        let roster = self.roster.load();
        let shards: Vec<Arc<ShardSnapshot>> = roster.cells.iter().map(|c| c.load()).collect();
        EngineStats::merged(shards.iter().map(|s| &s.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::VertexSet;

    fn snap(shard: usize, seq: u64, stories: &[(&[u32], f64)]) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            seq,
            top_stories: stories
                .iter()
                .map(|(ids, d)| (VertexSet::from_ids(ids), *d))
                .collect(),
            output_dense: stories.len(),
            ..Default::default()
        }
    }

    fn view_of(cells: Vec<EpochCell<ShardSnapshot>>, top_k: usize) -> StoryView {
        let n = cells.len();
        let roster = ShardRoster {
            cells: cells.into_iter().map(Arc::new).collect(),
            rings: (0..n).map(|_| Arc::new(DeltaRing::new(8))).collect(),
        };
        StoryView::new(Arc::new(EpochCell::new(roster)), top_k)
    }

    #[test]
    fn epoch_cell_swaps_epochs() {
        let cell = EpochCell::new(1u32);
        let old = cell.load();
        cell.store(Arc::new(2));
        assert_eq!(*old, 1, "readers keep their epoch");
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.seq(), 0, "plain store leaves the seq untouched");
        cell.store_with_seq(Arc::new(3), 17);
        assert_eq!(cell.seq(), 17);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn publish_wakers_fire_and_detach() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct Recorder {
            wakes: AtomicUsize,
            last_seq: AtomicU64,
        }
        impl PublishWaker for Recorder {
            fn wake(&self, seq: u64) {
                self.wakes.fetch_add(1, Ordering::SeqCst);
                self.last_seq.store(seq, Ordering::SeqCst);
            }
        }

        let cell = EpochCell::new(0u32);
        let recorder = Arc::new(Recorder::default());
        let waker: Arc<dyn PublishWaker> = recorder.clone();
        cell.watch(&waker);
        cell.watch(&waker); // idempotent: re-attaching must not double-fire
        cell.store_with_seq(Arc::new(1), 5);
        assert_eq!(recorder.wakes.load(Ordering::SeqCst), 1);
        assert_eq!(recorder.last_seq.load(Ordering::SeqCst), 5);
        // A plain store (roster swap) also wakes, with the unchanged seq.
        cell.store(Arc::new(2));
        assert_eq!(recorder.wakes.load(Ordering::SeqCst), 2);
        assert_eq!(recorder.last_seq.load(Ordering::SeqCst), 5);
        // Dropping the last strong Arc detaches the waker.
        drop(waker);
        drop(recorder);
        cell.store_with_seq(Arc::new(3), 6);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn view_watch_covers_roster_and_shard_cells() {
        use std::sync::atomic::AtomicUsize;

        struct CountWaker(AtomicUsize);
        impl PublishWaker for CountWaker {
            fn wake(&self, _seq: u64) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let shard_cell = Arc::new(EpochCell::new(snap(0, 0, &[])));
        let roster_cell = Arc::new(EpochCell::new(ShardRoster {
            cells: vec![Arc::clone(&shard_cell)],
            rings: vec![Arc::new(DeltaRing::new(4))],
        }));
        let view = StoryView::new(Arc::clone(&roster_cell), 4);
        let counter = Arc::new(CountWaker(AtomicUsize::new(0)));
        let waker: Arc<dyn PublishWaker> = counter.clone();
        view.watch(&waker);

        shard_cell.store_with_seq(Arc::new(snap(0, 1, &[])), 1);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "worker publication");

        let grown = ShardRoster {
            cells: vec![
                Arc::clone(&shard_cell),
                Arc::new(EpochCell::new(snap(1, 0, &[]))),
            ],
            rings: vec![Arc::new(DeltaRing::new(4)), Arc::new(DeltaRing::new(4))],
        };
        roster_cell.store(Arc::new(grown));
        assert_eq!(counter.0.load(Ordering::SeqCst), 2, "roster swap");

        // Re-walking after the topology change covers the new cell without
        // double-attaching to the old ones.
        view.watch(&waker);
        let new_cell = Arc::clone(&roster_cell.load().cells[1]);
        new_cell.store_with_seq(Arc::new(snap(1, 2, &[])), 2);
        assert_eq!(counter.0.load(Ordering::SeqCst), 3, "new shard covered");
        shard_cell.store_with_seq(Arc::new(snap(0, 2, &[])), 2);
        assert_eq!(counter.0.load(Ordering::SeqCst), 4, "no double attach");
    }

    #[test]
    fn merged_snapshot_is_sorted_and_truncated() {
        let cells = vec![
            EpochCell::new(snap(0, 10, &[(&[0, 4], 1.5), (&[0, 8], 0.9)])),
            EpochCell::new(snap(1, 5, &[(&[1, 5], 1.2), (&[1, 9], 1.6)])),
        ];
        cells[0].store_with_seq(cells[0].load(), 10);
        cells[1].store_with_seq(cells[1].load(), 5);
        let view = view_of(cells, 3);
        assert_eq!(view.n_shards(), 2);
        let merged = view.snapshot();
        assert_eq!(merged.seq, 15);
        assert_eq!(merged.per_shard_seq, vec![10, 5]);
        assert_eq!(merged.output_dense_total, 4);
        assert_eq!(merged.stories.len(), 3);
        let densities: Vec<f64> = merged.stories.iter().map(|(_, d)| *d).collect();
        assert_eq!(densities, vec![1.6, 1.5, 1.2]);
        assert_eq!(view.shard_snapshot(1).seq, 5);
        assert_eq!(view.shard_seq(0), 10);
        assert_eq!(view.per_shard_seq(), vec![10, 5]);
    }

    #[test]
    fn view_stats_merge_shards() {
        let mut a = snap(0, 1, &[]);
        a.stats.updates = 3;
        let mut b = snap(1, 1, &[]);
        b.stats.updates = 4;
        let view = view_of(vec![EpochCell::new(a), EpochCell::new(b)], 4);
        assert_eq!(view.stats().updates, 7);
    }

    #[test]
    fn view_observes_roster_growth() {
        // A split publishes a grown roster through the same epoch cell the
        // view already holds: existing view clones see the new shard (and
        // the reused slot's cleared ring) on their next read.
        let roster_cell = Arc::new(EpochCell::new(ShardRoster {
            cells: vec![Arc::new(EpochCell::new(snap(0, 7, &[(&[0, 2], 1.0)])))],
            rings: vec![Arc::new(DeltaRing::new(4))],
        }));
        let view = StoryView::new(Arc::clone(&roster_cell), 4);
        let clone = view.clone();
        assert_eq!(view.n_shards(), 1);

        let old = roster_cell.load();
        let grown = ShardRoster {
            cells: vec![
                Arc::clone(&old.cells[0]),
                Arc::new(EpochCell::new(snap(1, 7, &[(&[1, 3], 1.4)]))),
            ],
            rings: vec![Arc::new(DeltaRing::new(4)), Arc::new(DeltaRing::new(4))],
        };
        roster_cell.store(Arc::new(grown));
        assert_eq!(clone.n_shards(), 2, "pre-split clones observe the growth");
        assert_eq!(clone.snapshot().stories.len(), 2);
        // The reused slot's fresh ring is empty: pollers resync, like after
        // crash recovery.
        assert_eq!(clone.deltas_since(0, 3), DeltaCatchUp::Resync);
        // The untouched cell object is shared: a publication through the old
        // roster's cell is visible through the new roster.
        old.cells[0].store_with_seq(Arc::new(snap(0, 9, &[])), 9);
        assert_eq!(clone.shard_seq(0), 9);
    }

    fn became(ids: &[u32]) -> DenseEvent {
        DenseEvent::BecameOutputDense {
            vertices: VertexSet::from_ids(ids),
            density: 1.0,
        }
    }

    #[test]
    fn delta_ring_serves_contiguous_suffixes() {
        let ring = DeltaRing::new(3);
        assert_eq!(ring.catch_up(0), DeltaCatchUp::Resync, "empty ring");
        assert_eq!(ring.coverage_from(), None);
        for (base, seq, ids) in [(0u64, 2u64, &[0u32][..]), (2, 5, &[1]), (5, 6, &[2])] {
            ring.push(DeltaBatch {
                base_seq: base,
                seq,
                events: vec![became(ids)].into(),
            });
        }
        assert_eq!(ring.coverage_from(), Some(0));
        assert_eq!(ring.catch_up(6), DeltaCatchUp::Current);
        assert_eq!(ring.catch_up(9), DeltaCatchUp::Current, "reader ahead");
        match ring.catch_up(2) {
            DeltaCatchUp::Events { to_seq, events } => {
                assert_eq!(to_seq, 6);
                assert_eq!(events, vec![became(&[1]), became(&[2])]);
            }
            other => panic!("expected events, got {other:?}"),
        }
        // A fourth batch evicts the oldest: seq 0 is no longer covered.
        ring.push(DeltaBatch {
            base_seq: 6,
            seq: 9,
            events: Vec::new().into(),
        });
        assert_eq!(ring.coverage_from(), Some(2));
        assert_eq!(ring.catch_up(0), DeltaCatchUp::Resync);
        assert!(matches!(ring.catch_up(2), DeltaCatchUp::Events { .. }));
    }

    #[test]
    fn delta_ring_with_retention_one_keeps_only_the_newest_batch() {
        let ring = DeltaRing::new(1);
        // The constructor clamps a degenerate capacity to one.
        let clamped = DeltaRing::new(0);
        for r in [&ring, &clamped] {
            r.push(DeltaBatch {
                base_seq: 0,
                seq: 3,
                events: vec![became(&[0])].into(),
            });
            r.push(DeltaBatch {
                base_seq: 3,
                seq: 5,
                events: vec![became(&[1])].into(),
            });
            assert_eq!(r.coverage_from(), Some(3), "only the newest batch lives");
            // A reader at the surviving batch's base gets exactly it.
            match r.catch_up(3) {
                DeltaCatchUp::Events { to_seq, events } => {
                    assert_eq!(to_seq, 5);
                    assert_eq!(events, vec![became(&[1])]);
                }
                other => panic!("expected events, got {other:?}"),
            }
            // One batch further back is already out of retention.
            assert_eq!(r.catch_up(0), DeltaCatchUp::Resync);
            assert_eq!(r.catch_up(5), DeltaCatchUp::Current);
        }
    }

    #[test]
    fn delta_ring_poll_exactly_at_wrap_boundary() {
        // Capacity 3; the fourth push evicts the first batch. A reader whose
        // cursor sits exactly on the evicted/retained boundary must get the
        // full retained suffix, one update past it must resync.
        let ring = DeltaRing::new(3);
        for (base, seq) in [(0u64, 10u64), (10, 20), (20, 30), (30, 40)] {
            ring.push(DeltaBatch {
                base_seq: base,
                seq,
                events: vec![became(&[(base / 10) as u32])].into(),
            });
        }
        assert_eq!(ring.coverage_from(), Some(10));
        // Exactly at the oldest retained batch's base: full suffix.
        match ring.catch_up(10) {
            DeltaCatchUp::Events { to_seq, events } => {
                assert_eq!(to_seq, 40);
                assert_eq!(events, vec![became(&[1]), became(&[2]), became(&[3])]);
            }
            other => panic!("expected events, got {other:?}"),
        }
        // One update older than the boundary: the suffix would be incomplete.
        assert_eq!(ring.catch_up(9), DeltaCatchUp::Resync);
        // Exactly at the newest published seq: current, not an empty suffix.
        assert_eq!(ring.catch_up(40), DeltaCatchUp::Current);
        // On an interior batch boundary: the suffix starts right there.
        match ring.catch_up(30) {
            DeltaCatchUp::Events { to_seq, events } => {
                assert_eq!(to_seq, 40);
                assert_eq!(events, vec![became(&[3])]);
            }
            other => panic!("expected events, got {other:?}"),
        }
    }

    #[test]
    fn deltas_since_across_a_seq_reset() {
        // A split (like crash recovery) replaces a shard's ring with an empty
        // one whose coverage restarts at the split point S, while readers
        // still hold cursors from the old regime. Every stale cursor must be
        // told to resync; post-reset publications serve normally.
        let ring = DeltaRing::new(4);
        ring.push(DeltaBatch {
            base_seq: 90,
            seq: 100,
            events: vec![became(&[7])].into(),
        });
        let fresh = DeltaRing::new(4); // the ring after the reset, empty at S = 100
        for cursor in [0, 42, 99, 100] {
            assert_eq!(
                fresh.catch_up(cursor),
                DeltaCatchUp::Resync,
                "cursor {cursor} must rebase on the snapshot"
            );
        }
        assert_eq!(fresh.coverage_from(), None);
        // First post-reset publication continues the sequence numbers.
        fresh.push(DeltaBatch {
            base_seq: 100,
            seq: 104,
            events: vec![became(&[8])].into(),
        });
        assert_eq!(fresh.coverage_from(), Some(100));
        // A reader current to the split point follows deltas seamlessly...
        match fresh.catch_up(100) {
            DeltaCatchUp::Events { to_seq, events } => {
                assert_eq!(to_seq, 104);
                assert_eq!(events, vec![became(&[8])]);
            }
            other => panic!("expected events, got {other:?}"),
        }
        // ...while pre-reset cursors still resync (their suffix is gone).
        assert_eq!(fresh.catch_up(95), DeltaCatchUp::Resync);
    }
}
