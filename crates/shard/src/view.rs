//! The non-blocking read path: per-shard epoch cells, the bounded delta
//! retention ring, and the merged story view.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dyndens_core::{DenseEvent, EngineStats};
use dyndens_graph::VertexSet;

/// Sorts stories densest first, with ties broken by vertex set so snapshots
/// are deterministic. Shared by the per-shard publication path and the merged
/// view so the two orderings can never diverge.
pub(crate) fn sort_stories(stories: &mut [(VertexSet, f64)]) {
    stories.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
}

/// An ArcSwap-style epoch pointer: writers publish immutable snapshots by
/// swapping an `Arc`, readers grab the current `Arc` and then read entirely
/// lock-free.
///
/// The critical section on either side is a single pointer clone/store — a
/// handful of nanoseconds — so readers never block writers for the duration
/// of a read, and writers never block readers for the duration of an update.
/// (A dedicated lock-free `ArcSwap` would remove even that window; this
/// std-only cell keeps the same API shape so one can be dropped in later.)
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: Mutex<Arc<T>>,
    /// The publication sequence number of the current epoch, readable
    /// without touching the slot's lock. This is what makes network `Poll`
    /// requests cheap: a server answering "has shard `i` advanced past seq
    /// `s`?" performs one relaxed atomic load per shard and touches the
    /// snapshot itself only for shards that actually advanced.
    seq: AtomicU64,
}

impl<T> EpochCell<T> {
    /// Creates a cell holding `value` as its first epoch, at sequence 0.
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: Mutex::new(Arc::new(value)),
            seq: AtomicU64::new(0),
        }
    }

    /// Returns the current epoch's snapshot.
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("epoch cell poisoned").clone()
    }

    /// Publishes a new epoch, leaving the sequence number unchanged.
    pub fn store(&self, value: Arc<T>) {
        *self.slot.lock().expect("epoch cell poisoned") = value;
    }

    /// Publishes a new epoch stamped with its publication sequence number.
    pub fn store_with_seq(&self, value: Arc<T>, seq: u64) {
        *self.slot.lock().expect("epoch cell poisoned") = value;
        self.seq.store(seq, Ordering::Release);
    }

    /// The sequence number of the latest published epoch, without locking.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

/// One published micro-batch of [`DenseEvent`]s, retained by a shard's
/// [`DeltaRing`]. Covers updates `base_seq..seq` of its shard; consecutive
/// retained batches are contiguous (`batch[i].seq == batch[i + 1].base_seq`).
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// The shard's sequence number before the micro-batch.
    pub base_seq: u64,
    /// The shard's sequence number after the micro-batch.
    pub seq: u64,
    /// The events the micro-batch emitted (often empty — retention is cheap).
    pub events: Arc<[DenseEvent]>,
}

/// A bounded ring of the most recent [`DeltaBatch`]es published by one shard.
///
/// This is what turns the per-micro-batch delta stream into something a
/// remote reader can *poll*: a client that last saw sequence `s` asks for
/// everything after `s`, and as long as `s` is still covered by the ring the
/// answer is the exact event suffix — no long-polling, no subscription state
/// on the server. A client that fell further behind than the retention bound
/// is told to resynchronise from the full snapshot instead
/// ([`DeltaCatchUp::Resync`]).
#[derive(Debug)]
pub struct DeltaRing {
    batches: Mutex<VecDeque<DeltaBatch>>,
    capacity: usize,
}

impl DeltaRing {
    /// Creates an empty ring retaining up to `capacity` micro-batches.
    pub fn new(capacity: usize) -> Self {
        DeltaRing {
            batches: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    /// Appends one published micro-batch, evicting the oldest batch once the
    /// retention bound is reached.
    pub fn push(&self, batch: DeltaBatch) {
        let mut batches = self.batches.lock().expect("delta ring poisoned");
        if batches.len() == self.capacity {
            batches.pop_front();
        }
        batches.push_back(batch);
    }

    /// The earliest sequence number a [`catch_up`](DeltaRing::catch_up) from
    /// this ring can serve deltas for, or `None` while the ring is empty
    /// (nothing published yet, or a deployment freshly recovered — its
    /// pre-crash event stream is gone by design).
    pub fn coverage_from(&self) -> Option<u64> {
        self.batches
            .lock()
            .expect("delta ring poisoned")
            .front()
            .map(|b| b.base_seq)
    }

    /// The events after `since_seq`, if the ring still covers it.
    pub fn catch_up(&self, since_seq: u64) -> DeltaCatchUp {
        let batches = self.batches.lock().expect("delta ring poisoned");
        let Some(newest) = batches.back() else {
            return DeltaCatchUp::Resync;
        };
        if since_seq >= newest.seq {
            return DeltaCatchUp::Current;
        }
        if batches.front().expect("non-empty ring").base_seq > since_seq {
            return DeltaCatchUp::Resync;
        }
        let to_seq = newest.seq;
        let events = batches
            .iter()
            .filter(|b| b.seq > since_seq)
            .flat_map(|b| b.events.iter().cloned())
            .collect();
        DeltaCatchUp::Events { to_seq, events }
    }
}

/// The answer to "what changed in this shard after sequence `s`?".
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaCatchUp {
    /// Nothing: the shard has not advanced past the asked-for sequence.
    Current,
    /// The exact [`DenseEvent`] suffix covering `since_seq..to_seq`. Applying
    /// the events in order to the story set the reader held at `since_seq`
    /// yields the story set at `to_seq`.
    Events {
        /// The shard sequence number the events catch the reader up to.
        to_seq: u64,
        /// The events, in publication order.
        events: Vec<DenseEvent>,
    },
    /// The reader is further behind than the retention bound (or the shard
    /// just recovered from a crash and the pre-crash event stream is gone):
    /// it must rebase on the shard's full published snapshot.
    Resync,
}

/// An immutable, sequence-numbered view of one shard, published by its worker
/// after every micro-batch.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// The shard index this snapshot belongs to.
    pub shard: usize,
    /// Number of updates this shard has applied so far. Monotone; readers can
    /// use it to detect progress and to order snapshots of the same shard.
    pub seq: u64,
    /// The shard's current output-dense subgraphs, densest first (ties broken
    /// by vertex set), truncated to the configured `top_k`.
    pub top_stories: Vec<(VertexSet, f64)>,
    /// Total number of output-dense subgraphs in the shard (may exceed
    /// `top_stories.len()`).
    pub output_dense: usize,
    /// The shard engine's cumulative work counters.
    pub stats: EngineStats,
    /// The shard's `seq` before the micro-batch that produced this snapshot;
    /// [`ShardSnapshot::delta_events`] covers updates
    /// `delta_base_seq..seq`.
    pub delta_base_seq: u64,
    /// The [`DenseEvent`]s emitted by the micro-batch that produced this
    /// snapshot (the stream a subscriber would tail for incremental story
    /// changes). Shared with the shard's [`DeltaRing`] batch, so publication
    /// materialises the event list once.
    pub delta_events: Arc<[DenseEvent]>,
}

impl ShardSnapshot {
    /// The empty snapshot a shard starts from.
    pub fn empty(shard: usize) -> Self {
        ShardSnapshot {
            shard,
            ..Default::default()
        }
    }
}

/// The merged, sequence-numbered answer served to readers.
#[derive(Debug, Clone)]
pub struct MergedStories {
    /// Sum of the per-shard sequence numbers: the total number of updates
    /// reflected in this view. Monotone across snapshots of the same view.
    pub seq: u64,
    /// The per-shard sequence numbers backing [`MergedStories::seq`].
    pub per_shard_seq: Vec<u64>,
    /// The merged top-k output-dense subgraphs, densest first.
    pub stories: Vec<(VertexSet, f64)>,
    /// Total number of output-dense subgraphs across all shards.
    pub output_dense_total: usize,
}

/// A cheap, cloneable handle for reading merged story snapshots without
/// coordinating with the ingest path.
#[derive(Debug, Clone)]
pub struct StoryView {
    cells: Arc<Vec<EpochCell<ShardSnapshot>>>,
    rings: Arc<Vec<DeltaRing>>,
    top_k: usize,
}

impl StoryView {
    pub(crate) fn new(
        cells: Arc<Vec<EpochCell<ShardSnapshot>>>,
        rings: Arc<Vec<DeltaRing>>,
        top_k: usize,
    ) -> Self {
        StoryView {
            cells,
            rings,
            top_k,
        }
    }

    /// Number of shards feeding this view.
    pub fn n_shards(&self) -> usize {
        self.cells.len()
    }

    /// The latest published snapshot of one shard.
    pub fn shard_snapshot(&self, shard: usize) -> Arc<ShardSnapshot> {
        self.cells[shard].load()
    }

    /// The latest published sequence number of one shard: a single atomic
    /// load, no locks, no snapshot traffic. The primitive a polling server
    /// uses to decide whether a shard has anything new for a client.
    #[inline]
    pub fn shard_seq(&self, shard: usize) -> u64 {
        self.cells[shard].seq()
    }

    /// The latest published sequence numbers of all shards (one atomic load
    /// each).
    pub fn per_shard_seq(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.seq()).collect()
    }

    /// The [`DenseEvent`]s of `shard` after `since_seq`, served from the
    /// shard's bounded [`DeltaRing`]: [`DeltaCatchUp::Current`] if the shard
    /// has not advanced, the exact contiguous event suffix if retention still
    /// covers `since_seq`, and [`DeltaCatchUp::Resync`] if the reader fell
    /// behind the retention bound and must rebase on
    /// [`shard_snapshot`](StoryView::shard_snapshot).
    pub fn deltas_since(&self, shard: usize, since_seq: u64) -> DeltaCatchUp {
        self.rings[shard].catch_up(since_seq)
    }

    /// The earliest sequence number [`deltas_since`](StoryView::deltas_since)
    /// can serve deltas for on `shard`, or `None` while nothing has been
    /// published since construction (or recovery).
    pub fn delta_coverage_from(&self, shard: usize) -> Option<u64> {
        self.rings[shard].coverage_from()
    }

    /// Merges the latest per-shard snapshots into a top-k story view.
    ///
    /// Reads are wait-free with respect to ingest up to the epoch-pointer
    /// clone; the merge itself runs on the reader's thread over immutable
    /// data. Each call observes each shard's latest published epoch, so `seq`
    /// is monotone over repeated calls.
    pub fn snapshot(&self) -> MergedStories {
        let shards: Vec<Arc<ShardSnapshot>> = self.cells.iter().map(|c| c.load()).collect();
        let per_shard_seq: Vec<u64> = shards.iter().map(|s| s.seq).collect();
        let seq = per_shard_seq.iter().sum();
        let output_dense_total = shards.iter().map(|s| s.output_dense).sum();
        let mut stories: Vec<(VertexSet, f64)> = shards
            .iter()
            .flat_map(|s| s.top_stories.iter().cloned())
            .collect();
        sort_stories(&mut stories);
        stories.truncate(self.top_k);
        MergedStories {
            seq,
            per_shard_seq,
            stories,
            output_dense_total,
        }
    }

    /// The merged cumulative work counters of all shards, as of their latest
    /// published snapshots.
    pub fn stats(&self) -> EngineStats {
        let shards: Vec<Arc<ShardSnapshot>> = self.cells.iter().map(|c| c.load()).collect();
        EngineStats::merged(shards.iter().map(|s| &s.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::VertexSet;

    fn snap(shard: usize, seq: u64, stories: &[(&[u32], f64)]) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            seq,
            top_stories: stories
                .iter()
                .map(|(ids, d)| (VertexSet::from_ids(ids), *d))
                .collect(),
            output_dense: stories.len(),
            ..Default::default()
        }
    }

    fn rings(n: usize) -> Arc<Vec<DeltaRing>> {
        Arc::new((0..n).map(|_| DeltaRing::new(8)).collect())
    }

    #[test]
    fn epoch_cell_swaps_epochs() {
        let cell = EpochCell::new(1u32);
        let old = cell.load();
        cell.store(Arc::new(2));
        assert_eq!(*old, 1, "readers keep their epoch");
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.seq(), 0, "plain store leaves the seq untouched");
        cell.store_with_seq(Arc::new(3), 17);
        assert_eq!(cell.seq(), 17);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn merged_snapshot_is_sorted_and_truncated() {
        let cells = Arc::new(vec![
            EpochCell::new(snap(0, 10, &[(&[0, 4], 1.5), (&[0, 8], 0.9)])),
            EpochCell::new(snap(1, 5, &[(&[1, 5], 1.2), (&[1, 9], 1.6)])),
        ]);
        cells[0].store_with_seq(cells[0].load(), 10);
        cells[1].store_with_seq(cells[1].load(), 5);
        let view = StoryView::new(cells, rings(2), 3);
        assert_eq!(view.n_shards(), 2);
        let merged = view.snapshot();
        assert_eq!(merged.seq, 15);
        assert_eq!(merged.per_shard_seq, vec![10, 5]);
        assert_eq!(merged.output_dense_total, 4);
        assert_eq!(merged.stories.len(), 3);
        let densities: Vec<f64> = merged.stories.iter().map(|(_, d)| *d).collect();
        assert_eq!(densities, vec![1.6, 1.5, 1.2]);
        assert_eq!(view.shard_snapshot(1).seq, 5);
        assert_eq!(view.shard_seq(0), 10);
        assert_eq!(view.per_shard_seq(), vec![10, 5]);
    }

    #[test]
    fn view_stats_merge_shards() {
        let mut a = snap(0, 1, &[]);
        a.stats.updates = 3;
        let mut b = snap(1, 1, &[]);
        b.stats.updates = 4;
        let view = StoryView::new(
            Arc::new(vec![EpochCell::new(a), EpochCell::new(b)]),
            rings(2),
            4,
        );
        assert_eq!(view.stats().updates, 7);
    }

    fn became(ids: &[u32]) -> DenseEvent {
        DenseEvent::BecameOutputDense {
            vertices: VertexSet::from_ids(ids),
            density: 1.0,
        }
    }

    #[test]
    fn delta_ring_serves_contiguous_suffixes() {
        let ring = DeltaRing::new(3);
        assert_eq!(ring.catch_up(0), DeltaCatchUp::Resync, "empty ring");
        assert_eq!(ring.coverage_from(), None);
        for (base, seq, ids) in [(0u64, 2u64, &[0u32][..]), (2, 5, &[1]), (5, 6, &[2])] {
            ring.push(DeltaBatch {
                base_seq: base,
                seq,
                events: vec![became(ids)].into(),
            });
        }
        assert_eq!(ring.coverage_from(), Some(0));
        assert_eq!(ring.catch_up(6), DeltaCatchUp::Current);
        assert_eq!(ring.catch_up(9), DeltaCatchUp::Current, "reader ahead");
        match ring.catch_up(2) {
            DeltaCatchUp::Events { to_seq, events } => {
                assert_eq!(to_seq, 6);
                assert_eq!(events, vec![became(&[1]), became(&[2])]);
            }
            other => panic!("expected events, got {other:?}"),
        }
        // A fourth batch evicts the oldest: seq 0 is no longer covered.
        ring.push(DeltaBatch {
            base_seq: 6,
            seq: 9,
            events: Vec::new().into(),
        });
        assert_eq!(ring.coverage_from(), Some(2));
        assert_eq!(ring.catch_up(0), DeltaCatchUp::Resync);
        assert!(matches!(ring.catch_up(2), DeltaCatchUp::Events { .. }));
    }
}
