//! The [`ShardedFleet`] facade and its canonical [`ShardedDynDens`]
//! specialisation: the single-engine API, scaled across cores, generic over
//! the pluggable maintenance backend ([`EngineBlueprint`]), with a
//! generational routing table that supports live shard splits.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use dyndens_core::{
    DynDensBlueprint, DynDensConfig, EngineBlueprint, EngineStats, MaintenanceEngine,
};
use dyndens_density::DensityMeasure;
use dyndens_graph::{EdgeUpdate, ShardMap, VertexSet};

use dyndens_obs::{names, ObsEvent};

use crate::config::{PersistenceConfig, ShardConfig};
use crate::obs::{ShardObs, WalObs};
use crate::recovery::{self, RecoveryError, RecoveryReport};
use crate::view::{DeltaRing, EpochCell, ShardRoster, ShardSnapshot, StoryView};
use crate::worker::{self, WorkerMsg, WorkerPersistence};

/// The send side of one worker slot's inbox.
///
/// A slot is normally [`Live`](ShardTx::Live): a bounded channel consumed by
/// the slot's worker thread (backpressure by blocking the producer). While
/// the slot is being **split**, it is temporarily [`Parked`](ShardTx::Parked):
/// an unbounded channel nobody consumes — updates routed to the slot simply
/// accumulate until the split commits and re-routes them, in order, through
/// the refined shard map. Parking is unbounded deliberately: a bounded
/// parking queue could block an ingest thread that holds the routing read
/// lock while the split needs the write lock to drain it.
#[derive(Debug)]
pub(crate) enum ShardTx {
    /// A worker thread is consuming this slot's inbox.
    Live(SyncSender<WorkerMsg>),
    /// The slot is mid-split; messages park until the split commits.
    Parked(Sender<WorkerMsg>),
}

impl ShardTx {
    /// Sends one message, blocking only on a full live inbox. Send failures
    /// mean the receiving side is gone, which the caller treats as fatal for
    /// live slots and ignores during teardown.
    pub(crate) fn send(&self, msg: WorkerMsg) -> Result<(), ()> {
        match self {
            ShardTx::Live(tx) => tx.send(msg).map_err(|_| ()),
            ShardTx::Parked(tx) => tx.send(msg).map_err(|_| ()),
        }
    }
}

/// The routing state every ingest path consults: the generational shard map
/// plus the per-slot senders and routed-update counters. Guarded by an
/// `RwLock` — ingest takes it for read (many concurrent routers), a split
/// takes it for write twice (park the slot, commit the refined map).
#[derive(Debug)]
pub(crate) struct RouteState {
    /// The generational routing table (vertex → worker slot).
    pub(crate) map: ShardMap,
    /// Per-slot inbox senders, indexed by worker slot.
    pub(crate) senders: Vec<ShardTx>,
    /// Per-slot count of updates routed so far. Together with the slot's
    /// published sequence number this yields the **ingest queue depth**
    /// (routed − applied), the primary hot-shard signal used by
    /// [`Rebalancer`](crate::rebalance::Rebalancer).
    pub(crate) routed: Vec<Arc<AtomicU64>>,
}

impl RouteState {
    /// Routes one update to its owner slot (the slot of its minimum
    /// endpoint) and bumps the slot's routed counter.
    fn route(&self, update: &EdgeUpdate) -> usize {
        let slot = self.map.route(update.a.min(update.b));
        self.routed[slot].fetch_add(1, Ordering::Relaxed);
        slot
    }
}

/// A cloneable, thread-safe ingest handle over a [`ShardedFleet`]'s
/// routing table: the write-side counterpart of [`StoryView`].
///
/// Handles route through the same generational shard map as the facade, so
/// they follow splits transparently — including during a split, when updates
/// for the splitting slot park and everything else flows undisturbed. This
/// is what lets ingest continue from other threads while the owning thread
/// drives [`ShardedFleet::split_shard`].
#[derive(Debug, Clone)]
pub struct IngestHandle {
    routing: Arc<RwLock<RouteState>>,
}

impl IngestHandle {
    /// Routes one update to its owner shard. Blocks only when that shard's
    /// live inbox is full (backpressure).
    pub fn apply_update(&self, update: EdgeUpdate) {
        let routing = self.routing.read().expect("routing poisoned");
        let slot = routing.route(&update);
        routing.senders[slot]
            .send(WorkerMsg::Update(update))
            .expect("shard worker terminated while the facade is alive");
    }

    /// Routes a batch of updates under one routing-lock acquisition,
    /// grouping them per owner slot (per-slot relative order is preserved).
    pub fn apply_batch(&self, updates: &[EdgeUpdate]) {
        let routing = self.routing.read().expect("routing poisoned");
        let mut groups: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); routing.senders.len()];
        for &update in updates {
            groups[routing.route(&update)].push(update);
        }
        for (slot, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            routing.senders[slot]
                .send(WorkerMsg::Batch(group))
                .expect("shard worker terminated while the facade is alive");
        }
    }
}

/// A maintenance deployment partitioned over worker slots by a generational
/// routing table, generic over the [`EngineBlueprint`] that builds, restores
/// and fingerprints its per-shard engines. The canonical specialisation is
/// [`ShardedDynDens`]; alternative backends (periodic recompute, top-k
/// peeling) plug in through [`with_backend`](Self::with_backend) and ride
/// the identical routing, WAL, recovery and rebalance machinery.
///
/// The facade mirrors the single-engine API — [`apply_update`],
/// [`apply_batch`], [`stats`], [`output_dense`] — with one semantic shift:
/// ingest is **asynchronous**. An accepted update is queued on its owner
/// shard and applied by that shard's worker thread; [`flush`] drains every
/// queue, and the authoritative read methods flush implicitly. For
/// non-blocking reads that tolerate a bounded lag, use the [`StoryView`]
/// returned by [`view`].
///
/// The worker count starts at [`ShardConfig::n_shards`] and can grow at
/// runtime: [`split_shard`] rebuilds a hot shard's state into two fresh
/// engines (snapshot + WAL-slice replay filtered through the refined shard
/// map) while every other shard keeps ingesting. See [`crate::rebalance`].
///
/// See the crate docs for the partitioning invariant that governs when the
/// sharded answer is identical to the single-engine answer.
///
/// [`apply_update`]: ShardedFleet::apply_update
/// [`apply_batch`]: ShardedFleet::apply_batch
/// [`stats`]: ShardedFleet::stats
/// [`output_dense`]: ShardedFleet::output_dense
/// [`flush`]: ShardedFleet::flush
/// [`view`]: ShardedFleet::view
/// [`split_shard`]: ShardedFleet::split_shard
#[derive(Debug)]
pub struct ShardedFleet<B: EngineBlueprint> {
    pub(crate) config: ShardConfig,
    pub(crate) blueprint: B,
    pub(crate) routing: Arc<RwLock<RouteState>>,
    pub(crate) engines: Vec<Arc<Mutex<B::Engine>>>,
    pub(crate) roster: Arc<EpochCell<ShardRoster>>,
    pub(crate) workers: Vec<Option<JoinHandle<()>>>,
    /// Per-slot shared slot-number cells (see [`worker::WorkerSetup::slot`]):
    /// a merge renumbers the last live worker into a freed middle slot by
    /// storing into its cell, without respawning the thread.
    pub(crate) slots: Vec<Arc<AtomicU32>>,
    /// Per-slot scratch buffers reused by [`ShardedFleet::apply_batch`].
    route_scratch: Vec<Vec<EdgeUpdate>>,
    /// What recovery did per shard; empty for non-persistent deployments.
    recovery: Vec<RecoveryReport>,
    /// The persistence configuration, kept for splits (children need new
    /// directories, WALs and a manifest rewrite). `None` for in-memory
    /// deployments.
    pub(crate) persistence: Option<PersistenceConfig>,
    /// Receivers of slots whose split aborted *and* whose parent could not
    /// be resurrected (a double fault). Keeping the receiver alive keeps the
    /// slot's parked sender open, so ingest routed to the slot continues to
    /// park in memory instead of panicking; the backlog is unrecoverable
    /// in-process (it was never applied or logged) and is dropped on
    /// restart. Mutex-wrapped only so the facade stays `Sync`.
    pub(crate) dead_parked: Vec<Mutex<std::sync::mpsc::Receiver<WorkerMsg>>>,
}

/// The canonical deployment: a [`ShardedFleet`] running the exact
/// [`DynDens`](dyndens_core::DynDens) maintenance algorithm via
/// [`DynDensBlueprint`]. Every pre-backend call site keeps this name (and
/// the [`new`](ShardedFleet::new)/[`with_persistence`](ShardedFleet::with_persistence)
/// constructors, which live on the specialised impl).
pub type ShardedDynDens<D> = ShardedFleet<DynDensBlueprint<D>>;

/// A shard's initial state handed to its worker thread at spawn time.
pub(crate) struct ShardSeed<E: MaintenanceEngine> {
    pub(crate) engine: E,
    pub(crate) seq: u64,
    pub(crate) persist: Option<WorkerPersistence>,
}

/// Spawns one worker thread for `slot`, publishing into `cell`/`ring`.
/// Returns the inbox sender, the join handle and the shared slot-number cell
/// (a merge renumbers the worker by storing into it).
pub(crate) fn spawn_worker<E: MaintenanceEngine>(
    slot: usize,
    config: &ShardConfig,
    seq: u64,
    persist: Option<WorkerPersistence>,
    engine: &Arc<Mutex<E>>,
    cell: &Arc<EpochCell<ShardSnapshot>>,
    ring: &Arc<DeltaRing>,
) -> (SyncSender<WorkerMsg>, JoinHandle<()>, Arc<AtomicU32>) {
    let (tx, rx) = sync_channel(config.channel_capacity);
    let slot_cell = Arc::new(AtomicU32::new(slot as u32));
    let mut persist = persist;
    // Registration happens here, once per spawn — the worker loop itself
    // only ever touches the pre-registered handles.
    let obs = config.obs.registry().map(|registry| {
        if let Some(p) = persist.as_mut() {
            p.wal.set_obs(Some(WalObs::for_slot(registry, slot as u32)));
        }
        ShardObs::for_slot(registry, slot as u32)
    });
    let setup = worker::WorkerSetup {
        slot: Arc::clone(&slot_cell),
        max_batch: config.max_batch,
        top_k: config.top_k,
        initial_seq: seq,
        persist,
        obs,
    };
    let engine = Arc::clone(engine);
    let cell = Arc::clone(cell);
    let ring = Arc::clone(ring);
    let handle = std::thread::Builder::new()
        .name(format!("dyndens-shard-{slot}"))
        .spawn(move || worker::run(setup, rx, engine, cell, ring))
        .expect("failed to spawn shard worker");
    (tx, handle, slot_cell)
}

impl<B: EngineBlueprint> ShardedFleet<B> {
    /// Spawns `config.n_shards` worker threads, each owning an independent
    /// engine built by [`blueprint.fresh()`](EngineBlueprint::fresh). No
    /// state is persisted; see
    /// [`with_backend_persistence`](Self::with_backend_persistence) for the
    /// crash-safe variant.
    pub fn with_backend(blueprint: B, config: ShardConfig) -> Self {
        let map = ShardMap::new(config.shard_fn, config.n_shards);
        let seeds = (0..config.n_shards)
            .map(|_| ShardSeed {
                engine: blueprint.fresh(),
                seq: 0,
                persist: None,
            })
            .collect();
        Self::spawn(blueprint, config, map, seeds, Vec::new(), None)
    }

    /// The crash-safe constructor: recovers every shard from
    /// `persistence.dir` (newest valid snapshot + WAL tail replay — an empty
    /// directory simply starts fresh), then spawns workers that write each
    /// micro-batch to their shard's WAL **before** applying it and
    /// checkpoint their engine every
    /// [`snapshot_every_batches`](PersistenceConfig::snapshot_every_batches)
    /// micro-batches.
    ///
    /// The deployment `MANIFEST` carries the **generational shard map**: a
    /// directory refined by live splits reopens with the refined topology
    /// (more workers than `config.n_shards`), each slot recovering from the
    /// directory its current engine id names. The caller's `config` must
    /// still match the manifest's *base* parameters — see
    /// [`RecoveryError::ManifestMismatch`].
    ///
    /// Recovery replays with the engine's `recovering` flag set, so replayed
    /// updates do not inflate [`EngineStats`]; the recovered maintenance
    /// state is bit-identical to a deployment that never crashed. Details of
    /// what was recovered are available via
    /// [`recovery_reports`](Self::recovery_reports).
    pub fn with_backend_persistence(
        blueprint: B,
        config: ShardConfig,
        persistence: PersistenceConfig,
    ) -> Result<Self, RecoveryError> {
        std::fs::create_dir_all(&persistence.dir)?;
        // Bind the directory to the deployment's state-affecting parameters
        // (or verify it was written by an identical deployment) and load the
        // current routing topology: restarting with a different engine kind /
        // base shard count / shard function / engine config would silently
        // drop or misroute persisted slices — or feed one backend's
        // checkpoint bytes to another.
        let map = recovery::bind_manifest(
            &persistence.dir,
            blueprint.kind(),
            blueprint.measure_name(),
            &blueprint.params(),
            &config,
        )?;
        let engine_ids = map.worker_engines();

        // Shards recover independently (distinct directories, no shared
        // state), so cold start pays the slowest shard's snapshot load +
        // WAL tail replay, not the sum over shards.
        let recovered: Vec<Result<recovery::RecoveredShard<B::Engine>, RecoveryError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = engine_ids
                    .iter()
                    .enumerate()
                    .map(|(slot, &engine_id)| {
                        let blueprint = &blueprint;
                        let persistence = &persistence;
                        scope.spawn(move || {
                            let shard_dir = recovery::shard_dir(&persistence.dir, engine_id);
                            recovery::recover_shard(blueprint, slot, &shard_dir, persistence)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard recovery thread panicked"))
                    .collect()
            });

        let mut seeds = Vec::with_capacity(engine_ids.len());
        let mut reports = Vec::with_capacity(engine_ids.len());
        for (slot, result) in recovered.into_iter().enumerate() {
            let recovered = result?;
            if let Some(registry) = config.obs.registry() {
                // The journal form of the RecoveryReport: a crash recovery
                // that happened hours ago stays explainable from a scrape.
                let report = &recovered.report;
                let label = slot.to_string();
                let labels: &[(&str, &str)] = &[("shard", label.as_str())];
                registry.counter(names::RECOVERIES_TOTAL, labels).inc();
                registry
                    .counter(names::RECOVERY_REPLAYED_TOTAL, labels)
                    .add(report.replayed_updates);
                registry.emit(ObsEvent::Recovery {
                    shard: slot as u32,
                    snapshot_seq: report.snapshot_seq,
                    replayed_updates: report.replayed_updates,
                    recovered_seq: report.recovered_seq,
                    repaired_torn_tail: report.repaired_torn_tail,
                });
            }
            reports.push(recovered.report);
            seeds.push(ShardSeed {
                engine: recovered.engine,
                seq: recovered.seq,
                persist: Some(WorkerPersistence {
                    wal: recovered.wal,
                    dir: recovery::shard_dir(&persistence.dir, engine_ids[slot]),
                    snapshot_every: persistence.snapshot_every_batches,
                    retained: persistence.retained_snapshots,
                    batches_since_snapshot: 0,
                }),
            });
        }
        Ok(Self::spawn(
            blueprint,
            config,
            map,
            seeds,
            reports,
            Some(persistence),
        ))
    }

    fn spawn(
        blueprint: B,
        config: ShardConfig,
        map: ShardMap,
        seeds: Vec<ShardSeed<B::Engine>>,
        recovery: Vec<RecoveryReport>,
        persistence: Option<PersistenceConfig>,
    ) -> Self {
        let n = map.n_workers();
        debug_assert_eq!(seeds.len(), n);
        let mut cells = Vec::with_capacity(n);
        let mut rings = Vec::with_capacity(n);
        let mut senders = Vec::with_capacity(n);
        let mut routed = Vec::with_capacity(n);
        let mut engines = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut slots = Vec::with_capacity(n);
        for (slot, seed) in seeds.into_iter().enumerate() {
            let ShardSeed {
                mut engine,
                seq,
                persist,
            } = seed;
            // Readers see the recovered state immediately, not an empty
            // snapshot that only fills in after the first post-recovery
            // micro-batch. The delta ring deliberately starts empty: a
            // recovered deployment has no pre-crash event stream, so pollers
            // resync from this snapshot.
            let cell = Arc::new(EpochCell::new(ShardSnapshot::empty(slot)));
            cell.store_with_seq(
                Arc::new(worker::build_snapshot(
                    slot,
                    &mut engine,
                    seq,
                    seq,
                    &[],
                    config.top_k,
                )),
                seq,
            );
            let ring = Arc::new(DeltaRing::new(config.delta_retention));
            let engine = Arc::new(Mutex::new(engine));
            let (tx, handle, slot_cell) =
                spawn_worker(slot, &config, seq, persist, &engine, &cell, &ring);
            cells.push(cell);
            rings.push(ring);
            senders.push(ShardTx::Live(tx));
            let routed_cell = Arc::new(AtomicU64::new(seq));
            if let Some(registry) = config.obs.registry() {
                // Adopt the router's hot-path cell as a counter: zero added
                // cost on the routing path.
                registry.adopt_counter(
                    names::SHARD_ROUTED_TOTAL,
                    &[("shard", &slot.to_string())],
                    Arc::clone(&routed_cell),
                );
            }
            routed.push(routed_cell);
            engines.push(engine);
            workers.push(Some(handle));
            slots.push(slot_cell);
        }
        ShardedFleet {
            route_scratch: vec![Vec::new(); n],
            config,
            blueprint,
            routing: Arc::new(RwLock::new(RouteState {
                map,
                senders,
                routed,
            })),
            engines,
            roster: Arc::new(EpochCell::new(ShardRoster { cells, rings })),
            workers,
            slots,
            recovery,
            persistence,
            dead_parked: Vec::new(),
        }
    }

    /// Per-shard recovery reports of a [`with_persistence`] deployment
    /// (empty when the deployment is not persistent).
    ///
    /// [`with_persistence`]: Self::with_persistence
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery
    }

    /// Number of live shard workers. Starts at [`ShardConfig::n_shards`] and
    /// grows by one per [`split_shard`](Self::split_shard).
    pub fn n_shards(&self) -> usize {
        self.routing
            .read()
            .expect("routing poisoned")
            .map
            .n_workers()
    }

    /// The shard configuration (its `n_shards` is the **base** slot count of
    /// the routing table, not the current worker count — see
    /// [`n_shards`](Self::n_shards)).
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// The blueprint that builds, restores and fingerprints this fleet's
    /// per-shard engines.
    pub fn blueprint(&self) -> &B {
        &self.blueprint
    }

    /// A clone of the current generational routing table.
    pub fn shard_map(&self) -> ShardMap {
        self.routing.read().expect("routing poisoned").map.clone()
    }

    /// The shard owning `update` (the routing-table slot of its minimum
    /// endpoint).
    #[inline]
    pub fn shard_of(&self, update: &EdgeUpdate) -> usize {
        self.routing
            .read()
            .expect("routing poisoned")
            .map
            .route(update.a.min(update.b))
    }

    /// Per-slot ingest queue depths: updates routed but not yet applied and
    /// published. The primary hot-shard signal consumed by
    /// [`Rebalancer`](crate::rebalance::Rebalancer).
    pub fn queue_depths(&self) -> Vec<u64> {
        let routing = self.routing.read().expect("routing poisoned");
        let roster = self.roster.load();
        let depths: Vec<u64> = routing
            .routed
            .iter()
            .zip(roster.cells.iter())
            .map(|(routed, cell)| routed.load(Ordering::Relaxed).saturating_sub(cell.seq()))
            .collect();
        if let Some(registry) = self.config.obs.registry() {
            // Refreshed at probe cadence (the rebalancer's), not per update:
            // a gauge of a derived quantity is only as fresh as its probe.
            for (slot, &depth) in depths.iter().enumerate() {
                registry
                    .gauge(names::SHARD_QUEUE_DEPTH, &[("shard", &slot.to_string())])
                    .set(depth);
            }
        }
        depths
    }

    /// A cloneable, thread-safe ingest handle sharing this deployment's
    /// routing table — the write-side counterpart of [`view`](Self::view).
    /// Handles keep working across splits (updates for a slot that is
    /// mid-split park and are re-routed when the split commits).
    pub fn ingest_handle(&self) -> IngestHandle {
        IngestHandle {
            routing: Arc::clone(&self.routing),
        }
    }

    /// Routes one update to its owner shard. Blocks only when that shard's
    /// inbox is full (backpressure).
    pub fn apply_update(&self, update: EdgeUpdate) {
        let routing = self.routing.read().expect("routing poisoned");
        let slot = routing.route(&update);
        routing.senders[slot]
            .send(WorkerMsg::Update(update))
            .expect("shard worker terminated while the facade is alive");
    }

    /// Routes a batch of updates, grouping them per owner shard so each shard
    /// receives one message (per-shard relative order is preserved).
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) {
        let routing = self.routing.read().expect("routing poisoned");
        if self.route_scratch.len() < routing.senders.len() {
            self.route_scratch
                .resize_with(routing.senders.len(), Vec::new);
        }
        for &update in updates {
            self.route_scratch[routing.route(&update)].push(update);
        }
        for (slot, group) in self.route_scratch.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            routing.senders[slot]
                .send(WorkerMsg::Batch(std::mem::take(group)))
                .expect("shard worker terminated while the facade is alive");
        }
    }

    /// Blocks until every update routed so far has been applied and
    /// published. A flush issued while a shard is mid-split completes once
    /// the split has committed and the parked updates have been applied by
    /// the children.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = channel();
        let expected = {
            let routing = self.routing.read().expect("routing poisoned");
            for sender in &routing.senders {
                sender
                    .send(WorkerMsg::Flush(ack_tx.clone()))
                    .expect("shard worker terminated while the facade is alive");
            }
            routing.senders.len()
        };
        drop(ack_tx);
        for _ in 0..expected {
            ack_rx.recv().expect("shard worker dropped a flush ack");
        }
    }

    /// Runs a compaction pass on every shard: evicts engine edges whose
    /// weight has decayed to `min_weight` or below (through the ordinary
    /// update path, WAL-logged first — see
    /// [`DynDens::evict_below`](dyndens_core::DynDens::evict_below)), then
    /// forces a checkpoint on each shard and prunes the WAL segments wholly
    /// behind it. Returns the total number of edges evicted.
    ///
    /// The pass is serialised with each shard's stream at the point the
    /// message reaches its queue, so it is safe to call concurrently with
    /// ingest. On a decaying workload, a periodic `compact_below` is what
    /// keeps both the engines' memory and the persistence directory bounded
    /// — see `docs/RETENTION.md` for cadence guidance. Like
    /// [`flush`](Self::flush), a pass issued while a shard is mid-split
    /// completes once the split commits.
    pub fn compact_below(&self, min_weight: f64) -> u64 {
        let receivers: Vec<_> = {
            let routing = self.routing.read().expect("routing poisoned");
            routing
                .senders
                .iter()
                .map(|sender| {
                    let (ack, rx) = channel();
                    sender
                        .send(WorkerMsg::Compact { min_weight, ack })
                        .expect("shard worker terminated while the facade is alive");
                    rx
                })
                .collect()
        };
        // Each receiver yields one ack per worker that executed the pass —
        // normally one, but a pass parked during a split is fanned out to
        // both children — and closes when the last ack sender is dropped.
        let evicted: u64 = receivers.into_iter().flat_map(|rx| rx.into_iter()).sum();
        if let Some(registry) = self.config.obs.registry() {
            registry.counter(names::COMPACTION_PASSES_TOTAL, &[]).inc();
            registry
                .counter(names::COMPACTION_EVICTED_EDGES_TOTAL, &[])
                .add(evicted);
        }
        evicted
    }

    /// A non-blocking read handle over the shards' published snapshots and
    /// delta retention rings. Views observe splits: their shard count grows
    /// when one commits.
    pub fn view(&self) -> StoryView {
        StoryView::new(Arc::clone(&self.roster), self.config.top_k)
    }

    /// The merged cumulative work counters of all shards (flushes first, so
    /// the ledger covers every routed update). The ledger is preserved
    /// exactly across splits: the child that keeps the parent's slot adopts
    /// the parent's counters and rebuild replay counts nothing.
    pub fn stats(&self) -> EngineStats {
        self.flush();
        let guards: Vec<_> = self
            .engines
            .iter()
            .map(|e| e.lock().expect("shard engine poisoned"))
            .collect();
        EngineStats::merged(guards.iter().map(|g| g.stats()))
    }

    /// The authoritative union of the shards' output-dense subgraphs
    /// (flushes first). Order is unspecified; sort for comparisons.
    pub fn output_dense(&self) -> Vec<(VertexSet, f64)> {
        self.flush();
        let mut out = Vec::new();
        for engine in &self.engines {
            out.extend(
                engine
                    .lock()
                    .expect("shard engine poisoned")
                    .output_dense_subgraphs(),
            );
        }
        out
    }

    /// The authoritative union of the shards' maintained (dense) subgraphs
    /// with their scores (flushes first). Order is unspecified; sort for
    /// comparisons. This is the full maintained family, a superset of
    /// [`output_dense`](Self::output_dense) — the quantity the crash
    /// recovery and split equivalence tests compare bit-for-bit.
    pub fn dense_subgraphs(&self) -> Vec<(VertexSet, f64)> {
        self.flush();
        let mut out = Vec::new();
        for engine in &self.engines {
            out.extend(
                engine
                    .lock()
                    .expect("shard engine poisoned")
                    .dense_subgraphs(),
            );
        }
        out
    }

    /// The fleet's vertex universe: the maximum
    /// [`DynamicGraph::vertex_count`](dyndens_graph::DynamicGraph::vertex_count)
    /// over all shards (vertex ids are global — each shard's graph grows to
    /// the highest id it has seen). Flushes first. Used by ingest-side
    /// recovery to cross-check that its id-assigning state (e.g. the story
    /// pipeline's entity registry) covers every vertex the engines
    /// reference.
    pub fn vertex_universe(&self) -> usize {
        self.flush();
        self.engines
            .iter()
            .map(|e| {
                e.lock()
                    .expect("shard engine poisoned")
                    .graph()
                    .vertex_count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of live (positive-weight) edges across all shards (flushes
    /// first). The primary gauge of resident state for bounded-state
    /// operation: on a decaying workload this should plateau once
    /// [`compact_below`](Self::compact_below) runs on a cadence — see
    /// `docs/RETENTION.md`.
    pub fn edge_count(&self) -> usize {
        self.flush();
        self.engines
            .iter()
            .map(|e| {
                e.lock()
                    .expect("shard engine poisoned")
                    .graph()
                    .edge_count()
            })
            .sum()
    }

    /// Number of output-dense subgraphs across all shards (flushes first).
    pub fn output_dense_count(&self) -> usize {
        self.flush();
        self.engines
            .iter()
            .map(|e| {
                e.lock()
                    .expect("shard engine poisoned")
                    .output_dense_count()
            })
            .sum()
    }

    /// Number of maintained (dense) subgraphs across all shards (flushes
    /// first).
    pub fn dense_count(&self) -> usize {
        self.flush();
        self.engines
            .iter()
            .map(|e| e.lock().expect("shard engine poisoned").dense_count())
            .sum()
    }

    /// Runs each shard engine's internal consistency check (flushes first).
    pub fn validate(&self) -> Result<(), String> {
        self.flush();
        for (shard, engine) in self.engines.iter().enumerate() {
            engine
                .lock()
                .expect("shard engine poisoned")
                .validate()
                .map_err(|e| format!("shard {shard}: {e}"))?;
        }
        Ok(())
    }
}

impl<D: DensityMeasure> ShardedFleet<DynDensBlueprint<D>> {
    /// Spawns `config.n_shards` worker threads, each owning an independent
    /// [`DynDens`](dyndens_core::DynDens) engine built from `measure` and
    /// `engine_config`. Shorthand for
    /// [`with_backend`](Self::with_backend) over a [`DynDensBlueprint`]. No
    /// state is persisted; see [`with_persistence`](Self::with_persistence)
    /// for the crash-safe variant.
    pub fn new(measure: D, engine_config: DynDensConfig, config: ShardConfig) -> Self {
        Self::with_backend(DynDensBlueprint::new(measure, engine_config), config)
    }

    /// The crash-safe constructor: shorthand for
    /// [`with_backend_persistence`](Self::with_backend_persistence) over a
    /// [`DynDensBlueprint`].
    pub fn with_persistence(
        measure: D,
        engine_config: DynDensConfig,
        config: ShardConfig,
        persistence: PersistenceConfig,
    ) -> Result<Self, RecoveryError> {
        Self::with_backend_persistence(
            DynDensBlueprint::new(measure, engine_config),
            config,
            persistence,
        )
    }

    /// The per-shard engine configuration.
    pub fn engine_config(&self) -> &DynDensConfig {
        self.blueprint.config()
    }
}

impl<B: EngineBlueprint> Drop for ShardedFleet<B> {
    fn drop(&mut self) {
        {
            let routing = self.routing.read().expect("routing poisoned");
            for sender in &routing.senders {
                // A worker that already exited (or panicked) has hung up;
                // that is fine during teardown. Parked slots have no worker.
                let _ = sender.send(WorkerMsg::Shutdown);
            }
        }
        for handle in self.workers.drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardFn;
    use dyndens_core::DynDens;
    use dyndens_density::AvgWeight;
    use dyndens_graph::VertexId;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn sharded(n: usize) -> ShardedDynDens<AvgWeight> {
        ShardedDynDens::new(
            AvgWeight,
            DynDensConfig::new(1.0, 4).with_delta_it(0.15),
            ShardConfig::new(n)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(4),
        )
    }

    #[test]
    fn single_shard_matches_plain_engine() {
        let updates = [
            update(0, 2, 1.0),
            update(0, 3, 1.0),
            update(2, 3, 1.0),
            update(1, 3, 1.0),
            update(1, 2, 1.1),
            update(0, 1, 0.95),
        ];
        let mut reference = DynDens::new(AvgWeight, DynDensConfig::new(1.0, 4).with_delta_it(0.15));
        let mut sharded = sharded(1);
        for u in updates {
            reference.apply_update(u);
        }
        sharded.apply_batch(&updates);
        sharded.validate().unwrap();

        let mut want: Vec<VertexSet> = reference
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let mut got: Vec<VertexSet> = sharded.output_dense().into_iter().map(|(s, _)| s).collect();
        want.sort();
        got.sort();
        assert_eq!(got, want);
        assert_eq!(sharded.stats(), reference.stats().clone());
        assert_eq!(sharded.dense_count(), reference.dense_count());
    }

    #[test]
    fn updates_route_to_min_endpoint_shard() {
        let sharded = sharded(4);
        assert_eq!(sharded.n_shards(), 4);
        // Modulo sharding: min endpoint decides.
        assert_eq!(sharded.shard_of(&update(5, 2, 1.0)), 2);
        assert_eq!(sharded.shard_of(&update(3, 7, 1.0)), 3);
        assert_eq!(sharded.shard_of(&update(8, 1, 1.0)), 1);
        assert_eq!(sharded.shard_of(&update(8, 12, 1.0)), 0);
    }

    #[test]
    fn ingest_handle_routes_like_the_facade() {
        let sharded = sharded(2);
        let handle = sharded.ingest_handle();
        handle.apply_update(update(0, 2, 1.5));
        handle.apply_batch(&[update(1, 3, 1.5), update(2, 4, 1.2)]);
        sharded.flush();
        let view = sharded.view();
        assert_eq!(view.snapshot().seq, 3);
        assert_eq!(view.per_shard_seq(), vec![2, 1]);
        assert_eq!(sharded.queue_depths(), vec![0, 0]);
    }

    #[test]
    fn disjoint_communities_are_maintained_per_shard() {
        // Two 3-cliques on residues 0 and 1 (mod 2): each lives wholly in one
        // shard, and the union answer covers both.
        let mut sharded = sharded(2);
        let cliques: &[&[u32]] = &[&[0, 2, 4], &[1, 3, 5]];
        let mut updates = Vec::new();
        for clique in cliques {
            for (i, &a) in clique.iter().enumerate() {
                for &b in &clique[i + 1..] {
                    updates.push(update(a, b, 1.2));
                }
            }
        }
        sharded.apply_batch(&updates);
        sharded.validate().unwrap();
        let got = sharded.output_dense();
        // Each 3-clique contributes 3 pairs + 1 triangle.
        assert_eq!(got.len(), 8);
        assert_eq!(sharded.output_dense_count(), 8);
        assert!(sharded.dense_count() >= 8);
        let stats = sharded.stats();
        assert_eq!(stats.updates, updates.len() as u64);

        // The view serves the same stories, sequence-numbered.
        let view = sharded.view();
        let merged = view.snapshot();
        assert_eq!(merged.seq, updates.len() as u64);
        assert_eq!(merged.output_dense_total, 8);
        assert_eq!(merged.stories.len(), 8.min(sharded.config().top_k));
        let top_density = merged.stories[0].1;
        assert!((top_density - 1.2).abs() < 1e-9);
        assert_eq!(view.stats().updates, stats.updates);
    }

    #[test]
    fn flush_makes_single_update_path_visible() {
        let sharded = sharded(2);
        sharded.apply_update(update(0, 2, 1.5));
        sharded.apply_update(update(1, 3, 1.5));
        sharded.flush();
        let view = sharded.view();
        let merged = view.snapshot();
        assert_eq!(merged.seq, 2);
        assert_eq!(merged.per_shard_seq, vec![1, 1]);
        assert_eq!(merged.output_dense_total, 2);
        // Delta events for each shard's last batch are exposed.
        let snap = view.shard_snapshot(0);
        assert_eq!(snap.delta_base_seq, 0);
        assert_eq!(snap.delta_events.len(), 1);
        assert!(snap.delta_events[0].is_became());
    }

    #[test]
    fn persistent_facade_recovers_across_restarts() {
        use crate::config::{FsyncPolicy, PersistenceConfig};

        let dir = std::env::temp_dir().join(format!("dyndens-facade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(2)
        };
        let updates: Vec<EdgeUpdate> = (0..200)
            .map(|i| {
                let a = (i % 8) as u32;
                let b = a + 2 * (1 + (i % 4) as u32);
                update(a, b, if i % 6 == 5 { -0.3 } else { 0.5 })
            })
            .collect();

        // Reference: plain in-memory deployment.
        let mut reference = sharded(2);
        reference.apply_batch(&updates);
        let mut want: Vec<(VertexSet, f64)> = reference.dense_subgraphs();
        want.sort_by(|a, b| a.0.cmp(&b.0));

        // First persistent run: ingest, flush (WAL is written before apply,
        // so everything flushed is on disk), then "crash" by dropping.
        {
            let mut p = ShardedDynDens::with_persistence(
                AvgWeight,
                DynDensConfig::new(1.0, 4).with_delta_it(0.15),
                ShardConfig::new(2)
                    .with_shard_fn(ShardFn::Modulo)
                    .with_max_batch(4),
                persistence(),
            )
            .unwrap();
            assert!(p
                .recovery_reports()
                .iter()
                .all(|r| r.recovered_seq == 0 && r.replayed_updates == 0));
            p.apply_batch(&updates);
            p.flush();
        }

        // Restart: recovery must rebuild the identical answer with no new
        // ingest at all.
        let recovered = ShardedDynDens::with_persistence(
            AvgWeight,
            DynDensConfig::new(1.0, 4).with_delta_it(0.15),
            ShardConfig::new(2)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(4),
            persistence(),
        )
        .unwrap();
        let reports = recovered.recovery_reports().to_vec();
        assert_eq!(reports.len(), 2);
        assert_eq!(
            reports.iter().map(|r| r.recovered_seq).sum::<u64>(),
            updates.len() as u64
        );
        assert!(reports.iter().any(|r| r.replayed_updates > 0));
        let mut got = recovered.dense_subgraphs();
        got.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got.len(), want.len());
        for ((gs, gd), (ws, wd)) in got.iter().zip(&want) {
            assert_eq!(gs, ws);
            assert_eq!(gd.to_bits(), wd.to_bits(), "score bits diverge on {gs}");
        }
        // The recovered state is visible through the view without ingest.
        assert_eq!(recovered.view().snapshot().seq, updates.len() as u64);
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_below_reclaims_state_and_prunes_the_wal() {
        use crate::config::{FsyncPolicy, PersistenceConfig};

        fn wal_bytes(root: &std::path::Path) -> u64 {
            let mut total = 0;
            let mut stack = vec![root.to_path_buf()];
            while let Some(d) = stack.pop() {
                for entry in std::fs::read_dir(&d).unwrap() {
                    let path = entry.unwrap().path();
                    if path.is_dir() {
                        stack.push(path);
                    } else if path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("wal-"))
                    {
                        total += path.metadata().unwrap().len();
                    }
                }
            }
            total
        }

        let dir = std::env::temp_dir().join(format!("dyndens-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A huge checkpoint cadence: without compaction the WAL only grows.
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(1_000_000)
        };
        let mut fleet = ShardedDynDens::with_persistence(
            AvgWeight,
            DynDensConfig::new(1.0, 4).with_delta_it(0.15),
            ShardConfig::new(2)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(4),
            persistence(),
        )
        .unwrap();

        // Two strong communities (one per shard) plus 30 chaff edges whose
        // weight decays to a dyadic residual 0.0625 — fully-decayed stories.
        let mut updates = Vec::new();
        for &(a, b) in &[(0, 2), (0, 4), (2, 4), (1, 3), (1, 5), (3, 5)] {
            updates.push(update(a, b, 1.25));
        }
        for i in 0..30u32 {
            updates.push(update(20 + i, 100 + i, 0.5));
        }
        for i in 0..30u32 {
            updates.push(update(20 + i, 100 + i, -0.4375));
        }
        fleet.apply_batch(&updates);
        fleet.flush();

        let mut before = fleet.dense_subgraphs();
        before.sort_by(|a, b| a.0.cmp(&b.0));
        let wal_before = wal_bytes(&dir);
        assert!(wal_before > 0);
        assert_eq!(fleet.edge_count(), 36);

        let evicted = fleet.compact_below(0.1);
        assert_eq!(evicted, 30, "every chaff edge is reclaimed");
        assert_eq!(fleet.edge_count(), 6, "only the live communities remain");
        let mut after = fleet.dense_subgraphs();
        after.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(after.len(), before.len());
        for ((askey, ad), (bskey, bd)) in after.iter().zip(&before) {
            assert_eq!(askey, bskey);
            assert_eq!(ad.to_bits(), bd.to_bits(), "answer changed on {askey}");
        }
        // The compaction checkpoint folds everything evicted out of the log:
        // only a fresh (near-empty) segment per shard survives.
        assert!(
            wal_bytes(&dir) < wal_before,
            "WAL not pruned: {} >= {wal_before}",
            wal_bytes(&dir)
        );

        // Ingest keeps working after the pass, and a crash + reopen recovers
        // the compacted state bit for bit.
        fleet.apply_batch(&[update(0, 6, 1.25)]);
        fleet.flush();
        let mut want = fleet.dense_subgraphs();
        want.sort_by(|a, b| a.0.cmp(&b.0));
        drop(fleet);
        let reopened = ShardedDynDens::with_persistence(
            AvgWeight,
            DynDensConfig::new(1.0, 4).with_delta_it(0.15),
            ShardConfig::new(2)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(4),
            persistence(),
        )
        .unwrap();
        assert_eq!(reopened.edge_count(), 7);
        let mut got = reopened.dense_subgraphs();
        got.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got.len(), want.len());
        for ((gs, gd), (ws, wd)) in got.iter().zip(&want) {
            assert_eq!(gs, ws);
            assert_eq!(gd.to_bits(), wd.to_bits(), "recovery diverges on {gs}");
        }
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_rejects_parameter_drift_across_restarts() {
        use crate::config::PersistenceConfig;
        use crate::recovery::RecoveryError;

        let dir = std::env::temp_dir().join(format!("dyndens-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine_cfg = || DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let open = |n_shards: usize, shard_fn: ShardFn, engine: DynDensConfig| {
            ShardedDynDens::with_persistence(
                AvgWeight,
                engine,
                ShardConfig::new(n_shards).with_shard_fn(shard_fn),
                PersistenceConfig::new(&dir),
            )
        };

        // Bind the directory with a 4-shard modulo deployment.
        {
            let d = open(4, ShardFn::Modulo, engine_cfg()).unwrap();
            d.apply_update(update(0, 1, 1.5));
            d.flush();
        }
        // Identical parameters reopen fine (queueing tunables may differ).
        {
            let d = ShardedDynDens::with_persistence(
                AvgWeight,
                engine_cfg(),
                ShardConfig::new(4)
                    .with_shard_fn(ShardFn::Modulo)
                    .with_max_batch(7)
                    .with_top_k(3),
                PersistenceConfig::new(&dir).with_snapshot_every_batches(5),
            )
            .unwrap();
            assert_eq!(d.output_dense_count(), 1);
        }
        // Fewer shards would silently drop slices: hard error.
        assert!(matches!(
            open(2, ShardFn::Modulo, engine_cfg()),
            Err(RecoveryError::ManifestMismatch { field: "n_shards" })
        ));
        // Different routing would misassign edges: hard error.
        assert!(matches!(
            open(4, ShardFn::Hashed, engine_cfg()),
            Err(RecoveryError::ManifestMismatch { field: "shard_fn" })
        ));
        // Different density semantics: hard error.
        assert!(matches!(
            open(
                4,
                ShardFn::Modulo,
                DynDensConfig::new(0.8, 4).with_delta_it(0.15)
            ),
            Err(RecoveryError::ManifestMismatch {
                field: "engine config"
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn negative_updates_and_evictions_propagate() {
        let mut sharded = sharded(2);
        sharded.apply_batch(&[update(0, 2, 1.5), update(1, 3, 1.5)]);
        assert_eq!(sharded.output_dense_count(), 2);
        sharded.apply_batch(&[update(0, 2, -1.0)]);
        assert_eq!(sharded.output_dense_count(), 1);
        let view = sharded.view();
        let snap = view.shard_snapshot(0);
        assert!(snap.delta_events.iter().any(|e| !e.is_became()));
        let stats = sharded.stats();
        assert_eq!(stats.negative_updates, 1);
        assert_eq!(stats.subgraphs_evicted, 1);
    }
}
