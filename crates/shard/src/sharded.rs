//! The [`ShardedDynDens`] facade: the single-engine API, scaled across
//! cores.

use std::sync::mpsc::{channel, sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dyndens_core::{DynDens, DynDensConfig, EngineStats};
use dyndens_density::DensityMeasure;
use dyndens_graph::{EdgeUpdate, VertexSet};

use crate::config::ShardConfig;
use crate::view::{EpochCell, ShardSnapshot, StoryView};
use crate::worker::{self, WorkerMsg};

/// A DynDens deployment partitioned over `N` shard workers.
///
/// The facade mirrors the single-engine API — [`apply_update`],
/// [`apply_batch`], [`stats`], [`output_dense`] — with one semantic shift:
/// ingest is **asynchronous**. An accepted update is queued on its owner
/// shard and applied by that shard's worker thread; [`flush`] drains every
/// queue, and the authoritative read methods flush implicitly. For
/// non-blocking reads that tolerate a bounded lag, use the [`StoryView`]
/// returned by [`view`].
///
/// See the crate docs for the partitioning invariant that governs when the
/// sharded answer is identical to the single-engine answer.
///
/// [`apply_update`]: ShardedDynDens::apply_update
/// [`apply_batch`]: ShardedDynDens::apply_batch
/// [`stats`]: ShardedDynDens::stats
/// [`output_dense`]: ShardedDynDens::output_dense
/// [`flush`]: ShardedDynDens::flush
/// [`view`]: ShardedDynDens::view
#[derive(Debug)]
pub struct ShardedDynDens<D: DensityMeasure> {
    config: ShardConfig,
    engine_config: DynDensConfig,
    senders: Vec<SyncSender<WorkerMsg>>,
    engines: Vec<Arc<Mutex<DynDens<D>>>>,
    cells: Arc<Vec<EpochCell<ShardSnapshot>>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard scratch buffers reused by [`ShardedDynDens::apply_batch`].
    route_scratch: Vec<Vec<EdgeUpdate>>,
}

impl<D: DensityMeasure> ShardedDynDens<D> {
    /// Spawns `config.n_shards` worker threads, each owning an independent
    /// `DynDens` engine built from `measure` and `engine_config`.
    pub fn new(measure: D, engine_config: DynDensConfig, config: ShardConfig) -> Self {
        let n = config.n_shards;
        let cells: Arc<Vec<EpochCell<ShardSnapshot>>> =
            Arc::new((0..n).map(EpochCell::new_empty_snapshot).collect());
        let mut senders = Vec::with_capacity(n);
        let mut engines = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for shard in 0..n {
            let engine = Arc::new(Mutex::new(DynDens::new(
                measure.clone(),
                engine_config.clone(),
            )));
            let (tx, rx) = sync_channel(config.channel_capacity);
            let worker_engine = Arc::clone(&engine);
            let worker_cells = Arc::clone(&cells);
            let (max_batch, top_k) = (config.max_batch, config.top_k);
            let handle = std::thread::Builder::new()
                .name(format!("dyndens-shard-{shard}"))
                .spawn(move || {
                    worker::run(shard, rx, worker_engine, worker_cells, max_batch, top_k)
                })
                .expect("failed to spawn shard worker");
            senders.push(tx);
            engines.push(engine);
            workers.push(handle);
        }
        ShardedDynDens {
            route_scratch: vec![Vec::new(); n],
            config,
            engine_config,
            senders,
            engines,
            cells,
            workers,
        }
    }

    /// Number of shard workers.
    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// The shard configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// The per-shard engine configuration.
    pub fn engine_config(&self) -> &DynDensConfig {
        &self.engine_config
    }

    /// The shard owning `update` (the shard of its minimum endpoint).
    #[inline]
    pub fn shard_of(&self, update: &EdgeUpdate) -> usize {
        self.config
            .shard_fn
            .shard(update.a.min(update.b), self.config.n_shards)
    }

    /// Routes one update to its owner shard. Blocks only when that shard's
    /// inbox is full (backpressure).
    pub fn apply_update(&self, update: EdgeUpdate) {
        let shard = self.shard_of(&update);
        self.senders[shard]
            .send(WorkerMsg::Update(update))
            .expect("shard worker terminated while the facade is alive");
    }

    /// Routes a batch of updates, grouping them per owner shard so each shard
    /// receives one message (per-shard relative order is preserved).
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) {
        for &update in updates {
            let shard = self.shard_of(&update);
            self.route_scratch[shard].push(update);
        }
        for (shard, group) in self.route_scratch.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.senders[shard]
                .send(WorkerMsg::Batch(std::mem::take(group)))
                .expect("shard worker terminated while the facade is alive");
        }
    }

    /// Blocks until every update routed so far has been applied and published.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = channel();
        for sender in &self.senders {
            sender
                .send(WorkerMsg::Flush(ack_tx.clone()))
                .expect("shard worker terminated while the facade is alive");
        }
        drop(ack_tx);
        for _ in 0..self.senders.len() {
            ack_rx.recv().expect("shard worker dropped a flush ack");
        }
    }

    /// A non-blocking read handle over the shards' published snapshots.
    pub fn view(&self) -> StoryView {
        StoryView::new(Arc::clone(&self.cells), self.config.top_k)
    }

    /// The merged cumulative work counters of all shards (flushes first, so
    /// the ledger covers every routed update).
    pub fn stats(&self) -> EngineStats {
        self.flush();
        let guards: Vec<_> = self
            .engines
            .iter()
            .map(|e| e.lock().expect("shard engine poisoned"))
            .collect();
        EngineStats::merged(guards.iter().map(|g| g.stats()))
    }

    /// The authoritative union of the shards' output-dense subgraphs
    /// (flushes first). Order is unspecified; sort for comparisons.
    pub fn output_dense(&self) -> Vec<(VertexSet, f64)> {
        self.flush();
        let mut out = Vec::new();
        for engine in &self.engines {
            out.extend(
                engine
                    .lock()
                    .expect("shard engine poisoned")
                    .output_dense_subgraphs(),
            );
        }
        out
    }

    /// Number of output-dense subgraphs across all shards (flushes first).
    pub fn output_dense_count(&self) -> usize {
        self.flush();
        self.engines
            .iter()
            .map(|e| {
                e.lock()
                    .expect("shard engine poisoned")
                    .output_dense_count()
            })
            .sum()
    }

    /// Number of maintained (dense) subgraphs across all shards (flushes
    /// first).
    pub fn dense_count(&self) -> usize {
        self.flush();
        self.engines
            .iter()
            .map(|e| e.lock().expect("shard engine poisoned").dense_count())
            .sum()
    }

    /// Runs each shard engine's internal consistency check (flushes first).
    pub fn validate(&self) -> Result<(), String> {
        self.flush();
        for (shard, engine) in self.engines.iter().enumerate() {
            engine
                .lock()
                .expect("shard engine poisoned")
                .validate()
                .map_err(|e| format!("shard {shard}: {e}"))?;
        }
        Ok(())
    }
}

impl EpochCell<ShardSnapshot> {
    fn new_empty_snapshot(shard: usize) -> Self {
        EpochCell::new(ShardSnapshot::empty(shard))
    }
}

impl<D: DensityMeasure> Drop for ShardedDynDens<D> {
    fn drop(&mut self) {
        for sender in &self.senders {
            // A worker that already exited (or panicked) has hung up; that is
            // fine during teardown.
            let _ = sender.send(WorkerMsg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardFn;
    use dyndens_density::AvgWeight;
    use dyndens_graph::VertexId;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn sharded(n: usize) -> ShardedDynDens<AvgWeight> {
        ShardedDynDens::new(
            AvgWeight,
            DynDensConfig::new(1.0, 4).with_delta_it(0.15),
            ShardConfig::new(n)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(4),
        )
    }

    #[test]
    fn single_shard_matches_plain_engine() {
        let updates = [
            update(0, 2, 1.0),
            update(0, 3, 1.0),
            update(2, 3, 1.0),
            update(1, 3, 1.0),
            update(1, 2, 1.1),
            update(0, 1, 0.95),
        ];
        let mut reference = DynDens::new(AvgWeight, DynDensConfig::new(1.0, 4).with_delta_it(0.15));
        let mut sharded = sharded(1);
        for u in updates {
            reference.apply_update(u);
        }
        sharded.apply_batch(&updates);
        sharded.validate().unwrap();

        let mut want: Vec<VertexSet> = reference
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let mut got: Vec<VertexSet> = sharded.output_dense().into_iter().map(|(s, _)| s).collect();
        want.sort();
        got.sort();
        assert_eq!(got, want);
        assert_eq!(sharded.stats(), reference.stats().clone());
        assert_eq!(sharded.dense_count(), reference.dense_count());
    }

    #[test]
    fn updates_route_to_min_endpoint_shard() {
        let sharded = sharded(4);
        assert_eq!(sharded.n_shards(), 4);
        // Modulo sharding: min endpoint decides.
        assert_eq!(sharded.shard_of(&update(5, 2, 1.0)), 2);
        assert_eq!(sharded.shard_of(&update(3, 7, 1.0)), 3);
        assert_eq!(sharded.shard_of(&update(8, 1, 1.0)), 1);
        assert_eq!(sharded.shard_of(&update(8, 12, 1.0)), 0);
    }

    #[test]
    fn disjoint_communities_are_maintained_per_shard() {
        // Two 3-cliques on residues 0 and 1 (mod 2): each lives wholly in one
        // shard, and the union answer covers both.
        let mut sharded = sharded(2);
        let cliques: &[&[u32]] = &[&[0, 2, 4], &[1, 3, 5]];
        let mut updates = Vec::new();
        for clique in cliques {
            for (i, &a) in clique.iter().enumerate() {
                for &b in &clique[i + 1..] {
                    updates.push(update(a, b, 1.2));
                }
            }
        }
        sharded.apply_batch(&updates);
        sharded.validate().unwrap();
        let got = sharded.output_dense();
        // Each 3-clique contributes 3 pairs + 1 triangle.
        assert_eq!(got.len(), 8);
        assert_eq!(sharded.output_dense_count(), 8);
        assert!(sharded.dense_count() >= 8);
        let stats = sharded.stats();
        assert_eq!(stats.updates, updates.len() as u64);

        // The view serves the same stories, sequence-numbered.
        let view = sharded.view();
        let merged = view.snapshot();
        assert_eq!(merged.seq, updates.len() as u64);
        assert_eq!(merged.output_dense_total, 8);
        assert_eq!(merged.stories.len(), 8.min(sharded.config().top_k));
        let top_density = merged.stories[0].1;
        assert!((top_density - 1.2).abs() < 1e-9);
        assert_eq!(view.stats().updates, stats.updates);
    }

    #[test]
    fn flush_makes_single_update_path_visible() {
        let sharded = sharded(2);
        sharded.apply_update(update(0, 2, 1.5));
        sharded.apply_update(update(1, 3, 1.5));
        sharded.flush();
        let view = sharded.view();
        let merged = view.snapshot();
        assert_eq!(merged.seq, 2);
        assert_eq!(merged.per_shard_seq, vec![1, 1]);
        assert_eq!(merged.output_dense_total, 2);
        // Delta events for each shard's last batch are exposed.
        let snap = view.shard_snapshot(0);
        assert_eq!(snap.delta_base_seq, 0);
        assert_eq!(snap.delta_events.len(), 1);
        assert!(snap.delta_events[0].is_became());
    }

    #[test]
    fn negative_updates_and_evictions_propagate() {
        let mut sharded = sharded(2);
        sharded.apply_batch(&[update(0, 2, 1.5), update(1, 3, 1.5)]);
        assert_eq!(sharded.output_dense_count(), 2);
        sharded.apply_batch(&[update(0, 2, -1.0)]);
        assert_eq!(sharded.output_dense_count(), 1);
        let view = sharded.view();
        let snap = view.shard_snapshot(0);
        assert!(snap.delta_events.iter().any(|e| !e.is_became()));
        let stats = sharded.stats();
        assert_eq!(stats.negative_updates, 1);
        assert_eq!(stats.subgraphs_evicted, 1);
    }
}
