//! The shard worker: a thread owning one engine, fed by a bounded channel.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dyndens_core::{DenseEvent, MaintenanceEngine};
use dyndens_graph::{EdgeUpdate, VertexSet};

use crate::obs::{ShardObs, WalObs};
use crate::recovery;
use crate::view::{DeltaBatch, DeltaRing, EpochCell, ShardSnapshot};
use crate::wal::WalWriter;

/// Messages a shard worker consumes.
pub(crate) enum WorkerMsg {
    /// Apply one update.
    Update(EdgeUpdate),
    /// Apply a pre-routed batch of updates.
    Batch(Vec<EdgeUpdate>),
    /// Acknowledge once every previously sent update has been applied and its
    /// snapshot published.
    Flush(Sender<()>),
    /// Evict every engine edge with weight at or below `min_weight` (WAL-logged
    /// like ordinary updates), force a checkpoint, prune the WAL behind it,
    /// and acknowledge with the number of edges evicted.
    Compact {
        /// The eviction floor handed to [`MaintenanceEngine::edges_below`].
        min_weight: f64,
        /// Receives the number of edges evicted once the pass is durable.
        ack: Sender<u64>,
    },
    /// Stop after processing everything drained alongside this message.
    Shutdown,
}

/// A control message that terminates a drain; the worker applies whatever
/// micro-batch it drained first, then acts on the control.
enum Control {
    Shutdown,
    Compact { min_weight: f64, ack: Sender<u64> },
}

/// The durability half of a worker: its WAL writer and snapshot cadence.
pub(crate) struct WorkerPersistence {
    /// The shard's WAL, positioned to append.
    pub wal: WalWriter,
    /// The shard's persistence directory (snapshots are written here).
    pub dir: PathBuf,
    /// Snapshot every N micro-batches.
    pub snapshot_every: usize,
    /// How many snapshots to retain.
    pub retained: usize,
    /// Micro-batches applied since the last snapshot.
    pub batches_since_snapshot: usize,
}

/// Everything a worker thread is parameterised by at spawn time (beyond its
/// shared engine/cell handles).
pub(crate) struct WorkerSetup {
    /// The worker's slot index, shared with the facade: a shard **merge**
    /// that frees a middle slot renumbers the last live worker into the
    /// freed slot by storing into this cell — the worker stamps every
    /// snapshot it publishes with the current value, so readers never see a
    /// stale slot number.
    pub slot: Arc<AtomicU32>,
    /// Micro-batch drain bound.
    pub max_batch: usize,
    /// Stories kept per published snapshot.
    pub top_k: usize,
    /// The shard's sequence number at spawn (non-zero after recovery).
    pub initial_seq: u64,
    /// The durability half, absent for in-memory deployments.
    pub persist: Option<WorkerPersistence>,
    /// Pre-registered metric handles, absent when the deployment has no
    /// registry attached.
    pub obs: Option<ShardObs>,
}

/// The worker loop: block on the inbox, drain up to `max_batch` pending
/// messages, WAL the drained micro-batch (durability first), apply it under
/// a single engine lock, publish a fresh snapshot, acknowledge flushes,
/// periodically checkpoint the engine, repeat.
pub(crate) fn run<E: MaintenanceEngine>(
    setup: WorkerSetup,
    inbox: Receiver<WorkerMsg>,
    engine: Arc<Mutex<E>>,
    cell: Arc<EpochCell<ShardSnapshot>>,
    ring: Arc<DeltaRing>,
) {
    let WorkerSetup {
        slot,
        max_batch,
        top_k,
        initial_seq,
        mut persist,
        mut obs,
    } = setup;
    let mut seq: u64 = initial_seq;
    // Scratch buffers reused across micro-batches.
    let mut pending: Vec<EdgeUpdate> = Vec::with_capacity(max_batch);
    let mut acks: Vec<Sender<()>> = Vec::new();
    let mut events: Vec<DenseEvent> = Vec::new();

    loop {
        let first = match inbox.recv() {
            Ok(msg) => msg,
            // All senders dropped: the facade is gone, stop quietly.
            Err(_) => break,
        };
        let mut control = absorb(first, &mut pending, &mut acks);
        // Micro-batching: drain whatever else is already queued, up to the
        // configured bound, so channel wakeups and engine locking amortise.
        // A control message (shutdown, compact) ends the drain so it acts at
        // its position in the queue order.
        while control.is_none() && pending.len() < max_batch {
            match inbox.try_recv() {
                Ok(msg) => control = absorb(msg, &mut pending, &mut acks),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }

        let shard = slot.load(Ordering::Relaxed) as usize;
        // A shard merge can renumber this worker's slot; relabel the metric
        // handles (a rare, registration-cost path) so per-shard series keep
        // matching the slot readers see in published snapshots.
        if let Some(o) = obs.as_mut() {
            if o.slot != shard as u32 {
                let registry = Arc::clone(&o.registry);
                *o = ShardObs::for_slot(&registry, shard as u32);
                if let Some(p) = persist.as_mut() {
                    p.wal
                        .set_obs(Some(WalObs::for_slot(&registry, shard as u32)));
                }
            }
        }
        if !pending.is_empty() {
            // Durability before visibility: the micro-batch is in the WAL
            // before the engine sees it, so a crash at any later point can
            // replay it. An append failure is a broken durability contract —
            // better to kill the worker (and surface the panic on the next
            // facade call) than to silently continue unlogged.
            if let Some(p) = persist.as_mut() {
                p.wal
                    .append(seq, &pending)
                    .unwrap_or_else(|e| panic!("shard {shard}: WAL append failed: {e}"));
            }
            events.clear();
            let delta_base_seq = seq;
            let batch_len = pending.len();
            let apply_started = obs.as_ref().map(|_| Instant::now());
            let mut apply_elapsed = Duration::ZERO;
            let (snapshot, checkpoint) = {
                let mut guard = engine.lock().expect("shard engine poisoned");
                for update in pending.drain(..) {
                    guard.apply_update_into(update, &mut events);
                    seq += 1;
                }
                // Apply latency as the worker experienced it: lock wait plus
                // the engine work, excluding checkpoint serialisation.
                if let Some(t) = apply_started {
                    apply_elapsed = t.elapsed();
                }
                // Serialise the checkpoint image while the lock guarantees
                // it corresponds exactly to `seq`; write it to disk after
                // the lock is released. The cadence counter is only reset
                // once the write succeeds, so a failed checkpoint (e.g.
                // disk full) is retried on the next micro-batch instead of
                // a full cadence later.
                let checkpoint = match persist.as_mut() {
                    Some(p) => {
                        p.batches_since_snapshot += 1;
                        (p.batches_since_snapshot >= p.snapshot_every).then(|| guard.snapshot())
                    }
                    None => None,
                };
                (
                    build_snapshot(shard, &mut *guard, seq, delta_base_seq, &events, top_k),
                    checkpoint,
                )
            };
            // Retention before visibility: the ring covers the new seq before
            // the epoch pointer announces it, so a poller that observes the
            // new seq can always fetch its deltas.
            ring.push(DeltaBatch {
                base_seq: delta_base_seq,
                seq,
                events: Arc::clone(&snapshot.delta_events),
            });
            if let Some(o) = obs.as_ref() {
                o.record_batch(batch_len, apply_elapsed);
                o.set_engine_gauges(&snapshot.stats);
            }
            cell.store_with_seq(Arc::new(snapshot), seq);
            if let (Some(bytes), Some(p)) = (checkpoint, persist.as_mut()) {
                // A failed checkpoint is not fatal: the WAL still covers the
                // whole history since the last good snapshot.
                let ckpt_started = obs.as_ref().map(|_| Instant::now());
                match recovery::write_snapshot(&p.dir, seq, &bytes, p.retained) {
                    Ok(oldest_retained) => {
                        p.batches_since_snapshot = 0;
                        if let (Some(o), Some(t)) = (obs.as_ref(), ckpt_started) {
                            o.record_checkpoint(seq, bytes.len() as u64, t.elapsed());
                        }
                        if let Err(e) = p
                            .wal
                            .rotate(seq)
                            .and_then(|()| p.wal.prune_to(oldest_retained))
                        {
                            eprintln!("shard {shard}: WAL rotate/prune failed: {e}");
                        }
                    }
                    Err(e) => eprintln!("shard {shard}: snapshot write failed: {e}"),
                }
            }
        }
        if let Some(Control::Compact { min_weight, ack }) = &control {
            // A compaction pass: evict decayed-out edges through the normal
            // update path (WAL first, so crash replay reproduces the
            // eviction bit-for-bit), then checkpoint unconditionally and
            // prune the WAL behind the checkpoint — the "fold evicted state
            // out of the snapshot, truncate the log" half of bounded-state
            // operation.
            events.clear();
            let delta_base_seq = seq;
            let (snapshot, checkpoint, evicted) = {
                let mut guard = engine.lock().expect("shard engine poisoned");
                let victims = guard.edges_below(*min_weight);
                if let Some(p) = persist.as_mut() {
                    if !victims.is_empty() {
                        p.wal
                            .append(seq, &victims)
                            .unwrap_or_else(|e| panic!("shard {shard}: WAL append failed: {e}"));
                    }
                }
                let report = guard.evict_below(*min_weight, &mut events);
                debug_assert_eq!(report.edges_evicted as usize, victims.len());
                seq += report.edges_evicted;
                let checkpoint = persist.is_some().then(|| guard.snapshot());
                (
                    build_snapshot(shard, &mut *guard, seq, delta_base_seq, &events, top_k),
                    checkpoint,
                    report.edges_evicted,
                )
            };
            ring.push(DeltaBatch {
                base_seq: delta_base_seq,
                seq,
                events: Arc::clone(&snapshot.delta_events),
            });
            cell.store_with_seq(Arc::new(snapshot), seq);
            if let (Some(bytes), Some(p)) = (checkpoint, persist.as_mut()) {
                let ckpt_started = obs.as_ref().map(|_| Instant::now());
                match recovery::write_snapshot(&p.dir, seq, &bytes, p.retained) {
                    Ok(oldest_retained) => {
                        p.batches_since_snapshot = 0;
                        if let (Some(o), Some(t)) = (obs.as_ref(), ckpt_started) {
                            o.record_checkpoint(seq, bytes.len() as u64, t.elapsed());
                        }
                        if let Err(e) = p
                            .wal
                            .rotate(seq)
                            .and_then(|()| p.wal.prune_to(oldest_retained))
                        {
                            eprintln!("shard {shard}: WAL rotate/prune failed: {e}");
                        }
                    }
                    Err(e) => eprintln!("shard {shard}: compaction checkpoint failed: {e}"),
                }
            }
            // A dropped compaction waiter is not an error.
            let _ = ack.send(evicted);
        }
        for ack in acks.drain(..) {
            // A dropped flush waiter is not an error.
            let _ = ack.send(());
        }
        if matches!(control, Some(Control::Shutdown)) {
            break;
        }
    }
}

/// Folds one message into the drain buffers; a returned [`Control`] ends the
/// drain.
fn absorb(
    msg: WorkerMsg,
    pending: &mut Vec<EdgeUpdate>,
    acks: &mut Vec<Sender<()>>,
) -> Option<Control> {
    match msg {
        WorkerMsg::Update(u) => pending.push(u),
        WorkerMsg::Batch(batch) => pending.extend(batch),
        WorkerMsg::Flush(ack) => acks.push(ack),
        WorkerMsg::Compact { min_weight, ack } => {
            return Some(Control::Compact { min_weight, ack })
        }
        WorkerMsg::Shutdown => return Some(Control::Shutdown),
    }
    None
}

/// Renders the engine's current answer into an immutable snapshot.
pub(crate) fn build_snapshot<E: MaintenanceEngine>(
    shard: usize,
    engine: &mut E,
    seq: u64,
    delta_base_seq: u64,
    events: &[DenseEvent],
    top_k: usize,
) -> ShardSnapshot {
    let mut stories: Vec<(VertexSet, f64)> = engine.output_dense_subgraphs();
    let output_dense = stories.len();
    crate::view::sort_stories(&mut stories);
    stories.truncate(top_k);
    ShardSnapshot {
        shard,
        seq,
        top_stories: stories,
        output_dense,
        stats: engine.stats().clone(),
        delta_base_seq,
        delta_events: events.into(),
    }
}
