//! The shard worker: a thread owning one engine, fed by a bounded channel.

use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};

use dyndens_core::{DenseEvent, DynDens};
use dyndens_density::DensityMeasure;
use dyndens_graph::{EdgeUpdate, VertexSet};

use crate::view::{EpochCell, ShardSnapshot};

/// Messages a shard worker consumes.
pub(crate) enum WorkerMsg {
    /// Apply one update.
    Update(EdgeUpdate),
    /// Apply a pre-routed batch of updates.
    Batch(Vec<EdgeUpdate>),
    /// Acknowledge once every previously sent update has been applied and its
    /// snapshot published.
    Flush(Sender<()>),
    /// Stop after processing everything drained alongside this message.
    Shutdown,
}

/// The worker loop: block on the inbox, drain up to `max_batch` pending
/// messages, apply the drained updates under a single engine lock, publish a
/// fresh snapshot, acknowledge flushes, repeat.
pub(crate) fn run<D: DensityMeasure>(
    shard: usize,
    inbox: Receiver<WorkerMsg>,
    engine: Arc<Mutex<DynDens<D>>>,
    cells: Arc<Vec<EpochCell<ShardSnapshot>>>,
    max_batch: usize,
    top_k: usize,
) {
    let mut seq: u64 = 0;
    // Scratch buffers reused across micro-batches.
    let mut pending: Vec<EdgeUpdate> = Vec::with_capacity(max_batch);
    let mut acks: Vec<Sender<()>> = Vec::new();
    let mut events: Vec<DenseEvent> = Vec::new();

    loop {
        let first = match inbox.recv() {
            Ok(msg) => msg,
            // All senders dropped: the facade is gone, stop quietly.
            Err(_) => break,
        };
        let mut shutdown = absorb(first, &mut pending, &mut acks);
        // Micro-batching: drain whatever else is already queued, up to the
        // configured bound, so channel wakeups and engine locking amortise.
        while !shutdown && pending.len() < max_batch {
            match inbox.try_recv() {
                Ok(msg) => shutdown = absorb(msg, &mut pending, &mut acks),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }

        if !pending.is_empty() {
            events.clear();
            let delta_base_seq = seq;
            let snapshot = {
                let mut guard = engine.lock().expect("shard engine poisoned");
                for update in pending.drain(..) {
                    guard.apply_update_into(update, &mut events);
                    seq += 1;
                }
                build_snapshot(shard, &guard, seq, delta_base_seq, &events, top_k)
            };
            cells[shard].store(Arc::new(snapshot));
        }
        for ack in acks.drain(..) {
            // A dropped flush waiter is not an error.
            let _ = ack.send(());
        }
        if shutdown {
            break;
        }
    }
}

/// Folds one message into the drain buffers; returns `true` on shutdown.
fn absorb(msg: WorkerMsg, pending: &mut Vec<EdgeUpdate>, acks: &mut Vec<Sender<()>>) -> bool {
    match msg {
        WorkerMsg::Update(u) => pending.push(u),
        WorkerMsg::Batch(batch) => pending.extend(batch),
        WorkerMsg::Flush(ack) => acks.push(ack),
        WorkerMsg::Shutdown => return true,
    }
    false
}

/// Renders the engine's current answer into an immutable snapshot.
fn build_snapshot<D: DensityMeasure>(
    shard: usize,
    engine: &DynDens<D>,
    seq: u64,
    delta_base_seq: u64,
    events: &[DenseEvent],
    top_k: usize,
) -> ShardSnapshot {
    let mut stories: Vec<(VertexSet, f64)> = engine.output_dense_subgraphs();
    let output_dense = stories.len();
    crate::view::sort_stories(&mut stories);
    stories.truncate(top_k);
    ShardSnapshot {
        shard,
        seq,
        top_stories: stories,
        output_dense,
        stats: engine.stats().clone(),
        delta_base_seq,
        delta_events: events.to_vec(),
    }
}
