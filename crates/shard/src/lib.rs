//! # dyndens-shard
//!
//! Sharded parallel ingest and story serving for DynDens: the scale-out layer
//! that turns the single-threaded engine of `dyndens-core` into a
//! multi-core subsystem with non-blocking reads, in the mould of
//! partition-parallel streaming-graph systems (S-Graffito; Nasir et al.'s
//! partitioned top-k densest-subgraph maintenance).
//!
//! Since the backend seam landed, the whole layer is **generic over the
//! maintenance strategy**: [`ShardedFleet`] drives any
//! [`dyndens_core::MaintenanceEngine`] (built, restored and fingerprinted by
//! an [`dyndens_core::EngineBlueprint`]) through identical routing, WAL,
//! recovery, rebalance and serving machinery, and [`ShardedDynDens`] is its
//! canonical DynDens specialisation. The deployment `MANIFEST` pins the
//! engine kind, so a directory written by one backend can never be reopened
//! under another. See `docs/BACKENDS.md`.
//!
//! ## Architecture
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!  EdgeUpdate stream   │ ShardedDynDens                             │
//!  ────────────────────┤  router: shard_of(min(u, v), N)            │
//!                      │   │bounded MPSC│bounded MPSC│bounded MPSC  │
//!                      │   ▼            ▼            ▼              │
//!                      │ worker 0     worker 1     worker N-1       │
//!                      │ DynDens_0    DynDens_1    DynDens_N-1      │
//!                      │   │ publish    │ publish    │ publish      │
//!                      │   ▼            ▼            ▼              │
//!                      │ epoch cell   epoch cell   epoch cell       │
//!                      └───┬────────────┬────────────┬──────────────┘
//!                          └──── StoryView::snapshot ┘  (readers)
//! ```
//!
//! * **Router** — edge `(u, v)` is owned by `shard_of(min(u, v), N)` (see
//!   [`dyndens_graph::shard_of`]); every update to a given edge therefore
//!   lands on the same shard, in submission order.
//! * **Workers** — each shard worker owns an independent [`DynDens`](dyndens_core::DynDens) engine
//!   over its slice of the edge stream, fed by a bounded MPSC channel
//!   (backpressure by blocking the producer), and drains up to
//!   [`ShardConfig::max_batch`] queued messages per wakeup so channel and
//!   lock overhead amortise across micro-batches (applied via
//!   `apply_update_into` into one scratch event buffer).
//! * **Read path** — after every micro-batch a worker publishes an immutable
//!   [`ShardSnapshot`] (sequence number, top-k output-dense subgraphs,
//!   [`DenseEvent`](dyndens_core::DenseEvent) deltas, merged-ready [`EngineStats`](dyndens_core::EngineStats)) into an
//!   ArcSwap-style [`EpochCell`]. [`StoryView::snapshot`] merges the shard
//!   snapshots into a sequence-numbered top-k view without ever blocking the
//!   writers for more than a pointer clone.
//! * **Poll path** — each publication also stamps the cell's atomic sequence
//!   number ([`EpochCell::seq`], one relaxed load to check for progress) and
//!   appends the micro-batch's events to a bounded per-shard [`DeltaRing`].
//!   [`StoryView::deltas_since`] turns the two into a cheap incremental read:
//!   a reader that last saw sequence `s` gets back either *nothing changed*,
//!   the exact contiguous event suffix after `s`, or a *resync* directive
//!   once it falls behind the retention bound. This is the substrate the
//!   `dyndens-serve` wire protocol's `Poll` request is built on.
//!
//! ## The partitioning invariant
//!
//! Each shard maintains dense subgraphs over **its slice of the graph**: the
//! edges whose minimum endpoint hashes to it. The union of the shards'
//! output-dense sets equals the single-engine answer exactly when no
//! output-relevant subgraph spans two shards, i.e. when every maintained
//! subgraph's edges share an owner shard. Two workload properties make this
//! hold (and are asserted by the equivalence tests):
//!
//! 1. **co-location** — each dense community's edges map to one shard (e.g.
//!    communities drawn from congruence classes under
//!    [`ShardFn::Modulo`], or any partition-aligned entity id assignment);
//! 2. **no too-dense escalation** — scores stay below the too-dense bound,
//!    so no `*`-marker machinery materialises subgraphs through edges that
//!    are disjoint from the community (the one mechanism that can couple
//!    otherwise edge-disjoint vertex groups).
//!
//! On workloads that violate the invariant the subsystem still runs and is
//! deterministic per shard, but reports the union of per-shard answers — a
//! partition approximation of the global answer, the standard trade taken by
//! partition-parallel dense-subgraph systems. Entity resolution in the story
//! pipeline can route co-occurring entities to the same congruence class to
//! keep the invariant in practice.
//!
//! ## Durability
//!
//! [`ShardedDynDens::with_persistence`] makes each shard crash-safe: the
//! worker appends every micro-batch to a per-shard write-ahead log
//! ([`wal`]) *before* applying it, and checkpoints its engine with
//! [`DynDens::snapshot`](dyndens_core::DynDens::snapshot) every
//! [`PersistenceConfig::snapshot_every_batches`] micro-batches. Recovery
//! ([`recovery`]) is `newest valid snapshot + WAL tail replay` and rebuilds
//! a state **bit-identical** to a worker that never crashed, without
//! double-counting replayed updates into [`EngineStats`](dyndens_core::EngineStats).
//!
//! ## Live rebalancing
//!
//! Routing is a level of indirection, not a fixed function: updates flow
//! through a **generational shard map** ([`dyndens_graph::ShardMap`], a
//! route trie refined one split at a time and persisted in the deployment
//! `MANIFEST`). [`ShardedDynDens::split_shard`] splits a hot shard online —
//! quiesce that one worker, rebuild two children from its newest checkpoint
//! plus its WAL slice filtered through the refined map, commit atomically —
//! while ingest on every other shard continues and readers resynchronise
//! through the ordinary [`StoryView`] plumbing.
//! [`ShardedDynDens::merge_shards`] is the exact inverse: two cold sibling
//! slots quiesce, recover from their own durable state, are absorbed into
//! one merged engine and committed through the same manifest rewrite. The
//! [`rebalance`] module documents both protocols, the equivalence guarantee
//! (split-or-merge-mid-stream == never-refined, bit for bit, under the
//! partitioning invariant) and the failure semantics;
//! [`rebalance::Rebalancer`] turns the fleet's queue depth and skew signals
//! into split decisions and its cold-slot signals into merge decisions.
//!
//! ## Bounded state
//!
//! On decaying workloads, [`ShardedDynDens::compact_below`] reclaims what
//! decay has abandoned: each worker evicts fully-decayed edges through the
//! ordinary WAL-logged update path
//! ([`DynDens::evict_below`](dyndens_core::DynDens::evict_below)), then
//! checkpoints and prunes the WAL segments wholly behind the checkpoint.
//! Together with shard merging this keeps a forever-run's memory and disk
//! footprint proportional to the *live* story set, not the stream's history
//! — see `docs/RETENTION.md` for the operational model.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
mod obs;
pub mod rebalance;
pub mod recovery;
pub mod sharded;
pub mod view;
pub mod wal;
mod worker;

pub use config::{FsyncPolicy, PersistenceConfig, ShardConfig, ShardFn};
pub use rebalance::{
    MergePhase, MergeReport, RebalanceError, RebalancePolicy, Rebalancer, SplitPhase, SplitReport,
};
pub use recovery::{RecoveryError, RecoveryReport};
pub use sharded::{IngestHandle, ShardedDynDens, ShardedFleet};
pub use view::{
    DeltaBatch, DeltaCatchUp, DeltaRing, EpochCell, MergedStories, PublishWaker, ShardSnapshot,
    StoryView,
};
pub use wal::{WalRecord, WalWriter};

// Send/Sync audit: the engine and every payload crossing a worker-thread
// boundary must be shareable. Enforced at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<dyndens_core::DynDens<dyndens_density::AvgWeight>>();
    assert_send_sync::<dyndens_core::DenseEvent>();
    assert_send_sync::<dyndens_core::EngineStats>();
    assert_send_sync::<view::ShardSnapshot>();
    assert_send_sync::<view::StoryView>();
};
