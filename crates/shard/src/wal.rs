//! The per-shard write-ahead log: append-only segments of CRC-framed,
//! length-prefixed micro-batch records.
//!
//! Each shard worker appends one record per micro-batch **before** applying
//! it to its engine, so that after a crash the updates between the last
//! snapshot and the crash point can be replayed. The log is a sequence of
//! segment files (`wal-00000000.log`, `wal-00000001.log`, …); the writer
//! rotates to a fresh segment when the current one exceeds the configured
//! size or when a snapshot is taken (so whole segments become prunable once
//! a snapshot covers them).
//!
//! ## Record framing
//!
//! ```text
//! record  := len u32 | crc32(payload) u32 | payload
//! payload := first_seq u64 | count u32 | count × EdgeUpdate (16 bytes each)
//! ```
//!
//! `first_seq` is the shard's update sequence number *before* the batch:
//! the record covers sequence numbers `first_seq .. first_seq + count`.
//! Replay uses it to skip the prefix already covered by a snapshot and to
//! detect gaps (which indicate genuine log loss, not a torn tail).
//!
//! A torn write — the process died mid-append — leaves a truncated or
//! CRC-invalid suffix at the end of the final segment. [`scan_segment`]
//! stops cleanly at the first invalid byte and reports where the valid
//! prefix ends, so recovery can truncate the tear away and resume appending;
//! it never panics on corrupt input.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use dyndens_graph::codec::{put_frame, put_u32, put_u64, scan_frames, ByteReader};
use dyndens_graph::EdgeUpdate;
use dyndens_obs::ObsEvent;

use crate::config::FsyncPolicy;
use crate::obs::WalObs;

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";

/// Builds the path of segment `no` inside `dir`.
pub fn segment_path(dir: &Path, no: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{no:08}{SEGMENT_SUFFIX}"))
}

/// Fsyncs a directory, making freshly created or renamed entries durable.
/// Without this, `sync_data` on a brand-new segment file protects its
/// *contents* but the directory entry itself can vanish in an OS/power
/// crash — losing the whole "durable" segment.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Lists the WAL segments in `dir` as `(segment_no, path)`, ascending.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = match name.to_str() {
            Some(n) => n,
            None => continue,
        };
        if let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        {
            if let Ok(no) = stem.parse::<u64>() {
                out.push((no, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|&(no, _)| no);
    Ok(out)
}

/// One decoded WAL record: a micro-batch and the shard sequence number it
/// starts at.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The shard's update sequence number before this batch was applied.
    pub first_seq: u64,
    /// The batch, in application order.
    pub updates: Vec<EdgeUpdate>,
}

impl WalRecord {
    /// The sequence number after the whole batch: `first_seq + count`.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + self.updates.len() as u64
    }
}

/// The result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Every fully valid record, in file order.
    pub records: Vec<WalRecord>,
    /// `true` if the file ended exactly at a record boundary; `false` if a
    /// truncated or corrupt suffix follows the last valid record (a torn
    /// tail).
    pub clean: bool,
    /// Byte offset of the end of the last valid record — the length the file
    /// should be truncated to when repairing a torn tail.
    pub valid_len: u64,
}

/// Scans a segment file, decoding records until the first invalid byte.
///
/// Corruption is not an error at this layer: the scan stops cleanly and the
/// caller decides whether a dirty tail is acceptable (torn tail of the final
/// segment) or fatal (corruption in the middle of the log).
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let bytes = fs::read(path)?;
    let mut records = Vec::new();
    // CRC-valid but semantically invalid payloads (closure returns false)
    // are treated like any other corruption: the scan stops at the record
    // boundary.
    let scan = scan_frames(&bytes, |payload| {
        let parsed = (|| -> Result<WalRecord, dyndens_graph::CodecError> {
            let mut r = ByteReader::new(payload);
            let first_seq = r.u64()?;
            let count = r.u32()? as usize;
            if 12 + count * EdgeUpdate::ENCODED_LEN != payload.len() {
                return Err(dyndens_graph::CodecError::Invalid(
                    "record length disagrees with update count",
                ));
            }
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                updates.push(EdgeUpdate::decode(&mut r)?);
            }
            Ok(WalRecord { first_seq, updates })
        })();
        match parsed {
            Ok(rec) => {
                records.push(rec);
                true
            }
            Err(_) => false,
        }
    });
    Ok(SegmentScan {
        records,
        clean: scan.clean,
        valid_len: scan.valid_len,
    })
}

/// The append side of a shard's WAL.
///
/// Opening always starts a **fresh** segment (numbered after any existing
/// ones): prior segments are never appended to again, which keeps them
/// immutable after a restart and sidesteps writing past a repaired tear.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    /// Live segments as `(segment_no, start_seq)`, ascending; the last entry
    /// is the segment currently being appended to. `start_seq` is the shard
    /// sequence number at which the segment begins — segment `i` covers
    /// sequence numbers `start_seq[i] .. start_seq[i + 1]`.
    segments: Vec<(u64, u64)>,
    seg_bytes: u64,
    fsync: FsyncPolicy,
    segment_max_bytes: u64,
    /// Pre-registered metric handles; `None` keeps every instrumentation
    /// site on the uninstrumented fast path.
    obs: Option<WalObs>,
}

impl WalWriter {
    /// Opens the WAL in `dir` for appending from sequence number
    /// `start_seq`, given the live `existing` segments (as `(segment_no,
    /// start_seq)`, ascending — recovery computes these while replaying).
    pub fn open(
        dir: &Path,
        start_seq: u64,
        existing: Vec<(u64, u64)>,
        fsync: FsyncPolicy,
        segment_max_bytes: u64,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let next_no = existing.last().map_or(0, |&(no, _)| no + 1);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(dir, next_no))?;
        if fsync == FsyncPolicy::Always {
            sync_dir(dir)?;
        }
        let mut segments = existing;
        segments.push((next_no, start_seq));
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            segments,
            seg_bytes: 0,
            fsync,
            segment_max_bytes: segment_max_bytes.max(1),
            obs: None,
        })
    }

    /// Attaches (or detaches) pre-registered metric handles. Also refreshes
    /// the segment gauges so a scrape right after recovery is accurate.
    pub(crate) fn set_obs(&mut self, obs: Option<WalObs>) {
        if let Some(o) = &obs {
            o.segments.set(self.segments.len() as u64);
            o.segment_bytes.set(self.seg_bytes);
        }
        self.obs = obs;
    }

    /// Number of live segment files (including the one being written).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Appends one micro-batch covering sequence numbers
    /// `first_seq .. first_seq + updates.len()`, honouring the fsync policy,
    /// and rotates if the segment grew past its size bound.
    pub fn append(&mut self, first_seq: u64, updates: &[EdgeUpdate]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(12 + updates.len() * EdgeUpdate::ENCODED_LEN);
        put_u64(&mut payload, first_seq);
        put_u32(&mut payload, updates.len() as u32);
        for u in updates {
            u.encode_into(&mut payload);
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_frame(&mut frame, &payload);
        let started = self.obs.as_ref().map(|_| Instant::now());
        self.file.write_all(&frame)?;
        if self.fsync == FsyncPolicy::Always {
            let sync_started = self.obs.as_ref().map(|_| Instant::now());
            self.file.sync_data()?;
            if let (Some(o), Some(t)) = (self.obs.as_ref(), sync_started) {
                let fsync_us = t.elapsed().as_micros().min(u64::MAX as u128) as u64;
                o.fsyncs.inc();
                o.fsync_us.record(fsync_us);
                o.registry.emit(ObsEvent::WalFsync {
                    shard: o.slot,
                    bytes: frame.len() as u64,
                    fsync_us,
                });
            }
        }
        self.seg_bytes += frame.len() as u64;
        if let (Some(o), Some(t)) = (self.obs.as_ref(), started) {
            // Append latency covers the write plus any policy-driven fsync:
            // the full durability cost the micro-batch paid on the hot path.
            o.appends.inc();
            o.append_bytes.add(frame.len() as u64);
            o.append_us.record_micros(t.elapsed());
            o.segment_bytes.set(self.seg_bytes);
        }
        if self.seg_bytes >= self.segment_max_bytes {
            self.rotate(first_seq + updates.len() as u64)?;
        }
        Ok(())
    }

    /// Closes the current segment and starts a new one whose records begin
    /// at `next_seq`. Called on size overflow and after every snapshot (so
    /// snapshot boundaries coincide with segment boundaries, making pruning
    /// a whole-file operation).
    pub fn rotate(&mut self, next_seq: u64) -> io::Result<()> {
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
            if let Some(o) = self.obs.as_ref() {
                o.fsyncs.inc();
            }
        }
        let next_no = self.segments.last().map_or(0, |&(no, _)| no + 1);
        self.file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.dir, next_no))?;
        if self.fsync == FsyncPolicy::Always {
            sync_dir(&self.dir)?;
        }
        self.segments.push((next_no, next_seq));
        self.seg_bytes = 0;
        if let Some(o) = self.obs.as_ref() {
            o.rotations.inc();
            o.segments.set(self.segments.len() as u64);
            o.segment_bytes.set(0);
        }
        Ok(())
    }

    /// Deletes every segment fully covered by sequence numbers below
    /// `keep_from_seq` (i.e. whose successor segment starts at or before
    /// it). The current segment is never deleted. Returns the number of
    /// segments removed.
    pub fn prune_to(&mut self, keep_from_seq: u64) -> io::Result<usize> {
        let mut removed = 0;
        while self.segments.len() >= 2 && self.segments[1].1 <= keep_from_seq {
            let (no, _) = self.segments.remove(0);
            fs::remove_file(segment_path(&self.dir, no))?;
            removed += 1;
        }
        if let Some(o) = self.obs.as_ref() {
            o.segments_pruned.add(removed as u64);
            o.segments.set(self.segments.len() as u64);
        }
        Ok(removed)
    }

    /// Forces buffered records to stable storage regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::VertexId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dyndens-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn batch(n: usize, base: u32) -> Vec<EdgeUpdate> {
        (0..n as u32)
            .map(|i| update(base + i, base + i + 1, 0.5 + i as f64))
            .collect()
    }

    fn scan_all(dir: &Path) -> Vec<WalRecord> {
        let mut out = Vec::new();
        for (_, path) in list_segments(dir).unwrap() {
            let scan = scan_segment(&path).unwrap();
            assert!(scan.clean);
            out.extend(scan.records);
        }
        out
    }

    #[test]
    fn append_and_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::open(&dir, 0, Vec::new(), FsyncPolicy::Never, 1 << 20).unwrap();
        let b1 = batch(3, 0);
        let b2 = batch(5, 10);
        w.append(0, &b1).unwrap();
        w.append(3, &b2).unwrap();
        w.sync().unwrap();

        let records = scan_all(&dir);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].first_seq, 0);
        assert_eq!(records[0].updates, b1);
        assert_eq!(records[1].first_seq, 3);
        assert_eq!(records[1].updates, b2);
        assert_eq!(records[1].end_seq(), 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_rotation_and_pruning() {
        let dir = temp_dir("rotate");
        // Tiny segment bound: every batch rotates.
        let mut w = WalWriter::open(&dir, 0, Vec::new(), FsyncPolicy::Never, 64).unwrap();
        let mut seq = 0u64;
        for i in 0..4 {
            let b = batch(4, i * 10);
            w.append(seq, &b).unwrap();
            seq += b.len() as u64;
        }
        assert!(w.segment_count() >= 4, "size bound must force rotation");
        let n_files = list_segments(&dir).unwrap().len();
        assert_eq!(n_files, w.segment_count());

        // Everything before seq 8 is covered elsewhere: the first two
        // segments (4 updates each) go away.
        let removed = w.prune_to(8).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(list_segments(&dir).unwrap().len(), n_files - 2);
        // Remaining records still replay from seq 8.
        let records = scan_all(&dir);
        assert_eq!(records.first().unwrap().first_seq, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_stops_scan_cleanly() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::open(&dir, 0, Vec::new(), FsyncPolicy::Always, 1 << 20).unwrap();
        w.append(0, &batch(3, 0)).unwrap();
        w.append(3, &batch(2, 10)).unwrap();
        drop(w);

        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();
        let first_record_len = 8 + 12 + 3 * EdgeUpdate::ENCODED_LEN;

        // A cut exactly at the record boundary is a clean end, not a tear.
        fs::write(&path, &full[..first_record_len]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.clean);
        assert_eq!(scan.records.len(), 1);

        // Cut the file at every length inside the second record: the scan
        // must return exactly the first record and flag the dirty tail.
        for cut in first_record_len + 1..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_segment(&path).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert!(!scan.clean, "cut at {cut}");
            assert_eq!(scan.valid_len, first_record_len as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_scan_cleanly() {
        let dir = temp_dir("crc");
        let mut w = WalWriter::open(&dir, 0, Vec::new(), FsyncPolicy::Always, 1 << 20).unwrap();
        w.append(0, &batch(2, 0)).unwrap();
        w.append(2, &batch(2, 10)).unwrap();
        drop(w);

        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();
        let first_record_len = 8 + 12 + 2 * EdgeUpdate::ENCODED_LEN;

        // Flip one payload byte in the second record.
        let mut bad = full.clone();
        bad[first_record_len + 8] ^= 0xFF;
        fs::write(&path, &bad).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(!scan.clean);

        // Flip a byte inside the *first* record: nothing valid remains.
        let mut bad = full;
        bad[10] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.clean);
        assert_eq!(scan.valid_len, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_starts_a_fresh_segment() {
        let dir = temp_dir("reopen");
        let mut w = WalWriter::open(&dir, 0, Vec::new(), FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(0, &batch(2, 0)).unwrap();
        drop(w);

        let existing: Vec<(u64, u64)> = vec![(0, 0)];
        let mut w2 = WalWriter::open(&dir, 2, existing, FsyncPolicy::Never, 1 << 20).unwrap();
        w2.append(2, &batch(1, 50)).unwrap();
        drop(w2);

        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 2);
        let records = scan_all(&dir);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].first_seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
