//! Crash recovery for shard workers: snapshot files plus WAL replay.
//!
//! Each shard persists two artifacts into its directory:
//!
//! * **snapshots** (`snap-<seq>.snap`) — the engine's full
//!   [`MaintenanceEngine::snapshot`] image at sequence number `seq`, wrapped
//!   in a CRC-framed file header, written atomically (temp file + rename)
//!   every [`PersistenceConfig::snapshot_every_batches`] micro-batches;
//! * **WAL segments** (see [`crate::wal`]) — every routed micro-batch,
//!   appended *before* it is applied.
//!
//! Recovery is `latest valid snapshot + WAL tail`: restore the engine from
//! the newest snapshot that parses (falling back to older retained ones),
//! then replay every WAL record past the snapshot's sequence number with the
//! engine's `recovering` flag set, so the replayed work rebuilds the exact
//! maintenance state without double-counting into [`EngineStats`](dyndens_core::EngineStats). Because
//! the engine's update processing is canonicalised (see
//! `dyndens_core::snapshot`), the recovered state is **bit-identical** to an
//! engine that never crashed.
//!
//! A torn tail on the final WAL segment (the classic mid-append crash) is
//! repaired by truncation; corruption anywhere earlier in the log means data
//! is genuinely missing and surfaces as a hard [`RecoveryError`] rather than
//! a silently incomplete engine.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use dyndens_core::{EngineBlueprint, MaintenanceEngine, SnapshotError};

use crate::config::{PersistenceConfig, ShardConfig};
use crate::wal::{self, WalWriter};
use dyndens_graph::codec::{crc32, put_u32, put_u64, ByteReader};
use dyndens_graph::ShardMap;

const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".snap";
/// Magic bytes of the snapshot *file* wrapper (the engine image inside
/// carries its own `DDSN` magic).
const SNAP_FILE_MAGIC: &[u8; 4] = b"DDSF";
const SNAP_FILE_VERSION: u32 = 1;

/// Name of the deployment manifest at the persistence root.
const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 4] = b"DDMF";
/// Version 3: the static section now *pins the maintenance backend* — the
/// [`EngineBlueprint::kind`] string followed by the measure name and a
/// length-prefixed opaque parameter fingerprint ([`EngineBlueprint::params`])
/// — ahead of the **generational shard map** ([`ShardMap`]) carried since
/// version 2. A directory written by one backend can therefore never be
/// reopened under another: the kind comparison fails first, before any
/// snapshot or WAL byte is interpreted.
const MANIFEST_VERSION: u32 = 3;

/// An error recovering a shard from its persistence directory.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem failure.
    Io(io::Error),
    /// Every snapshot file failed to parse *and* the WAL does not reach back
    /// to sequence zero, or a snapshot was structurally unusable in a
    /// context with no fallback.
    Snapshot(SnapshotError),
    /// A WAL segment other than the final one has a truncated or corrupt
    /// tail: records are genuinely missing from the middle of the log.
    CorruptWal {
        /// The damaged segment's number.
        segment: u64,
    },
    /// Replay found a record starting past the engine's sequence number:
    /// updates between `expected` and `found` are missing.
    SequenceGap {
        /// The next sequence number the engine needed.
        expected: u64,
        /// The sequence number the record started at instead.
        found: u64,
    },
    /// The persistence directory was written by a deployment with different
    /// state-affecting parameters (engine kind, shard count, shard function,
    /// density measure or engine configuration). Reusing it would silently
    /// drop shard slices, misroute updates, or feed one backend's checkpoint
    /// bytes to another, so the mismatch is a hard error.
    ManifestMismatch {
        /// The parameter that disagrees with the on-disk manifest.
        field: &'static str,
    },
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery I/O failure: {e}"),
            RecoveryError::Snapshot(e) => write!(f, "unusable snapshot: {e}"),
            RecoveryError::CorruptWal { segment } => {
                write!(f, "WAL segment {segment} is corrupt before the log tail")
            }
            RecoveryError::SequenceGap { expected, found } => write!(
                f,
                "WAL sequence gap: needed update {expected}, next record starts at {found}"
            ),
            RecoveryError::ManifestMismatch { field } => write!(
                f,
                "persistence directory belongs to a deployment with a different `{field}`; \
                 reusing it would corrupt the recovered state"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SNAP_PREFIX}{seq:020}{SNAP_SUFFIX}"))
}

/// The persistence directory of engine `engine_id` under the deployment
/// root. Engine ids are allocated by the [`ShardMap`] and never reused, so a
/// retired parent's directory can never be mistaken for a live child's.
pub(crate) fn shard_dir(root: &Path, engine_id: u64) -> PathBuf {
    root.join(format!("shard-{engine_id:04}"))
}

/// Lists the snapshot files in `dir` as `(seq, path)`, ascending by `seq`.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = match name.to_str() {
            Some(n) => n,
            None => continue,
        };
        if let Some(stem) = name
            .strip_prefix(SNAP_PREFIX)
            .and_then(|s| s.strip_suffix(SNAP_SUFFIX))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Writes the engine image `engine_bytes` as the shard's snapshot at
/// sequence number `seq`, atomically (temp file + rename), then deletes all
/// but the newest `retain` snapshots. Returns the sequence number of the
/// **oldest** retained snapshot — the point up to which the WAL may safely
/// be pruned.
pub fn write_snapshot(dir: &Path, seq: u64, engine_bytes: &[u8], retain: usize) -> io::Result<u64> {
    let mut buf = Vec::with_capacity(24 + engine_bytes.len() + 4);
    buf.extend_from_slice(SNAP_FILE_MAGIC);
    put_u32(&mut buf, SNAP_FILE_VERSION);
    put_u64(&mut buf, seq);
    put_u64(&mut buf, engine_bytes.len() as u64);
    buf.extend_from_slice(engine_bytes);
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);

    let tmp = dir.join(format!("{SNAP_PREFIX}{seq:020}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, snapshot_path(dir, seq))?;
    // Make the rename itself durable: the file's contents were synced
    // above, but the directory entry needs its own fsync to survive an OS
    // crash. One extra sync per checkpoint is negligible.
    wal::sync_dir(dir)?;

    let mut snapshots = list_snapshots(dir)?;
    while snapshots.len() > retain.max(1) {
        let (_, path) = snapshots.remove(0);
        fs::remove_file(path)?;
    }
    Ok(snapshots.first().map_or(seq, |&(s, _)| s))
}

/// Reads and validates one snapshot file, returning `(seq, engine_bytes)`.
pub fn read_snapshot(path: &Path) -> Result<(u64, Vec<u8>), RecoveryError> {
    let bytes = fs::read(path)?;
    let structural =
        |e: dyndens_graph::CodecError| RecoveryError::Snapshot(SnapshotError::Codec(e));
    let payload = dyndens_graph::codec::verify_crc_trailer(&bytes).map_err(structural)?;
    let mut r = ByteReader::new(payload);
    if r.take(4).map_err(structural)? != SNAP_FILE_MAGIC {
        return Err(RecoveryError::Snapshot(SnapshotError::BadMagic));
    }
    let version = r.u32().map_err(structural)?;
    if version != SNAP_FILE_VERSION {
        return Err(RecoveryError::Snapshot(SnapshotError::UnsupportedVersion(
            version,
        )));
    }
    let seq = r.u64().map_err(structural)?;
    let len = r.u64().map_err(structural)? as usize;
    let engine_bytes = r.take(len).map_err(structural)?;
    if !r.is_empty() {
        return Err(RecoveryError::Snapshot(SnapshotError::Invalid(
            "trailing bytes in snapshot file",
        )));
    }
    Ok((seq, engine_bytes.to_vec()))
}

// ---------------------------------------------------------------------------
// Deployment manifest
// ---------------------------------------------------------------------------

/// Serialises the static state-affecting deployment parameters — the
/// maintenance backend's kind (it decides what every checkpoint byte means),
/// the density measure (it decides what every persisted score means) and the
/// backend's opaque parameter fingerprint (it decides what "dense" means) —
/// without framing. Queueing tunables (`channel_capacity`, `max_batch`,
/// `top_k`) and persistence knobs are deliberately excluded: they may vary
/// freely across restarts. The routing topology (base shard count, shard
/// function, split refinements) lives in the [`ShardMap`] section that
/// follows this block in the manifest.
fn encode_static_section(kind: &str, measure_name: &str, params: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u32(&mut buf, kind.len() as u32);
    buf.extend_from_slice(kind.as_bytes());
    put_u32(&mut buf, measure_name.len() as u32);
    buf.extend_from_slice(measure_name.as_bytes());
    put_u32(&mut buf, params.len() as u32);
    buf.extend_from_slice(params);
    buf
}

/// Serialises the full manifest: magic, version, static section, shard map,
/// CRC trailer.
fn encode_manifest(kind: &str, measure_name: &str, params: &[u8], map: &ShardMap) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    buf.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut buf, MANIFEST_VERSION);
    buf.extend_from_slice(&encode_static_section(kind, measure_name, params));
    map.encode_into(&mut buf);
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Atomically writes `bytes` as the manifest (temp file + rename + directory
/// fsync).
fn write_manifest_atomic(root: &Path, bytes: &[u8]) -> io::Result<()> {
    let path = root.join(MANIFEST_NAME);
    let tmp = root.join(format!("{MANIFEST_NAME}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    wal::sync_dir(root)?;
    Ok(())
}

/// Rewrites the manifest with a refined shard map. Called by a shard split
/// **after** the children's snapshots and WALs are durably on disk and
/// **before** the parent directory is retired: a crash on either side of the
/// rewrite leaves the directory consistent with whichever topology the
/// manifest names (the parent's state is complete until the rewrite, the
/// children's from the moment it lands).
pub(crate) fn rewrite_manifest(
    root: &Path,
    kind: &str,
    measure_name: &str,
    params: &[u8],
    map: &ShardMap,
) -> io::Result<()> {
    write_manifest_atomic(root, &encode_manifest(kind, measure_name, params, map))
}

/// On first use, binds the persistence root to the deployment parameters by
/// writing a manifest carrying the generation-zero shard map; on reuse,
/// verifies the caller's parameters against the manifest's static section
/// and returns the **persisted** shard map — which may be generations ahead
/// of the caller's `ShardConfig` if the deployment was split while it ran.
///
/// A mismatch on any state-affecting parameter is a hard
/// [`RecoveryError::ManifestMismatch`] — restarting with, say, a different
/// base shard count would otherwise silently lose shard slices and route
/// their vertices into unrelated engines, and reopening under a different
/// *backend* would feed one engine's checkpoint bytes to another. An
/// unreadable or corrupt manifest is reported likewise (the directory's
/// provenance is unknown).
pub(crate) fn bind_manifest(
    root: &Path,
    kind: &str,
    measure_name: &str,
    params: &[u8],
    shard_config: &ShardConfig,
) -> Result<ShardMap, RecoveryError> {
    let path = root.join(MANIFEST_NAME);
    match fs::read(&path) {
        Ok(existing) => {
            let mismatch = |field| Err(RecoveryError::ManifestMismatch { field });
            let Ok(m) = decode_manifest(&existing) else {
                return mismatch("manifest (unreadable/corrupt)");
            };
            if m.kind != kind {
                return mismatch("engine kind");
            }
            if m.map.n_base() != shard_config.n_shards {
                return mismatch("n_shards");
            }
            if m.map.base_fn() != shard_config.shard_fn {
                return mismatch("shard_fn");
            }
            if m.measure_name != measure_name {
                return mismatch("density measure");
            }
            if m.params != params {
                return mismatch("engine config");
            }
            Ok(m.map)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let map = ShardMap::new(shard_config.shard_fn, shard_config.n_shards);
            write_manifest_atomic(root, &encode_manifest(kind, measure_name, params, &map))?;
            Ok(map)
        }
        Err(e) => Err(e.into()),
    }
}

struct ManifestView {
    kind: String,
    measure_name: String,
    /// The backend's raw parameter fingerprint, compared wholesale against
    /// the caller's encoding (field-exact, including every config flag).
    params: Vec<u8>,
    map: ShardMap,
}

fn decode_manifest(bytes: &[u8]) -> Result<ManifestView, ()> {
    let payload = dyndens_graph::codec::verify_crc_trailer(bytes).map_err(|_| ())?;
    let mut r = ByteReader::new(payload);
    if r.take(4).map_err(|_| ())? != MANIFEST_MAGIC || r.u32().map_err(|_| ())? != MANIFEST_VERSION
    {
        return Err(());
    }
    let string = |r: &mut ByteReader<'_>| -> Result<String, ()> {
        let len = r.u32().map_err(|_| ())? as usize;
        String::from_utf8(r.take(len).map_err(|_| ())?.to_vec()).map_err(|_| ())
    };
    let kind = string(&mut r)?;
    let measure_name = string(&mut r)?;
    let params_len = r.u32().map_err(|_| ())? as usize;
    let params = r.take(params_len).map_err(|_| ())?.to_vec();
    let map = ShardMap::decode(&mut r).map_err(|_| ())?;
    if !r.is_empty() {
        return Err(());
    }
    Ok(ManifestView {
        kind,
        measure_name,
        params,
        map,
    })
}

// ---------------------------------------------------------------------------
// Shard recovery
// ---------------------------------------------------------------------------

/// What recovery did for one shard; exposed through
/// [`ShardedDynDens::recovery_reports`](crate::ShardedDynDens::recovery_reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The shard index.
    pub shard: usize,
    /// Sequence number of the snapshot the engine was restored from (0 when
    /// starting fresh).
    pub snapshot_seq: u64,
    /// Number of WAL updates replayed past the snapshot.
    pub replayed_updates: u64,
    /// The shard's sequence number after recovery.
    pub recovered_seq: u64,
    /// `true` if a torn tail was truncated off the final WAL segment.
    pub repaired_torn_tail: bool,
}

/// A recovered shard: the rebuilt engine, its sequence number, and the WAL
/// writer positioned to continue appending.
pub(crate) struct RecoveredShard<E: MaintenanceEngine> {
    pub engine: E,
    pub seq: u64,
    pub wal: WalWriter,
    pub report: RecoveryReport,
}

/// Recovers one shard from `dir`: newest valid snapshot + WAL tail replay.
/// The blueprint decides what engine the checkpoint bytes restore into —
/// [`bind_manifest`] has already pinned the directory to its kind.
pub(crate) fn recover_shard<B: EngineBlueprint>(
    blueprint: &B,
    shard: usize,
    dir: &Path,
    persistence: &PersistenceConfig,
) -> Result<RecoveredShard<B::Engine>, RecoveryError> {
    fs::create_dir_all(dir)?;

    // 1. Restore from the newest snapshot that parses; a damaged newest
    //    snapshot falls back to an older retained one (the WAL is only ever
    //    pruned up to the oldest retained snapshot, so replay still works).
    let mut engine: Option<B::Engine> = None;
    let mut snapshot_seq = 0u64;
    let mut last_snapshot_error: Option<RecoveryError> = None;
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        match read_snapshot(&path).and_then(|(s, bytes)| match blueprint.restore(&bytes) {
            Ok(e) => Ok((s, e)),
            Err(e) => Err(RecoveryError::Snapshot(e)),
        }) {
            Ok((s, e)) => {
                engine = Some(e);
                snapshot_seq = s;
                break;
            }
            Err(e) => last_snapshot_error = Some(e),
        }
    }
    let mut engine = match engine {
        Some(e) => e,
        None => blueprint.fresh(),
    };
    let mut seq = snapshot_seq;

    // 2. Replay the WAL tail. Records wholly covered by the snapshot are
    //    skipped; partially covered records are applied from their overlap
    //    point; a gap means records are missing (for example because every
    //    snapshot was unusable but the early WAL was already pruned) and is
    //    a hard error.
    let segments = wal::list_segments(dir)?;
    let mut segment_meta: Vec<(u64, u64)> = Vec::new();
    let mut replayed = 0u64;
    let mut repaired_torn_tail = false;
    engine.set_recovering(true);
    let mut events = Vec::new();
    for (i, (no, path)) in segments.iter().enumerate() {
        let scan = wal::scan_segment(path)?;
        if !scan.clean {
            if i + 1 != segments.len() {
                engine.set_recovering(false);
                return Err(RecoveryError::CorruptWal { segment: *no });
            }
            // Torn tail of the final segment: the batch was never
            // acknowledged as applied, so truncating it away is safe.
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(scan.valid_len)?;
            f.sync_data()?;
            repaired_torn_tail = true;
        }
        segment_meta.push((*no, scan.records.first().map_or(seq, |r| r.first_seq)));
        for record in scan.records {
            if record.first_seq > seq {
                engine.set_recovering(false);
                if let Some(e) = last_snapshot_error.take() {
                    // The gap exists because we fell back past a damaged
                    // snapshot; surface the root cause.
                    return Err(e);
                }
                return Err(RecoveryError::SequenceGap {
                    expected: seq,
                    found: record.first_seq,
                });
            }
            let skip = (seq - record.first_seq) as usize;
            if skip >= record.updates.len() {
                continue;
            }
            for u in &record.updates[skip..] {
                engine.apply_update_into(*u, &mut events);
                events.clear();
                seq += 1;
                replayed += 1;
            }
        }
    }
    engine.set_recovering(false);

    // 3. Continue the log in a fresh segment (old segments stay immutable).
    let wal = WalWriter::open(
        dir,
        seq,
        segment_meta,
        persistence.fsync,
        persistence.segment_max_bytes,
    )?;

    Ok(RecoveredShard {
        engine,
        seq,
        wal,
        report: RecoveryReport {
            shard,
            snapshot_seq,
            replayed_updates: replayed,
            recovered_seq: seq,
            repaired_torn_tail,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsyncPolicy;
    use dyndens_core::{DynDens, DynDensBlueprint, DynDensConfig};
    use dyndens_density::AvgWeight;
    use dyndens_graph::{EdgeUpdate, VertexId};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dyndens-rec-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> DynDensConfig {
        DynDensConfig::new(1.0, 4).with_delta_it(0.15)
    }

    fn blueprint() -> DynDensBlueprint<AvgWeight> {
        DynDensBlueprint::new(AvgWeight, config())
    }

    fn persistence(dir: &Path) -> PersistenceConfig {
        PersistenceConfig::new(dir).with_fsync(FsyncPolicy::Never)
    }

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    /// The engine's snapshot with the stats section zeroed: recovery replays
    /// with stat accumulation suppressed (by design — replayed updates were
    /// already counted before the crash), so equivalence to an uninterrupted
    /// engine is over the maintenance state, not the work ledger.
    fn state_image(engine: &DynDens<AvgWeight>) -> Vec<u8> {
        let mut clone = engine.clone();
        clone.reset_stats();
        clone.snapshot()
    }

    fn stream(n: usize) -> Vec<EdgeUpdate> {
        (0..n)
            .map(|i| {
                let a = (i % 7) as u32;
                let b = a + 1 + (i % 3) as u32;
                let delta = if i % 5 == 4 { -0.2 } else { 0.4 };
                update(a, b, delta)
            })
            .collect()
    }

    #[test]
    fn fresh_directory_recovers_to_empty_engine() {
        let dir = temp_dir("fresh");
        let rec = recover_shard(&blueprint(), 0, &dir, &persistence(&dir)).unwrap();
        assert_eq!(rec.seq, 0);
        assert_eq!(rec.report.replayed_updates, 0);
        assert_eq!(rec.engine.dense_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_replay_matches_uninterrupted() {
        let dir = temp_dir("tail");
        let updates = stream(200);
        let p = persistence(&dir);

        // Reference: never crashed.
        let mut reference = DynDens::new(AvgWeight, config());
        for u in &updates {
            reference.apply_update(*u);
        }

        // Crashy run: WAL everything, snapshot at update 120, "crash" at 200
        // (no final snapshot).
        let mut engine = DynDens::new(AvgWeight, config());
        let mut wal = WalWriter::open(&dir, 0, Vec::new(), p.fsync, p.segment_max_bytes).unwrap();
        for (i, chunk) in updates.chunks(10).enumerate() {
            wal.append((i * 10) as u64, chunk).unwrap();
            for u in chunk {
                engine.apply_update(*u);
            }
            if (i + 1) * 10 == 120 {
                let oldest =
                    write_snapshot(&dir, 120, &engine.snapshot(), p.retained_snapshots).unwrap();
                wal.rotate(120).unwrap();
                wal.prune_to(oldest).unwrap();
            }
        }
        drop(wal);
        drop(engine);

        let rec = recover_shard(&blueprint(), 3, &dir, &p).unwrap();
        assert_eq!(rec.report.shard, 3);
        assert_eq!(rec.report.snapshot_seq, 120);
        assert_eq!(rec.report.replayed_updates, 80);
        assert_eq!(rec.seq, 200);
        assert!(!rec.report.repaired_torn_tail);

        // Bit-identical maintenance state vs. the uninterrupted engine.
        assert_eq!(state_image(&rec.engine), state_image(&reference));
        // The work ledger stops at the snapshot: the 80 replayed updates are
        // not double-counted.
        assert_eq!(rec.engine.stats().updates, 120);
        assert_eq!(reference.stats().updates, 200);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_stops_cleanly() {
        let dir = temp_dir("torn");
        let p = persistence(&dir);
        let updates = stream(30);
        let mut wal = WalWriter::open(&dir, 0, Vec::new(), p.fsync, p.segment_max_bytes).unwrap();
        wal.append(0, &updates[..20]).unwrap();
        wal.append(20, &updates[20..]).unwrap();
        drop(wal);

        // Tear the last record.
        let (_, path) = wal::list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let rec = recover_shard(&blueprint(), 0, &dir, &p).unwrap();
        assert_eq!(rec.seq, 20, "only the intact record replays");
        assert!(rec.report.repaired_torn_tail);

        // The tear is gone from disk: a second recovery sees a clean log.
        let rec2 = recover_shard(&blueprint(), 0, &dir, &p).unwrap();
        assert_eq!(rec2.seq, 20);
        assert!(!rec2.report.repaired_torn_tail);
        assert_eq!(rec2.engine.snapshot(), rec.engine.snapshot());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_before_the_tail_is_a_hard_error() {
        let dir = temp_dir("midcorrupt");
        let p = persistence(&dir);
        let updates = stream(30);
        let mut wal = WalWriter::open(&dir, 0, Vec::new(), p.fsync, p.segment_max_bytes).unwrap();
        wal.append(0, &updates[..15]).unwrap();
        wal.rotate(15).unwrap();
        wal.append(15, &updates[15..]).unwrap();
        drop(wal);

        // Corrupt the FIRST segment: replay must refuse rather than skip.
        let (no, path) = wal::list_segments(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        match recover_shard(&blueprint(), 0, &dir, &p) {
            Err(RecoveryError::CorruptWal { segment }) => assert_eq!(segment, no),
            Err(other) => panic!("expected CorruptWal, got {other:?}"),
            Ok(_) => panic!("expected CorruptWal, recovery succeeded"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_snapshot_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let p = persistence(&dir);
        let updates = stream(100);

        let mut engine = DynDens::new(AvgWeight, config());
        let mut wal = WalWriter::open(&dir, 0, Vec::new(), p.fsync, p.segment_max_bytes).unwrap();
        for (i, chunk) in updates.chunks(10).enumerate() {
            wal.append((i * 10) as u64, chunk).unwrap();
            for u in chunk {
                engine.apply_update(*u);
            }
            if matches!((i + 1) * 10, 50 | 90) {
                let seq = ((i + 1) * 10) as u64;
                let oldest =
                    write_snapshot(&dir, seq, &engine.snapshot(), p.retained_snapshots).unwrap();
                wal.rotate(seq).unwrap();
                wal.prune_to(oldest).unwrap();
            }
        }
        drop(wal);

        // Vandalise the newest snapshot (seq 90).
        let snaps = list_snapshots(&dir).unwrap();
        let (seq, newest) = snaps.last().unwrap();
        assert_eq!(*seq, 90);
        let mut bytes = fs::read(newest).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0xFF;
        fs::write(newest, &bytes).unwrap();

        let rec = recover_shard(&blueprint(), 0, &dir, &p).unwrap();
        assert_eq!(rec.report.snapshot_seq, 50, "fell back to seq-50 snapshot");
        assert_eq!(rec.seq, 100);
        assert_eq!(rec.report.replayed_updates, 50);
        assert_eq!(state_image(&rec.engine), state_image(&engine));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_retention_reports_prune_point() {
        let dir = temp_dir("retain");
        let engine = DynDens::new(AvgWeight, config());
        let image = engine.snapshot();
        assert_eq!(write_snapshot(&dir, 10, &image, 2).unwrap(), 10);
        assert_eq!(write_snapshot(&dir, 20, &image, 2).unwrap(), 10);
        assert_eq!(write_snapshot(&dir, 30, &image, 2).unwrap(), 20);
        let seqs: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(seqs, vec![20, 30]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
