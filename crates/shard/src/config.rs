//! Configuration of the sharded subsystem.

use dyndens_graph::VertexId;

/// The shard-assignment function applied to the minimum endpoint of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFn {
    /// Fx-hash the vertex and spread it over the shards with a multiply-shift
    /// ([`dyndens_graph::shard_of`]). The default: balanced for arbitrary id
    /// distributions.
    Hashed,
    /// `v mod n_shards`. Useful when entity ids are assigned so that related
    /// entities share a congruence class (making the partitioning invariant
    /// hold by construction), and in tests that need a predictable layout.
    Modulo,
}

impl ShardFn {
    /// The shard owning vertex `v` out of `n_shards`.
    #[inline]
    pub fn shard(self, v: VertexId, n_shards: usize) -> usize {
        match self {
            ShardFn::Hashed => dyndens_graph::shard_of(v, n_shards),
            ShardFn::Modulo => v.index() % n_shards,
        }
    }
}

/// Configuration of a [`ShardedDynDens`](crate::ShardedDynDens) deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shard workers (>= 1).
    pub n_shards: usize,
    /// Bound of each worker's MPSC inbox, in messages. Producers block once a
    /// shard falls this far behind (backpressure).
    pub channel_capacity: usize,
    /// Maximum number of queued messages a worker drains per wakeup; updates
    /// in one drain are applied under a single engine lock and produce one
    /// snapshot publication.
    pub max_batch: usize,
    /// Number of top stories each shard publishes and the merged view serves.
    pub top_k: usize,
    /// The shard-assignment function.
    pub shard_fn: ShardFn,
}

impl ShardConfig {
    /// A configuration with the given shard count and the defaults:
    /// capacity 1024, micro-batches of up to 64, top-16 stories, hashed
    /// sharding.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> Self {
        assert!(
            n_shards > 0,
            "a sharded deployment needs at least one shard"
        );
        ShardConfig {
            n_shards,
            channel_capacity: 1024,
            max_batch: 64,
            top_k: 16,
            shard_fn: ShardFn::Hashed,
        }
    }

    /// Sets the per-shard channel capacity (clamped to at least 1).
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Sets the micro-batch drain bound (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the number of stories kept per snapshot.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Sets the shard-assignment function.
    pub fn with_shard_fn(mut self, shard_fn: ShardFn) -> Self {
        self.shard_fn = shard_fn;
        self
    }
}

impl Default for ShardConfig {
    /// One shard per available CPU core (capped at 8), with the standard
    /// queueing parameters.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardConfig::new(cores.min(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_round_trip() {
        let c = ShardConfig::new(4)
            .with_channel_capacity(16)
            .with_max_batch(8)
            .with_top_k(5)
            .with_shard_fn(ShardFn::Modulo);
        assert_eq!(c.n_shards, 4);
        assert_eq!(c.channel_capacity, 16);
        assert_eq!(c.max_batch, 8);
        assert_eq!(c.top_k, 5);
        assert_eq!(c.shard_fn, ShardFn::Modulo);
    }

    #[test]
    fn clamps_degenerate_values() {
        let c = ShardConfig::new(1)
            .with_channel_capacity(0)
            .with_max_batch(0);
        assert_eq!(c.channel_capacity, 1);
        assert_eq!(c.max_batch, 1);
        assert!(ShardConfig::default().n_shards >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardConfig::new(0);
    }

    #[test]
    fn shard_fns_stay_in_range_and_agree_on_determinism() {
        for n in [1usize, 2, 3, 8] {
            for v in 0..100u32 {
                let h = ShardFn::Hashed.shard(VertexId(v), n);
                let m = ShardFn::Modulo.shard(VertexId(v), n);
                assert!(h < n && m < n);
                assert_eq!(m, v as usize % n);
                assert_eq!(h, ShardFn::Hashed.shard(VertexId(v), n));
            }
        }
    }
}
