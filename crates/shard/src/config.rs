//! Configuration of the sharded subsystem.

use std::path::PathBuf;
use std::sync::Arc;

use dyndens_obs::{ObsHandle, Registry};

/// The base shard-assignment function, re-exported from
/// [`dyndens_graph::shard_map`] where it now lives alongside the
/// generational [`ShardMap`](dyndens_graph::ShardMap) routing table that
/// refines it during live rebalancing (see [`crate::rebalance`]).
pub use dyndens_graph::ShardFn;

/// Configuration of a [`ShardedDynDens`](crate::ShardedDynDens) deployment.
///
/// Equality ignores the [`ShardConfig::obs`] handle: two configs that differ
/// only in where their telemetry goes describe the same deployment shape.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of **base** shard workers (>= 1). This is generation zero of
    /// the deployment's routing table; live rebalancing
    /// ([`ShardedDynDens::split_shard`](crate::ShardedDynDens::split_shard))
    /// can grow the worker count beyond it without changing this value.
    pub n_shards: usize,
    /// Bound of each worker's MPSC inbox, in messages. Producers block once a
    /// shard falls this far behind (backpressure).
    pub channel_capacity: usize,
    /// Maximum number of queued messages a worker drains per wakeup; updates
    /// in one drain are applied under a single engine lock and produce one
    /// snapshot publication.
    pub max_batch: usize,
    /// Number of top stories each shard publishes and the merged view serves.
    pub top_k: usize,
    /// Number of published micro-batches of [`DenseEvent`] deltas each shard
    /// retains in its [`DeltaRing`], bounding how far a polling reader may
    /// fall behind before it must resynchronise from a full snapshot.
    ///
    /// [`DenseEvent`]: dyndens_core::DenseEvent
    /// [`DeltaRing`]: crate::view::DeltaRing
    pub delta_retention: usize,
    /// The shard-assignment function.
    pub shard_fn: ShardFn,
    /// Observability sink. Disabled by default; attach a shared
    /// [`Registry`] with [`ShardConfig::with_obs`] to have workers, WAL,
    /// recovery and rebalancing record metrics and journal events into it.
    pub obs: ObsHandle,
}

impl PartialEq for ShardConfig {
    fn eq(&self, other: &Self) -> bool {
        self.n_shards == other.n_shards
            && self.channel_capacity == other.channel_capacity
            && self.max_batch == other.max_batch
            && self.top_k == other.top_k
            && self.delta_retention == other.delta_retention
            && self.shard_fn == other.shard_fn
    }
}

impl Eq for ShardConfig {}

impl ShardConfig {
    /// A configuration with the given shard count and the defaults:
    /// capacity 1024, micro-batches of up to 64, top-16 stories, 256 retained
    /// delta batches, hashed sharding.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> Self {
        assert!(
            n_shards > 0,
            "a sharded deployment needs at least one shard"
        );
        ShardConfig {
            n_shards,
            channel_capacity: 1024,
            max_batch: 64,
            top_k: 16,
            delta_retention: 256,
            shard_fn: ShardFn::Hashed,
            obs: ObsHandle::none(),
        }
    }

    /// Sets the per-shard channel capacity (clamped to at least 1).
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Sets the micro-batch drain bound (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the number of stories kept per snapshot.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Sets the per-shard delta retention bound, in micro-batches (clamped to
    /// at least 1).
    pub fn with_delta_retention(mut self, batches: usize) -> Self {
        self.delta_retention = batches.max(1);
        self
    }

    /// Sets the shard-assignment function.
    pub fn with_shard_fn(mut self, shard_fn: ShardFn) -> Self {
        self.shard_fn = shard_fn;
        self
    }

    /// Attaches a shared metrics registry; every layer of the deployment
    /// (workers, WAL, recovery, rebalancing) then records into it.
    pub fn with_obs(mut self, registry: Arc<Registry>) -> Self {
        self.obs = ObsHandle::new(registry);
        self
    }
}

impl Default for ShardConfig {
    /// One shard per available CPU core (capped at 8), with the standard
    /// queueing parameters.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardConfig::new(cores.min(8))
    }
}

/// When WAL appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: a committed micro-batch survives even
    /// an OS/power crash, at the cost of one sync per batch on the ingest
    /// path.
    Always,
    /// Leave flushing to the OS page cache: records survive a process crash
    /// (the common failure mode for a shard worker) but the tail written in
    /// the seconds before an OS crash may be lost. The default — recovery
    /// handles a torn tail either way.
    Never,
}

/// Configuration of the per-shard persistence layer (WAL + snapshots), used
/// by [`ShardedDynDens::with_persistence`](crate::ShardedDynDens::with_persistence).
///
/// Layout on disk: `dir/shard-NNNN/` holds each shard's WAL segments
/// (`wal-XXXXXXXX.log`) and engine snapshots (`snap-<seq>.snap`). Recovery
/// loads the newest valid snapshot and replays the WAL tail past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Root directory of the deployment's persistent state.
    pub dir: PathBuf,
    /// A snapshot is written (and the WAL pruned) every this many
    /// micro-batches per shard. Smaller values bound recovery time tighter;
    /// larger values cost less on the ingest path.
    pub snapshot_every_batches: usize,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Size bound after which a WAL segment is rotated.
    pub segment_max_bytes: u64,
    /// How many snapshots to retain per shard (at least 1). Keeping more
    /// than one lets recovery fall back to an older snapshot if the newest
    /// one is damaged; the WAL is only pruned up to the *oldest* retained
    /// snapshot so the fallback can still replay forward.
    pub retained_snapshots: usize,
}

impl PersistenceConfig {
    /// A configuration rooted at `dir` with the defaults: snapshot every 64
    /// micro-batches, no per-record fsync, 8 MiB segments, 2 retained
    /// snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            snapshot_every_batches: 64,
            fsync: FsyncPolicy::Never,
            segment_max_bytes: 8 << 20,
            retained_snapshots: 2,
        }
    }

    /// Sets the snapshot cadence in micro-batches (clamped to at least 1).
    pub fn with_snapshot_every_batches(mut self, batches: usize) -> Self {
        self.snapshot_every_batches = batches.max(1);
        self
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the WAL segment rotation bound (clamped to at least 4 KiB).
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max(4 << 10);
        self
    }

    /// Sets the number of retained snapshots (clamped to at least 1).
    pub fn with_retained_snapshots(mut self, n: usize) -> Self {
        self.retained_snapshots = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::VertexId;

    #[test]
    fn builders_round_trip() {
        let c = ShardConfig::new(4)
            .with_channel_capacity(16)
            .with_max_batch(8)
            .with_top_k(5)
            .with_shard_fn(ShardFn::Modulo);
        assert_eq!(c.n_shards, 4);
        assert_eq!(c.channel_capacity, 16);
        assert_eq!(c.max_batch, 8);
        assert_eq!(c.top_k, 5);
        assert_eq!(c.shard_fn, ShardFn::Modulo);
    }

    #[test]
    fn clamps_degenerate_values() {
        let c = ShardConfig::new(1)
            .with_channel_capacity(0)
            .with_max_batch(0);
        assert_eq!(c.channel_capacity, 1);
        assert_eq!(c.max_batch, 1);
        assert!(ShardConfig::default().n_shards >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardConfig::new(0);
    }

    #[test]
    fn persistence_builders_and_clamps() {
        let p = PersistenceConfig::new("/tmp/x")
            .with_snapshot_every_batches(0)
            .with_fsync(FsyncPolicy::Always)
            .with_segment_max_bytes(1)
            .with_retained_snapshots(0);
        assert_eq!(p.snapshot_every_batches, 1);
        assert_eq!(p.fsync, FsyncPolicy::Always);
        assert_eq!(p.segment_max_bytes, 4 << 10);
        assert_eq!(p.retained_snapshots, 1);
        let d = PersistenceConfig::new("/tmp/y");
        assert_eq!(d.snapshot_every_batches, 64);
        assert_eq!(d.fsync, FsyncPolicy::Never);
    }

    #[test]
    fn shard_fns_stay_in_range_and_agree_on_determinism() {
        for n in [1usize, 2, 3, 8] {
            for v in 0..100u32 {
                let h = ShardFn::Hashed.shard(VertexId(v), n);
                let m = ShardFn::Modulo.shard(VertexId(v), n);
                assert!(h < n && m < n);
                assert_eq!(m, v as usize % n);
                assert_eq!(h, ShardFn::Hashed.shard(VertexId(v), n));
            }
        }
    }
}
