//! Live shard rebalancing: splitting a hot shard by snapshot + WAL-slice
//! replay — and merging cold siblings back together — while the rest of the
//! fleet keeps ingesting. Split and merge are one generational-map
//! mechanism: both refine the routing trie, quiesce only the affected
//! slots, rebuild from durable state, and commit via the same atomic
//! `MANIFEST` rewrite.
//!
//! A fixed shard count means one hot entity partition caps whole-pipeline
//! throughput forever. This module removes the cap with an **online split**:
//!
//! ```text
//!  1. park     routing[slot] := Parked        (other slots: untouched)
//!  2. quiesce  flush + stop the slot's worker → its WAL is complete to S
//!  3. rebuild  newest snapshot ──partition──► child₀ │ child₁
//!              WAL slice [S₀..S) ──filter through the refined map──► replay
//!  4. persist  child dirs (snapshot @ S, fresh WAL) + MANIFEST rewrite
//!  5. commit   publish grown roster; spawn children; drain parked updates
//!              through the refined map; routing[slot] := child₀, new slot
//!              := child₁
//! ```
//!
//! Only the split shard pauses (updates routed to it park in an unbounded
//! queue and are re-routed, in order, at commit); ingest on every other
//! shard never stops. Readers need no coordination either: the
//! [`StoryView`](crate::StoryView) roster grows at commit, the split slot's
//! delta ring restarts empty — pollers resynchronise from its snapshot,
//! exactly as after crash recovery — and the new slot appears at the split
//! point's sequence number.
//!
//! ## Equivalence
//!
//! The children are rebuilt by *filtered replay*: the parent's newest
//! checkpoint is partitioned by the refined routing
//! ([`MaintenanceEngine::partition_by`]), then the WAL slice past it is replayed with
//! each update routed to the child that now owns its minimum endpoint.
//! Under the partitioning invariant (no maintained subgraph spans the two
//! children — see the crate docs) each child is **bit-identical** to an
//! engine that only ever saw its own slice, so splitting mid-stream yields
//! exactly the story sets of a never-split run
//! (`tests/rebalance_equivalence.rs`). The work ledger is preserved too:
//! rebuild replay counts nothing and child 0 adopts the parent's live
//! counters.
//!
//! ## Crash safety
//!
//! The manifest rewrite is the commit point. The children's snapshots and
//! WALs are durable *before* it; the parent directory is retired *after* it.
//! A crash before the rewrite recovers the parent (orphan child directories
//! are overwritten by the next split attempt — engine ids are persisted in
//! the manifest and never reused); a crash after recovers the children.
//!
//! ## Failure containment
//!
//! If rebuilding fails (damaged snapshot, torn WAL, disk errors), the split
//! **resurrects the parent**: its on-disk state is complete up to the
//! quiesce point, so the standard recovery path rebuilds it, parked updates
//! are drained to it unchanged, and the fleet continues un-split with the
//! error reported to the caller.
//!
//! ## Merge: the split's inverse
//!
//! On decaying workloads, slices go cold: their stories decay out, their
//! traffic dries up, and a fleet split for a long-gone hot spot pays the
//! per-shard overhead forever. [`ShardedFleet::merge_shards`] coarsens two
//! **sibling** slots (leaves of one `Split` trie node — see
//! [`ShardMap::merge_candidates`]) back into one:
//!
//! ```text
//!  1. park     routing[a] := routing[b] := Parked   (one shared queue)
//!  2. quiesce  flush + stop both workers → both WALs complete
//!  3. rebuild  child₀ (recovered) ──absorb──► merged ◄── child₁ (recovered)
//!  4. persist  merged dir (snapshot @ Sₐ+S_b, fresh WAL) + MANIFEST rewrite
//!  5. commit   publish shrunk roster (last slot renumbered into the freed
//!              one, its worker *not* respawned); drain the parked backlog
//!              to the merged worker; routing serves the coarsened map
//! ```
//!
//! The merged engine is the children's union ([`MaintenanceEngine::absorb`]), so a
//! merge mid-stream yields bit-identical story sets to a fleet that never
//! split at all (`tests/rebalance_equivalence.rs`). Failure containment
//! mirrors the split: a failed rebuild resurrects **both** children from
//! their intact per-child state. [`Rebalancer::maybe_merge`] drives merges
//! from a cold-slot policy, the mirror image of the hot-slot split policy.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use dyndens_core::{EngineBlueprint, EngineStats, MaintenanceEngine};
use dyndens_graph::{MergeSpec, ShardMap, VertexId};
use dyndens_obs::{names, ObsEvent, RebalanceStage};

use crate::config::PersistenceConfig;
use crate::recovery::{self, RecoveryError};
use crate::sharded::{spawn_worker, ShardTx, ShardedFleet};
use crate::view::{DeltaRing, EpochCell, ShardRoster, ShardSnapshot};
use crate::wal::{self, WalWriter};
use crate::worker::{self, WorkerMsg, WorkerPersistence};

/// An error splitting a shard. The fleet is left routing exactly as before
/// the attempt (the parent is resurrected from its own persistent state)
/// unless resurrection itself fails — a double fault — in which case the
/// slot stays parked: updates routed to it are still accepted and accumulate
/// in memory (never applied or logged, so they are lost on restart), every
/// other shard keeps working, and the deployment should be restarted so
/// recovery rebuilds the parent from disk.
#[derive(Debug)]
pub enum RebalanceError {
    /// Filesystem failure while rebuilding or persisting the children.
    Io(io::Error),
    /// The parent's persisted state could not be read back (damaged
    /// snapshot, corrupt WAL segment, …).
    Recovery(RecoveryError),
    /// The slot does not name a live worker (or its route-trie leaf already
    /// sits at the maximum split depth).
    UnknownShard(usize),
    /// The two slots handed to a merge are not sibling leaves of the routing
    /// trie (only pairs produced by one split — see
    /// [`ShardMap::merge_candidates`] — can be merged).
    NotSiblings(usize, usize),
    /// The parent's snapshot + WAL slice did not reach the quiesce point:
    /// replay rebuilt state up to `found` but the worker had applied
    /// `expected` updates. Indicates missing WAL records.
    HistoryGap {
        /// The parent's sequence number at quiesce.
        expected: u64,
        /// The sequence number filtered replay actually reached.
        found: u64,
    },
}

impl From<io::Error> for RebalanceError {
    fn from(e: io::Error) -> Self {
        RebalanceError::Io(e)
    }
}

impl From<RecoveryError> for RebalanceError {
    fn from(e: RecoveryError) -> Self {
        RebalanceError::Recovery(e)
    }
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::Io(e) => write!(f, "rebalance I/O failure: {e}"),
            RebalanceError::Recovery(e) => write!(f, "rebalance could not read shard state: {e}"),
            RebalanceError::UnknownShard(slot) => {
                write!(f, "shard {slot} is not a splittable worker slot")
            }
            RebalanceError::NotSiblings(a, b) => {
                write!(f, "shards {a} and {b} are not sibling slots of one split")
            }
            RebalanceError::HistoryGap { expected, found } => write!(
                f,
                "split replay reached sequence {found} but the shard had applied {expected}; \
                 WAL records are missing"
            ),
        }
    }
}

impl std::error::Error for RebalanceError {}

/// The milestones of one split, reported to the observer callback of
/// [`ShardedFleet::split_shard_with`]. Operational monitoring can hang off
/// these; the equivalence tests use [`Parked`](SplitPhase::Parked) to ingest
/// concurrently and prove that untouched shards keep applying updates while
/// the split shard is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPhase {
    /// The slot's worker is quiesced and stopped; updates routed to the slot
    /// are parking. Every other shard is ingesting normally.
    Parked,
    /// Both children are rebuilt (and, for persistent deployments, durable
    /// on disk with the manifest rewritten — the split is now the committed
    /// topology even across a crash).
    Rebuilt,
    /// Routing serves the refined map; parked updates have been re-routed;
    /// the children's workers are live.
    Committed,
}

/// What a completed split did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitReport {
    /// The worker slot that was split (now serving the bit-0 child).
    pub slot: usize,
    /// The new worker slot serving the bit-1 child.
    pub new_slot: usize,
    /// The retired parent's engine id.
    pub parent_engine: u64,
    /// The children's fresh engine ids (bit 0, bit 1).
    pub child_engines: (u64, u64),
    /// The parent's sequence number at quiesce — both children start here.
    pub parent_seq: u64,
    /// Sequence number of the checkpoint the rebuild started from (0 when
    /// the rebuild partitioned live in-memory state or started fresh).
    pub snapshot_seq: u64,
    /// WAL updates replayed (filtered) past the checkpoint.
    pub replayed_updates: u64,
    /// Updates that parked during the split and were re-routed at commit.
    pub parked_updates: u64,
    /// The routing-table generation after the split.
    pub generation: u64,
}

/// The milestones of one merge, reported to the observer callback of
/// [`ShardedFleet::merge_shards_with`]. The mirror image of
/// [`SplitPhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePhase {
    /// Both sibling slots' workers are quiesced and stopped; updates routed
    /// to either slot are parking. Every other shard is ingesting normally.
    Parked,
    /// The merged shard is rebuilt (and, for persistent deployments, durable
    /// on disk with the manifest rewritten — the coarsened map is now the
    /// committed topology even across a crash).
    Rebuilt,
    /// Routing serves the coarsened map; parked updates have been drained to
    /// the merged worker; the displaced last slot (if any) is renumbered.
    Committed,
}

/// What a completed merge did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// The worker slot the merged shard serves (the smaller of the pair).
    pub slot: usize,
    /// The worker slot the merge freed (the larger of the pair).
    pub freed_slot: usize,
    /// The former slot of the worker renumbered into
    /// [`freed_slot`](MergeReport::freed_slot) (always the previous last
    /// slot), or `None` when the freed slot was the last one.
    pub moved_slot: Option<usize>,
    /// The retired children's engine ids (routing bit 0, bit 1).
    pub child_engines: (u64, u64),
    /// The merged shard's fresh engine id.
    pub merged_engine: u64,
    /// The children's sequence numbers at quiesce (bit 0, bit 1).
    pub child_seqs: (u64, u64),
    /// The merged shard's starting sequence number (the children's sum).
    pub merged_seq: u64,
    /// Updates that parked during the merge and were drained at commit.
    pub parked_updates: u64,
    /// The routing-table generation after the merge.
    pub generation: u64,
}

/// Thresholds deciding when a shard is hot enough to split.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancePolicy {
    /// Split when a slot's ingest queue depth (updates routed but not yet
    /// applied) reaches this many updates — the shard is falling behind its
    /// stream.
    pub min_queue_depth: u64,
    /// Split when a slot applied more than this fraction of the fleet's
    /// updates **since the previous check** (skew signal; only meaningful
    /// once [`min_total_updates`](RebalancePolicy::min_total_updates) is met
    /// within the window).
    pub min_share: f64,
    /// Minimum fleet-wide updates applied within the check window before
    /// the share signal fires (avoids splitting on startup or idle noise).
    /// Also gates the **merge** signal: an idle fleet is indistinguishable
    /// from a cold one, so nothing merges until the window carries at least
    /// this much traffic.
    pub min_total_updates: u64,
    /// Merge a sibling pair back together only while **both** slots' ingest
    /// queue depths are at or below this bound (neither is falling behind).
    pub merge_max_queue_depth: u64,
    /// ... and each of the pair applied at most this fraction of the fleet's
    /// updates within the check window (both slices have gone cold — e.g.
    /// their stories decayed out).
    pub merge_max_share: f64,
}

impl Default for RebalancePolicy {
    /// Split on queue depth 4096 or a 60% share of a ≥50k-update window;
    /// merge sibling slots whose queues are ≤16 deep and whose window shares
    /// are each ≤5%.
    fn default() -> Self {
        RebalancePolicy {
            min_queue_depth: 4096,
            min_share: 0.6,
            min_total_updates: 50_000,
            merge_max_queue_depth: 16,
            merge_max_share: 0.05,
        }
    }
}

/// Detects hot shards from the fleet's live signals and drives splits.
///
/// The two signals are the ones the facade already maintains: per-slot
/// **ingest queue depth** ([`ShardedFleet::queue_depths`], routed minus
/// applied — the backpressure measure) and the per-slot share of updates
/// applied **since the previous check**, derived from the published
/// [`ShardSnapshot`] stats (the skew measure). The share signal is a *rate*,
/// not a lifetime counter, for two reasons: a slot that was hot an hour ago
/// but is balanced now must not be split, and the child that adopts the
/// parent's cumulative ledger after a split must not look eternally hot.
/// That makes the rebalancer stateful: the first [`pick`](Rebalancer::pick)
/// after construction (or after a topology change) only establishes the
/// baseline window. Drive it from an operations loop:
///
/// ```no_run
/// use dyndens_shard::{rebalance::Rebalancer, ShardConfig, ShardedDynDens};
/// use dyndens_core::DynDensConfig;
/// use dyndens_density::AvgWeight;
///
/// let mut fleet = ShardedDynDens::new(
///     AvgWeight,
///     DynDensConfig::new(1.0, 4).with_delta_it(0.15),
///     ShardConfig::new(2),
/// );
/// let mut rebalancer = Rebalancer::default();
/// loop {
///     // ... ingest for a while ...
///     if let Some(result) = rebalancer.maybe_split(&mut fleet) {
///         let report = result.expect("split failed");
///         eprintln!("split shard {} -> +{}", report.slot, report.new_slot);
///     }
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rebalancer {
    policy: RebalancePolicy,
    /// Per-slot applied-update counters at the previous [`pick`], the base
    /// of the share window. Reset whenever the slot count changes.
    ///
    /// [`pick`]: Rebalancer::pick
    baseline: Vec<u64>,
    /// The cold-slot window base for [`pick_merge`](Rebalancer::pick_merge),
    /// kept separate from the split baseline so an operations loop can drive
    /// both signals without the two consuming each other's windows.
    merge_baseline: Vec<u64>,
}

impl Rebalancer {
    /// A rebalancer with the given thresholds.
    pub fn new(policy: RebalancePolicy) -> Self {
        Rebalancer {
            policy,
            baseline: Vec::new(),
            merge_baseline: Vec::new(),
        }
    }

    /// The thresholds in effect.
    pub fn policy(&self) -> &RebalancePolicy {
        &self.policy
    }

    /// The hottest splittable slot, or `None` while no slot crosses the
    /// policy thresholds. Queue depth dominates (a shard actively falling
    /// behind); the applied-share skew signal backs it up, computed over the
    /// window since the previous `pick` (the first call after construction
    /// or a topology change only establishes the window).
    pub fn pick<B: EngineBlueprint>(&mut self, fleet: &ShardedFleet<B>) -> Option<usize> {
        let view = fleet.view();
        let applied: Vec<u64> = (0..view.n_shards())
            .map(|s| view.shard_snapshot(s).stats.updates)
            .collect();
        let window_valid = self.baseline.len() == applied.len();
        let deltas: Vec<u64> = if window_valid {
            applied
                .iter()
                .zip(&self.baseline)
                .map(|(now, base)| now.saturating_sub(*base))
                .collect()
        } else {
            Vec::new()
        };
        self.baseline = applied;

        let depths = fleet.queue_depths();
        let total: u64 = deltas.iter().sum();
        // Publish the two signals the decision is based on — the observed
        // skew is what an operator tunes the policy thresholds against.
        if let Some(registry) = fleet.config().obs.registry() {
            registry
                .gauge(names::REBALANCE_MAX_QUEUE_DEPTH, &[])
                .set(depths.iter().copied().max().unwrap_or(0));
            let most = deltas.iter().copied().max().unwrap_or(0);
            registry
                .gauge(names::REBALANCE_MAX_SHARE_PERMILLE, &[])
                .set(most.saturating_mul(1000).checked_div(total).unwrap_or(0));
        }
        let picked = (|| {
            if let Some((slot, &depth)) = depths.iter().enumerate().max_by_key(|&(_, &depth)| depth)
            {
                if depth >= self.policy.min_queue_depth {
                    return Some(slot);
                }
            }
            if !window_valid || deltas.len() < 2 {
                return None;
            }
            if total < self.policy.min_total_updates {
                return None;
            }
            let (slot, &most) = deltas.iter().enumerate().max_by_key(|&(_, &n)| n)?;
            (most as f64 > self.policy.min_share * total as f64).then_some(slot)
        })();
        if let (Some(registry), Some(slot)) = (fleet.config().obs.registry(), picked) {
            registry
                .gauge(names::REBALANCE_LAST_PICK, &[])
                .set(slot as u64);
        }
        picked
    }

    /// Splits the hottest shard if any slot crosses the thresholds. Returns
    /// `None` when the fleet is balanced (or while the share window is still
    /// being established).
    pub fn maybe_split<B: EngineBlueprint>(
        &mut self,
        fleet: &mut ShardedFleet<B>,
    ) -> Option<Result<SplitReport, RebalanceError>> {
        let slot = self.pick(fleet)?;
        Some(fleet.split_shard(slot))
    }

    /// The coldest mergeable sibling pair, or `None` while no pair qualifies.
    /// A pair qualifies when both slots' ingest queues are at or below
    /// [`merge_max_queue_depth`](RebalancePolicy::merge_max_queue_depth) and
    /// each applied at most
    /// [`merge_max_share`](RebalancePolicy::merge_max_share) of a window
    /// carrying at least
    /// [`min_total_updates`](RebalancePolicy::min_total_updates) fleet-wide
    /// — cold slices inside an otherwise active fleet. The idle-fleet guard
    /// is deliberate: with no traffic at all, "cold" carries no information,
    /// and merging would churn topology for nothing. Like
    /// [`pick`](Rebalancer::pick), the first call after construction or a
    /// topology change only establishes the window.
    pub fn pick_merge<B: EngineBlueprint>(
        &mut self,
        fleet: &ShardedFleet<B>,
    ) -> Option<(usize, usize)> {
        let view = fleet.view();
        let applied: Vec<u64> = (0..view.n_shards())
            .map(|s| view.shard_snapshot(s).stats.updates)
            .collect();
        let window_valid = self.merge_baseline.len() == applied.len();
        let deltas: Vec<u64> = if window_valid {
            applied
                .iter()
                .zip(&self.merge_baseline)
                .map(|(now, base)| now.saturating_sub(*base))
                .collect()
        } else {
            Vec::new()
        };
        self.merge_baseline = applied;
        if !window_valid {
            return None;
        }
        let total: u64 = deltas.iter().sum();
        if total < self.policy.min_total_updates {
            return None;
        }
        let depths = fleet.queue_depths();
        let cold = |slot: usize| {
            depths[slot] <= self.policy.merge_max_queue_depth
                && deltas[slot] as f64 <= self.policy.merge_max_share * total as f64
        };
        fleet
            .shard_map()
            .merge_candidates()
            .into_iter()
            .filter(|&(a, b)| cold(a) && cold(b))
            .min_by_key(|&(a, b)| deltas[a] + deltas[b])
    }

    /// Merges the coldest sibling pair if one qualifies. Returns `None` when
    /// no pair crosses the cold thresholds (or while the window is still
    /// being established).
    pub fn maybe_merge<B: EngineBlueprint>(
        &mut self,
        fleet: &mut ShardedFleet<B>,
    ) -> Option<Result<MergeReport, RebalanceError>> {
        let (a, b) = self.pick_merge(fleet)?;
        Some(fleet.merge_shards(a, b))
    }
}

/// What the disk rebuild measured, folded into the [`SplitReport`].
struct RebuildDetail {
    snapshot_seq: u64,
    replayed: u64,
}

impl<B: EngineBlueprint> ShardedFleet<B> {
    /// Splits worker `slot` into two shards: the bit-0 child keeps `slot`,
    /// the bit-1 child takes a new slot, and the routing table advances one
    /// generation. Equivalent to
    /// [`split_shard_with`](Self::split_shard_with) with a no-op observer.
    pub fn split_shard(&mut self, slot: usize) -> Result<SplitReport, RebalanceError> {
        self.split_shard_with(slot, |_| {})
    }

    /// Splits worker `slot`, invoking `observer` at each [`SplitPhase`].
    ///
    /// Only the split shard pauses: updates routed to it during the split
    /// park (unbounded) and are re-routed through the refined map at commit;
    /// every other shard — and every [`IngestHandle`](crate::IngestHandle)
    /// and [`StoryView`](crate::StoryView) — keeps working throughout,
    /// including from other threads. Pollers of the split slot resynchronise
    /// from its post-split snapshot (its delta ring restarts empty, exactly
    /// like after crash recovery).
    ///
    /// For persistent deployments the children are rebuilt from the parent's
    /// newest checkpoint plus its WAL slice, both filtered through the
    /// refined routing, and the split commits durably via a manifest
    /// rewrite. In-memory deployments partition the live engine instead.
    /// See the [module docs](crate::rebalance) for the full protocol,
    /// equivalence guarantees and failure semantics.
    pub fn split_shard_with(
        &mut self,
        slot: usize,
        mut observer: impl FnMut(SplitPhase),
    ) -> Result<SplitReport, RebalanceError> {
        // Refine the map first: it also validates the slot.
        let mut new_map = {
            let routing = self.routing.read().expect("routing poisoned");
            routing.map.clone()
        };
        let spec = new_map
            .split(slot)
            .ok_or(RebalanceError::UnknownShard(slot))?;

        // 1. Park the slot: new ingest for it accumulates unconsumed. The
        // pause clock runs from here to commit — the whole window in which
        // the slot is not applying updates.
        let pause_started = Instant::now();
        let (park_tx, park_rx) = channel();
        let old_tx = {
            let mut routing = self.routing.write().expect("routing poisoned");
            match std::mem::replace(&mut routing.senders[slot], ShardTx::Parked(park_tx)) {
                ShardTx::Live(tx) => tx,
                parked @ ShardTx::Parked(_) => {
                    // Defensive: a slot can only be parked by a split, and
                    // splits are serialised by `&mut self`. Restore and bail.
                    routing.senders[slot] = parked;
                    return Err(RebalanceError::UnknownShard(slot));
                }
            }
        };

        // 2. Quiesce the parent: everything routed before the park is
        // applied (and, when persistent, in the WAL), then the worker stops.
        let (ack_tx, ack_rx) = channel();
        let _ = old_tx.send(WorkerMsg::Flush(ack_tx));
        let _ = ack_rx.recv();
        let _ = old_tx.send(WorkerMsg::Shutdown);
        drop(old_tx);
        if let Some(handle) = self.workers[slot].take() {
            let _ = handle.join();
        }
        let roster = self.roster.load();
        let parent_seq = roster.cells[slot].seq();
        observer(SplitPhase::Parked);
        // One journal span covers the whole split; the Committed record is
        // enriched with the report counts. An aborted split leaves the span
        // open — a Begin without an End marks the failed attempt.
        let split_event =
            |stage: RebalanceStage, parked: u64, replayed: u64| ObsEvent::SplitPhase {
                slot: slot as u32,
                new_slot: spec.new_slot as u32,
                stage,
                parked,
                replayed,
            };
        let obs_span = self
            .config
            .obs
            .registry()
            .map(|registry| registry.begin(split_event(RebalanceStage::Parked, 0, 0)));

        // 3. Rebuild the children; on failure, resurrect the parent.
        let keep = |v: VertexId| new_map.route(v) == slot;
        let built = self.build_children(&keep, slot, parent_seq, &spec, &new_map);
        let (mut child_zero, mut child_one, persist, detail) = match built {
            Ok(parts) => parts,
            Err(e) => {
                self.resurrect_parent(slot, parent_seq, park_rx);
                return Err(e);
            }
        };
        observer(SplitPhase::Rebuilt);
        if let (Some(registry), Some(span)) = (self.config.obs.registry(), obs_span) {
            registry.note(
                span,
                split_event(RebalanceStage::Rebuilt, 0, detail.replayed),
            );
        }

        // 4. Publish the grown roster in ONE epoch store, so readers switch
        // from "parent owns the slot" to "both children exist" atomically —
        // no interleaving can observe child zero without child one (which
        // would transiently lose the moved slice's stories). Both children
        // get *fresh* cells initialised at the split point: the split slot's
        // sequence numbers stay monotone (its old cell sat at `parent_seq`
        // too, holding the parent's final snapshot until the swap), and both
        // delta rings start empty, so pollers resync exactly as after crash
        // recovery.
        let (persist_zero, persist_one) = persist;
        let fresh_cell = |shard: usize, engine: &mut B::Engine| {
            let cell = Arc::new(EpochCell::new(ShardSnapshot::empty(shard)));
            cell.store_with_seq(
                Arc::new(worker::build_snapshot(
                    shard,
                    engine,
                    parent_seq,
                    parent_seq,
                    &[],
                    self.config.top_k,
                )),
                parent_seq,
            );
            cell
        };
        let mut cells = roster.cells.clone();
        let mut rings = roster.rings.clone();
        cells[slot] = fresh_cell(slot, &mut child_zero);
        rings[slot] = Arc::new(DeltaRing::new(self.config.delta_retention));
        cells.push(fresh_cell(spec.new_slot, &mut child_one));
        rings.push(Arc::new(DeltaRing::new(self.config.delta_retention)));
        let engine_zero = Arc::new(Mutex::new(child_zero));
        let engine_one = Arc::new(Mutex::new(child_one));
        let (tx_zero, handle_zero, slot_zero) = spawn_worker(
            slot,
            &self.config,
            parent_seq,
            persist_zero,
            &engine_zero,
            &cells[slot],
            &rings[slot],
        );
        let (tx_one, handle_one, slot_one) = spawn_worker(
            spec.new_slot,
            &self.config,
            parent_seq,
            persist_one,
            &engine_one,
            &cells[spec.new_slot],
            &rings[spec.new_slot],
        );
        self.engines[slot] = engine_zero;
        self.engines.push(engine_one);
        self.workers[slot] = Some(handle_zero);
        self.workers.push(Some(handle_one));
        self.slots[slot] = slot_zero;
        self.slots.push(slot_one);
        self.roster.store(Arc::new(ShardRoster { cells, rings }));

        // 5. Commit routing: install the refined map and drain the parked
        // backlog through it, in arrival order. Holding the write lock here
        // guarantees no sender is mid-send, so the drain is complete.
        let parked_updates = {
            let mut routing = self.routing.write().expect("routing poisoned");
            let (mut to_zero, mut to_one) = (0u64, 0u64);
            let route_one = |u: &dyndens_graph::EdgeUpdate| new_map.route(u.a.min(u.b)) != slot;
            while let Ok(msg) = park_rx.try_recv() {
                match msg {
                    WorkerMsg::Update(u) => {
                        if route_one(&u) {
                            to_one += 1;
                            let _ = tx_one.send(WorkerMsg::Update(u));
                        } else {
                            to_zero += 1;
                            let _ = tx_zero.send(WorkerMsg::Update(u));
                        }
                    }
                    WorkerMsg::Batch(batch) => {
                        let (mut zero, mut one) = (Vec::new(), Vec::new());
                        for u in batch {
                            if route_one(&u) {
                                one.push(u);
                            } else {
                                zero.push(u);
                            }
                        }
                        to_zero += zero.len() as u64;
                        to_one += one.len() as u64;
                        if !zero.is_empty() {
                            let _ = tx_zero.send(WorkerMsg::Batch(zero));
                        }
                        if !one.is_empty() {
                            let _ = tx_one.send(WorkerMsg::Batch(one));
                        }
                    }
                    // A flush parked mid-split must cover both children.
                    WorkerMsg::Flush(ack) => {
                        let _ = tx_zero.send(WorkerMsg::Flush(ack.clone()));
                        let _ = tx_one.send(WorkerMsg::Flush(ack));
                    }
                    // So must a compaction pass; the waiter's sum simply
                    // receives two acknowledgements for the parked slot.
                    WorkerMsg::Compact { min_weight, ack } => {
                        let _ = tx_zero.send(WorkerMsg::Compact {
                            min_weight,
                            ack: ack.clone(),
                        });
                        let _ = tx_one.send(WorkerMsg::Compact { min_weight, ack });
                    }
                    WorkerMsg::Shutdown => {
                        let _ = tx_zero.send(WorkerMsg::Shutdown);
                        let _ = tx_one.send(WorkerMsg::Shutdown);
                    }
                }
            }
            routing.senders[slot] = ShardTx::Live(tx_zero);
            routing.senders.push(ShardTx::Live(tx_one));
            routing.routed[slot] = Arc::new(AtomicU64::new(parent_seq + to_zero));
            routing
                .routed
                .push(Arc::new(AtomicU64::new(parent_seq + to_one)));
            // The routed cells were re-seeded: point the registry's
            // per-shard routed series at the fresh cells.
            if let Some(registry) = self.config.obs.registry() {
                registry.adopt_counter(
                    names::SHARD_ROUTED_TOTAL,
                    &[("shard", &slot.to_string())],
                    Arc::clone(&routing.routed[slot]),
                );
                registry.adopt_counter(
                    names::SHARD_ROUTED_TOTAL,
                    &[("shard", &spec.new_slot.to_string())],
                    Arc::clone(&routing.routed[spec.new_slot]),
                );
            }
            routing.map = new_map.clone();
            to_zero + to_one
        };

        // 6. Retire the parent's directory (the manifest no longer
        // references it; best-effort — an orphan is harmless).
        if let Some(p) = &self.persistence {
            let _ = std::fs::remove_dir_all(recovery::shard_dir(&p.dir, spec.parent_engine));
        }
        observer(SplitPhase::Committed);
        if let (Some(registry), Some(span)) = (self.config.obs.registry(), obs_span) {
            registry.end(
                span,
                split_event(RebalanceStage::Committed, parked_updates, detail.replayed),
            );
            registry.counter(names::SPLITS_TOTAL, &[]).inc();
            registry
                .histogram(names::REBALANCE_PAUSE_US, &[])
                .record_micros(pause_started.elapsed());
        }

        Ok(SplitReport {
            slot,
            new_slot: spec.new_slot,
            parent_engine: spec.parent_engine,
            child_engines: (spec.child_zero_engine, spec.child_one_engine),
            parent_seq,
            snapshot_seq: detail.snapshot_seq,
            replayed_updates: detail.replayed,
            parked_updates,
            generation: new_map.generation(),
        })
    }

    /// Merges sibling worker slots `a` and `b` back into one shard.
    /// Equivalent to [`merge_shards_with`](Self::merge_shards_with) with a
    /// no-op observer.
    pub fn merge_shards(&mut self, a: usize, b: usize) -> Result<MergeReport, RebalanceError> {
        self.merge_shards_with(a, b, |_| {})
    }

    /// Merges sibling worker slots `a` and `b` — the exact inverse of the
    /// split that created them — invoking `observer` at each [`MergePhase`].
    ///
    /// Only the two siblings pause: updates routed to either park
    /// (unbounded, on one shared queue) and are drained to the merged worker
    /// at commit; every other shard keeps working throughout. The merged
    /// shard keeps the smaller slot of the pair; the larger slot is freed,
    /// and the previous last slot is renumbered into it without respawning
    /// its worker (see [`MergeReport::moved_slot`]). Pollers of the merged
    /// slot resynchronise from its post-merge snapshot, exactly as after a
    /// split or crash recovery; a renumbered slot keeps its delta ring, so
    /// its pollers follow deltas seamlessly under the new index.
    ///
    /// For persistent deployments the merged engine is rebuilt from the two
    /// children's own durable state — each recovered to its quiesce point,
    /// then absorbed into one engine ([`MaintenanceEngine::absorb`]) — and the merge
    /// commits durably via the same atomic manifest rewrite as a split.
    /// In-memory deployments absorb the live engines directly. If the
    /// rebuild fails, both children are resurrected from their intact state
    /// and the fleet continues un-merged with the error reported.
    pub fn merge_shards_with(
        &mut self,
        a: usize,
        b: usize,
        mut observer: impl FnMut(MergePhase),
    ) -> Result<MergeReport, RebalanceError> {
        // Coarsen the map first: it also validates that the pair is a
        // sibling pair.
        let mut new_map = {
            let routing = self.routing.read().expect("routing poisoned");
            routing.map.clone()
        };
        let spec = new_map
            .merge(a, b)
            .ok_or(RebalanceError::NotSiblings(a, b))?;

        // 1. Park both siblings on one shared queue: new ingest for either
        // accumulates unconsumed (per-sender order is preserved, which is
        // all the merged engine needs — the two slices touch disjoint
        // edges). The pause clock runs from here to commit.
        let pause_started = Instant::now();
        let (park_tx, park_rx) = channel();
        let (old_tx_kept, old_tx_freed) = {
            let mut routing = self.routing.write().expect("routing poisoned");
            let kept = match std::mem::replace(
                &mut routing.senders[spec.slot],
                ShardTx::Parked(park_tx.clone()),
            ) {
                ShardTx::Live(tx) => tx,
                parked @ ShardTx::Parked(_) => {
                    routing.senders[spec.slot] = parked;
                    return Err(RebalanceError::UnknownShard(spec.slot));
                }
            };
            let freed = match std::mem::replace(
                &mut routing.senders[spec.freed_slot],
                ShardTx::Parked(park_tx),
            ) {
                ShardTx::Live(tx) => tx,
                parked @ ShardTx::Parked(_) => {
                    routing.senders[spec.freed_slot] = parked;
                    routing.senders[spec.slot] = ShardTx::Live(kept);
                    return Err(RebalanceError::UnknownShard(spec.freed_slot));
                }
            };
            (kept, freed)
        };

        // 2. Quiesce both: everything routed before the park is applied
        // (and, when persistent, in each child's WAL), then the workers
        // stop.
        let quiesce = |tx: SyncSender<WorkerMsg>, handle: Option<JoinHandle<()>>| {
            let (ack_tx, ack_rx) = channel();
            let _ = tx.send(WorkerMsg::Flush(ack_tx));
            let _ = ack_rx.recv();
            let _ = tx.send(WorkerMsg::Shutdown);
            drop(tx);
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        };
        quiesce(old_tx_kept, self.workers[spec.slot].take());
        quiesce(old_tx_freed, self.workers[spec.freed_slot].take());
        let roster = self.roster.load();
        let seq_zero = roster.cells[spec.zero_slot].seq();
        let seq_one = roster.cells[spec.one_slot].seq();
        let merged_seq = seq_zero + seq_one;
        observer(MergePhase::Parked);
        // One journal span covers the whole merge, mirroring the split span;
        // an aborted merge leaves it open (Begin without End).
        let merge_event = |stage: RebalanceStage, parked: u64| ObsEvent::MergePhase {
            slot: spec.slot as u32,
            freed_slot: spec.freed_slot as u32,
            stage,
            parked,
        };
        let obs_span = self
            .config
            .obs
            .registry()
            .map(|registry| registry.begin(merge_event(RebalanceStage::Parked, 0)));

        // 3. Rebuild the merged shard; on failure, resurrect both children.
        let live_stats = {
            let mut stats = self.engines[spec.slot]
                .lock()
                .expect("shard engine poisoned")
                .stats()
                .clone();
            stats.merge(
                self.engines[spec.freed_slot]
                    .lock()
                    .expect("shard engine poisoned")
                    .stats(),
            );
            stats
        };
        let built = self.build_merged(&spec, (seq_zero, seq_one), live_stats, &new_map);
        let (mut merged, persist) = match built {
            Ok(parts) => parts,
            Err(e) => {
                self.resurrect_merge_children(&spec, park_rx);
                return Err(e);
            }
        };
        observer(MergePhase::Rebuilt);
        if let (Some(registry), Some(span)) = (self.config.obs.registry(), obs_span) {
            registry.note(span, merge_event(RebalanceStage::Rebuilt, 0));
        }

        // 4. Publish the shrunk roster in ONE epoch store: readers switch
        // from "two siblings" to "one merged shard, last slot renumbered"
        // atomically. The merged slot gets a fresh cell at the merged
        // sequence number and an empty delta ring (pollers resync, exactly
        // as after a split); the renumbered slot keeps its cell and ring
        // objects, just at a new index.
        let last = roster.cells.len() - 1;
        let mut cells = roster.cells.clone();
        let mut rings = roster.rings.clone();
        let fresh = Arc::new(EpochCell::new(ShardSnapshot::empty(spec.slot)));
        fresh.store_with_seq(
            Arc::new(worker::build_snapshot(
                spec.slot,
                &mut merged,
                merged_seq,
                merged_seq,
                &[],
                self.config.top_k,
            )),
            merged_seq,
        );
        cells[spec.slot] = fresh;
        rings[spec.slot] = Arc::new(DeltaRing::new(self.config.delta_retention));
        if spec.moved_slot.is_some() {
            cells.swap(spec.freed_slot, last);
            rings.swap(spec.freed_slot, last);
        }
        cells.pop();
        rings.pop();
        let merged_engine = Arc::new(Mutex::new(merged));
        let (tx_merged, handle_merged, slot_cell) = spawn_worker(
            spec.slot,
            &self.config,
            merged_seq,
            persist,
            &merged_engine,
            &cells[spec.slot],
            &rings[spec.slot],
        );
        self.engines[spec.slot] = merged_engine;
        self.workers[spec.slot] = Some(handle_merged);
        self.slots[spec.slot] = slot_cell;
        if spec.moved_slot.is_some() {
            self.engines.swap(spec.freed_slot, last);
            self.workers.swap(spec.freed_slot, last);
            self.slots.swap(spec.freed_slot, last);
        }
        self.engines.pop();
        self.workers.pop();
        self.slots.pop();
        if spec.moved_slot.is_some() {
            // Renumber the moved worker in place (no respawn): it stamps
            // every snapshot it publishes from now on with the freed slot
            // number.
            self.slots[spec.freed_slot].store(spec.freed_slot as u32, Ordering::Relaxed);
        }
        self.roster.store(Arc::new(ShardRoster { cells, rings }));

        // 5. Commit routing: install the coarsened map and drain the shared
        // parked backlog to the merged worker, in arrival order. Holding the
        // write lock guarantees no sender is mid-send, so the drain is
        // complete.
        let parked_updates = {
            let mut routing = self.routing.write().expect("routing poisoned");
            let mut drained = 0u64;
            while let Ok(msg) = park_rx.try_recv() {
                match msg {
                    WorkerMsg::Update(u) => {
                        drained += 1;
                        let _ = tx_merged.send(WorkerMsg::Update(u));
                    }
                    WorkerMsg::Batch(batch) => {
                        drained += batch.len() as u64;
                        let _ = tx_merged.send(WorkerMsg::Batch(batch));
                    }
                    // Flushes, compaction passes and shutdowns parked
                    // against either sibling all target the one merged
                    // worker now.
                    other => {
                        let _ = tx_merged.send(other);
                    }
                }
            }
            routing.senders[spec.slot] = ShardTx::Live(tx_merged);
            if spec.moved_slot.is_some() {
                routing.senders.swap(spec.freed_slot, last);
                routing.routed.swap(spec.freed_slot, last);
            }
            routing.senders.pop();
            routing.routed.pop();
            routing.routed[spec.slot] = Arc::new(AtomicU64::new(merged_seq + drained));
            // Re-point the registry's routed series at the surviving cells:
            // the merged slot got a fresh cell, the renumbered slot carries
            // the previous last slot's cell, and slot `last` no longer
            // exists (when nothing moved, `last == freed_slot`).
            if let Some(registry) = self.config.obs.registry() {
                registry.adopt_counter(
                    names::SHARD_ROUTED_TOTAL,
                    &[("shard", &spec.slot.to_string())],
                    Arc::clone(&routing.routed[spec.slot]),
                );
                if spec.moved_slot.is_some() {
                    registry.adopt_counter(
                        names::SHARD_ROUTED_TOTAL,
                        &[("shard", &spec.freed_slot.to_string())],
                        Arc::clone(&routing.routed[spec.freed_slot]),
                    );
                }
                registry.unregister(names::SHARD_ROUTED_TOTAL, &[("shard", &last.to_string())]);
            }
            routing.map = new_map.clone();
            drained
        };

        // 6. Retire the children's directories (the manifest no longer
        // references them; best-effort — an orphan is harmless).
        if let Some(p) = &self.persistence {
            let _ = std::fs::remove_dir_all(recovery::shard_dir(&p.dir, spec.zero_engine));
            let _ = std::fs::remove_dir_all(recovery::shard_dir(&p.dir, spec.one_engine));
        }
        observer(MergePhase::Committed);
        if let (Some(registry), Some(span)) = (self.config.obs.registry(), obs_span) {
            registry.end(span, merge_event(RebalanceStage::Committed, parked_updates));
            registry.counter(names::MERGES_TOTAL, &[]).inc();
            registry
                .histogram(names::REBALANCE_PAUSE_US, &[])
                .record_micros(pause_started.elapsed());
        }

        Ok(MergeReport {
            slot: spec.slot,
            freed_slot: spec.freed_slot,
            moved_slot: spec.moved_slot,
            child_engines: (spec.zero_engine, spec.one_engine),
            merged_engine: spec.merged_engine,
            child_seqs: (seq_zero, seq_one),
            merged_seq,
            parked_updates,
            generation: new_map.generation(),
        })
    }

    /// Rebuilds the merged engine (disk path for persistent deployments,
    /// absorbing clones of the live engines otherwise), adopts the pair's
    /// live work ledger, persists the merged shard and commits the manifest.
    fn build_merged(
        &self,
        spec: &MergeSpec,
        (seq_zero, seq_one): (u64, u64),
        live_stats: EngineStats,
        new_map: &ShardMap,
    ) -> Result<(B::Engine, Option<WorkerPersistence>), RebalanceError> {
        let mut merged = match &self.persistence {
            Some(p) => {
                // Each child recovers from its own durable state, which a
                // clean quiesce left complete: its newest checkpoint plus
                // its WAL tail must reach the quiesce point exactly.
                let recover =
                    |engine_id: u64, slot: usize, want: u64| -> Result<B::Engine, RebalanceError> {
                        let dir = recovery::shard_dir(&p.dir, engine_id);
                        let rec = recovery::recover_shard(&self.blueprint, slot, &dir, p)?;
                        if rec.seq != want {
                            return Err(RebalanceError::HistoryGap {
                                expected: want,
                                found: rec.seq,
                            });
                        }
                        Ok(rec.engine)
                    };
                let mut zero = recover(spec.zero_engine, spec.zero_slot, seq_zero)?;
                let one = recover(spec.one_engine, spec.one_slot, seq_one)?;
                zero.absorb(one);
                zero
            }
            None => {
                let mut zero = self.engines[spec.zero_slot]
                    .lock()
                    .expect("shard engine poisoned")
                    .clone();
                let one = self.engines[spec.one_slot]
                    .lock()
                    .expect("shard engine poisoned")
                    .clone();
                zero.absorb(one);
                zero
            }
        };
        // The disk path recovers checkpoint-time counters; the pair's live
        // ledger is authoritative either way (for the in-memory path this
        // re-adopts the value absorb already merged).
        merged.adopt_stats(live_stats);
        let persist = match &self.persistence {
            Some(p) => {
                let wp = persist_child(p, spec.merged_engine, seq_zero + seq_one, &merged)?;
                // The commit point: from here, recovery reopens the
                // coarsened topology.
                recovery::rewrite_manifest(
                    &p.dir,
                    self.blueprint.kind(),
                    self.blueprint.measure_name(),
                    &self.blueprint.params(),
                    new_map,
                )?;
                Some(wp)
            }
            None => None,
        };
        Ok((merged, persist))
    }

    /// Brings both parked siblings back to life after a failed merge
    /// rebuild. Their engines (in-memory deployments) or their on-disk
    /// state (complete to the quiesce point) are intact, so both respawn
    /// and the shared parked backlog is re-routed through the unchanged
    /// map. If either resurrection fails, the pair stays parked — the same
    /// double-fault posture as a failed split (see [`RebalanceError`]).
    fn resurrect_merge_children(
        &mut self,
        spec: &MergeSpec,
        park_rx: std::sync::mpsc::Receiver<WorkerMsg>,
    ) {
        let roster = self.roster.load();
        let pair = [spec.slot, spec.freed_slot];
        let mut spawned: Vec<(usize, SyncSender<WorkerMsg>)> = Vec::with_capacity(2);
        if let Some(p) = self.persistence.clone() {
            // Recover both engines before spawning anything, so a failure
            // leaves no half-resurrected pair.
            let mut recovered = Vec::with_capacity(2);
            for slot in pair {
                let engine_id = {
                    let routing = self.routing.read().expect("routing poisoned");
                    routing.map.engine_of(slot).unwrap_or(slot as u64)
                };
                let dir = recovery::shard_dir(&p.dir, engine_id);
                match recovery::recover_shard(&self.blueprint, slot, &dir, &p) {
                    Ok(rec) => recovered.push((slot, dir, rec)),
                    Err(e) => {
                        // Double fault: both siblings stay parked until a
                        // process restart recovers them. The shared backlog
                        // keeps accumulating in memory (never applied or
                        // logged) and is lost on restart.
                        eprintln!(
                            "shard {slot}: sibling resurrection failed after aborted merge: {e}"
                        );
                        self.dead_parked.push(Mutex::new(park_rx));
                        return;
                    }
                }
            }
            for (slot, dir, rec) in recovered {
                debug_assert_eq!(rec.seq, roster.cells[slot].seq());
                let persist = WorkerPersistence {
                    wal: rec.wal,
                    dir,
                    snapshot_every: p.snapshot_every_batches,
                    retained: p.retained_snapshots,
                    batches_since_snapshot: 0,
                };
                self.engines[slot] = Arc::new(Mutex::new(rec.engine));
                let (tx, handle, slot_cell) = spawn_worker(
                    slot,
                    &self.config,
                    rec.seq,
                    Some(persist),
                    &self.engines[slot],
                    &roster.cells[slot],
                    &roster.rings[slot],
                );
                self.workers[slot] = Some(handle);
                self.slots[slot] = slot_cell;
                spawned.push((slot, tx));
            }
        } else {
            for slot in pair {
                let (tx, handle, slot_cell) = spawn_worker(
                    slot,
                    &self.config,
                    roster.cells[slot].seq(),
                    None,
                    &self.engines[slot],
                    &roster.cells[slot],
                    &roster.rings[slot],
                );
                self.workers[slot] = Some(handle);
                self.slots[slot] = slot_cell;
                spawned.push((slot, tx));
            }
        }
        // Drain the shared backlog through the unchanged routing map, then
        // swap the live senders in — all under the write lock, so no
        // producer can interleave ahead of the backlog.
        let mut routing = self.routing.write().expect("routing poisoned");
        let tx_of = |slot: usize| {
            &spawned
                .iter()
                .find(|(s, _)| *s == slot)
                .expect("resurrected pair")
                .1
        };
        while let Ok(msg) = park_rx.try_recv() {
            match msg {
                WorkerMsg::Update(u) => {
                    let slot = routing.map.route(u.a.min(u.b));
                    let _ = tx_of(slot).send(WorkerMsg::Update(u));
                }
                WorkerMsg::Batch(batch) => {
                    // A parked batch was pre-routed to one sibling: all its
                    // updates share an owner under the unchanged map.
                    let slot = batch
                        .first()
                        .map(|u| routing.map.route(u.a.min(u.b)))
                        .unwrap_or(spec.slot);
                    let _ = tx_of(slot).send(WorkerMsg::Batch(batch));
                }
                // Which sibling a parked flush / compaction targeted is
                // unknowable: cover both. Waiters ignore surplus flush acks,
                // and a duplicate compaction pass evicts nothing new.
                WorkerMsg::Flush(ack) => {
                    let _ = tx_of(spec.slot).send(WorkerMsg::Flush(ack.clone()));
                    let _ = tx_of(spec.freed_slot).send(WorkerMsg::Flush(ack));
                }
                WorkerMsg::Compact { min_weight, ack } => {
                    let _ = tx_of(spec.slot).send(WorkerMsg::Compact {
                        min_weight,
                        ack: ack.clone(),
                    });
                    let _ = tx_of(spec.freed_slot).send(WorkerMsg::Compact { min_weight, ack });
                }
                WorkerMsg::Shutdown => {
                    let _ = tx_of(spec.slot).send(WorkerMsg::Shutdown);
                    let _ = tx_of(spec.freed_slot).send(WorkerMsg::Shutdown);
                }
            }
        }
        for (slot, tx) in spawned {
            routing.senders[slot] = ShardTx::Live(tx);
        }
    }

    /// Rebuilds the two child engines (disk path for persistent deployments,
    /// live partition otherwise), persists them and commits the manifest.
    #[allow(clippy::type_complexity)]
    fn build_children(
        &self,
        keep: &impl Fn(VertexId) -> bool,
        slot: usize,
        parent_seq: u64,
        spec: &dyndens_graph::SplitSpec,
        new_map: &ShardMap,
    ) -> Result<
        (
            B::Engine,
            B::Engine,
            (Option<WorkerPersistence>, Option<WorkerPersistence>),
            RebuildDetail,
        ),
        RebalanceError,
    > {
        let live_stats = self.engines[slot]
            .lock()
            .expect("shard engine poisoned")
            .stats()
            .clone();
        let (mut child_zero, mut child_one, detail) = match &self.persistence {
            Some(p) => {
                let dir = recovery::shard_dir(&p.dir, spec.parent_engine);
                rebuild_from_disk(&self.blueprint, &dir, parent_seq, keep)?
            }
            None => {
                let parent = self.engines[slot].lock().expect("shard engine poisoned");
                let (zero, one) = parent.partition_by(&mut |v| keep(v));
                (
                    zero,
                    one,
                    RebuildDetail {
                        snapshot_seq: 0,
                        replayed: 0,
                    },
                )
            }
        };
        // The ledger survives the split exactly: replay counted nothing, the
        // slot-keeping child adopts the parent's counters wholesale.
        child_zero.adopt_stats(live_stats);
        child_one.adopt_stats(EngineStats::default());

        let persist = match &self.persistence {
            Some(p) => {
                let zero = persist_child(p, spec.child_zero_engine, parent_seq, &child_zero)?;
                let one = persist_child(p, spec.child_one_engine, parent_seq, &child_one)?;
                // The commit point: from here, recovery reopens the refined
                // topology.
                recovery::rewrite_manifest(
                    &p.dir,
                    self.blueprint.kind(),
                    self.blueprint.measure_name(),
                    &self.blueprint.params(),
                    new_map,
                )?;
                (Some(zero), Some(one))
            }
            None => (None, None),
        };
        Ok((child_zero, child_one, persist, detail))
    }

    /// Brings the parked slot back to life on the parent engine after a
    /// failed rebuild: respawn a worker (recovering the engine and WAL
    /// writer from disk for persistent deployments — the parent's state is
    /// complete up to the quiesce point) and hand it the parked backlog
    /// unchanged.
    fn resurrect_parent(
        &mut self,
        slot: usize,
        parent_seq: u64,
        park_rx: std::sync::mpsc::Receiver<WorkerMsg>,
    ) {
        let roster = self.roster.load();
        let persist = match &self.persistence {
            Some(p) => {
                let engine_id = {
                    let routing = self.routing.read().expect("routing poisoned");
                    routing.map.engine_of(slot).unwrap_or(slot as u64)
                };
                let dir = recovery::shard_dir(&p.dir, engine_id);
                match recovery::recover_shard(&self.blueprint, slot, &dir, p) {
                    Ok(rec) => {
                        debug_assert_eq!(rec.seq, parent_seq);
                        self.engines[slot] = Arc::new(Mutex::new(rec.engine));
                        Some(WorkerPersistence {
                            wal: rec.wal,
                            dir,
                            snapshot_every: p.snapshot_every_batches,
                            retained: p.retained_snapshots,
                            batches_since_snapshot: 0,
                        })
                    }
                    Err(e) => {
                        // Double fault: the slot stays parked until a
                        // process restart recovers it. Keep the receiver
                        // alive so the slot's parked sender stays open —
                        // ingest routed here keeps parking in memory rather
                        // than panicking the sending thread. The parked
                        // backlog is unrecoverable in-process (never applied
                        // or logged) and is lost on restart.
                        eprintln!(
                            "shard {slot}: parent resurrection failed after aborted split: {e}"
                        );
                        self.dead_parked.push(Mutex::new(park_rx));
                        return;
                    }
                }
            }
            None => None,
        };
        let (tx, handle, slot_cell) = spawn_worker(
            slot,
            &self.config,
            parent_seq,
            persist,
            &self.engines[slot],
            &roster.cells[slot],
            &roster.rings[slot],
        );
        self.workers[slot] = Some(handle);
        self.slots[slot] = slot_cell;
        let mut routing = self.routing.write().expect("routing poisoned");
        while let Ok(msg) = park_rx.try_recv() {
            let _ = tx.send(msg);
        }
        routing.senders[slot] = ShardTx::Live(tx);
    }
}

/// Restores the parent's newest checkpoint, partitions it by `keep`, then
/// replays the WAL slice past it with every update filtered to its owning
/// child. Mirrors `recovery::recover_shard`, with the same torn-tail /
/// mid-log-corruption discipline — except that after a clean quiesce a torn
/// tail is genuine corruption, so any dirty segment is a hard error.
fn rebuild_from_disk<B: EngineBlueprint>(
    blueprint: &B,
    dir: &std::path::Path,
    target_seq: u64,
    keep: &impl Fn(VertexId) -> bool,
) -> Result<(B::Engine, B::Engine, RebuildDetail), RebalanceError> {
    // Newest parseable snapshot, falling back to older retained ones.
    let mut base: Option<B::Engine> = None;
    let mut snapshot_seq = 0u64;
    let mut last_snapshot_error: Option<RecoveryError> = None;
    for (_, path) in recovery::list_snapshots(dir)?.into_iter().rev() {
        match recovery::read_snapshot(&path).and_then(|(s, bytes)| {
            match blueprint.restore(&bytes) {
                Ok(e) => Ok((s, e)),
                Err(e) => Err(RecoveryError::Snapshot(e)),
            }
        }) {
            Ok((s, e)) => {
                base = Some(e);
                snapshot_seq = s;
                break;
            }
            Err(e) => last_snapshot_error = Some(e),
        }
    }
    let base = match base {
        Some(e) => e,
        None => blueprint.fresh(),
    };
    let (mut zero, mut one) = base.partition_by(&mut |v| keep(v));
    let mut seq = snapshot_seq;
    let mut replayed = 0u64;
    zero.set_recovering(true);
    one.set_recovering(true);
    let mut events = Vec::new();
    for (no, path) in wal::list_segments(dir)? {
        let scan = wal::scan_segment(&path)?;
        if !scan.clean {
            return Err(RecoveryError::CorruptWal { segment: no }.into());
        }
        for record in scan.records {
            if record.first_seq > seq {
                if let Some(e) = last_snapshot_error.take() {
                    return Err(e.into());
                }
                return Err(RecoveryError::SequenceGap {
                    expected: seq,
                    found: record.first_seq,
                }
                .into());
            }
            let skip = (seq - record.first_seq) as usize;
            if skip >= record.updates.len() {
                continue;
            }
            for u in &record.updates[skip..] {
                let side = if keep(u.a.min(u.b)) {
                    &mut zero
                } else {
                    &mut one
                };
                side.apply_update_into(*u, &mut events);
                events.clear();
                seq += 1;
                replayed += 1;
            }
        }
    }
    zero.set_recovering(false);
    one.set_recovering(false);
    if seq != target_seq {
        return Err(RebalanceError::HistoryGap {
            expected: target_seq,
            found: seq,
        });
    }
    Ok((
        zero,
        one,
        RebuildDetail {
            snapshot_seq,
            replayed,
        },
    ))
}

/// Writes one child's initial state: its directory (clobbering an orphan
/// from a previously crashed, uncommitted split — engine ids are only
/// consumed by the manifest rewrite), a snapshot at the split point, and a
/// fresh WAL positioned to append from it.
fn persist_child<E: MaintenanceEngine>(
    p: &PersistenceConfig,
    engine_id: u64,
    seq: u64,
    child: &E,
) -> Result<WorkerPersistence, RebalanceError> {
    let dir = recovery::shard_dir(&p.dir, engine_id);
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    recovery::write_snapshot(&dir, seq, &child.snapshot(), p.retained_snapshots)?;
    let wal = WalWriter::open(&dir, seq, Vec::new(), p.fsync, p.segment_max_bytes)?;
    Ok(WorkerPersistence {
        wal,
        dir,
        snapshot_every: p.snapshot_every_batches,
        retained: p.retained_snapshots,
        batches_since_snapshot: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FsyncPolicy, ShardConfig, ShardFn};
    use crate::sharded::ShardedDynDens;
    use dyndens_core::DynDensConfig;
    use dyndens_density::AvgWeight;
    use dyndens_graph::{EdgeUpdate, VertexSet};

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn engine_config() -> DynDensConfig {
        DynDensConfig::new(1.0, 4).with_delta_it(0.15)
    }

    fn shard_config(n: usize) -> ShardConfig {
        ShardConfig::new(n)
            .with_shard_fn(ShardFn::Modulo)
            .with_max_batch(4)
    }

    /// A stream of two communities both owned by base slot 0 of a 2-slot
    /// modulo map (residues 0 and 2 mod 4), plus one on slot 1: splitting
    /// slot 0 separates the two co-resident communities.
    fn skewed_updates() -> Vec<EdgeUpdate> {
        let mut updates = Vec::new();
        let communities: &[&[u32]] = &[&[0, 4, 8], &[2, 6, 10], &[1, 5, 9]];
        for round in 0..6 {
            for community in communities {
                for (i, &a) in community.iter().enumerate() {
                    for &b in &community[i + 1..] {
                        let delta = if round == 5 && i == 0 { -0.1 } else { 0.23 };
                        updates.push(update(a, b, delta));
                    }
                }
            }
        }
        updates
    }

    fn sorted_bits(mut sets: Vec<(VertexSet, f64)>) -> Vec<(VertexSet, u64)> {
        sets.sort_by(|a, b| a.0.cmp(&b.0));
        sets.into_iter().map(|(s, d)| (s, d.to_bits())).collect()
    }

    #[test]
    fn in_memory_split_preserves_the_answer_and_the_ledger() {
        let updates = skewed_updates();
        let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        let (head, tail) = updates.split_at(updates.len() / 2);
        reference.apply_batch(&updates);
        let want = sorted_bits(reference.dense_subgraphs());

        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        fleet.apply_batch(head);
        let mut phases = Vec::new();
        let report = fleet.split_shard_with(0, |p| phases.push(p)).unwrap();
        assert_eq!(
            phases,
            vec![
                SplitPhase::Parked,
                SplitPhase::Rebuilt,
                SplitPhase::Committed
            ]
        );
        assert_eq!(report.slot, 0);
        assert_eq!(report.new_slot, 2);
        assert_eq!(report.generation, 1);
        assert_eq!(fleet.n_shards(), 3);
        fleet.apply_batch(tail);
        fleet.validate().unwrap();
        assert_eq!(sorted_bits(fleet.dense_subgraphs()), want);
        // The ledger counts every update exactly once across the split.
        assert_eq!(fleet.stats().updates, updates.len() as u64);
        // Both children own part of the split slot's slice.
        let per_shard = fleet.view().per_shard_seq();
        assert_eq!(per_shard.len(), 3);
        assert!(per_shard[2] > report.parent_seq);
    }

    #[test]
    fn updates_parked_during_split_are_rerouted() {
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        fleet.apply_batch(&[update(0, 4, 1.1), update(2, 6, 1.2), update(1, 5, 1.3)]);
        fleet.flush();
        let handle = fleet.ingest_handle();
        let view = fleet.view();
        let report = fleet
            .split_shard_with(0, |phase| {
                if phase == SplitPhase::Parked {
                    // Routed to the parked slot: must wait for the commit.
                    handle.apply_update(update(0, 8, 0.9));
                    handle.apply_update(update(2, 10, 0.8));
                    // Routed to the untouched slot: applied while the split
                    // shard is down.
                    let before = view.shard_seq(1);
                    handle.apply_update(update(1, 9, 0.7));
                    while view.shard_seq(1) == before {
                        std::thread::yield_now();
                    }
                }
            })
            .unwrap();
        assert_eq!(report.parked_updates, 2);
        fleet.flush();
        // Both children start at the parent's quiesce point (2 updates) and
        // each applied one parked update; the untouched slot applied three.
        assert_eq!(fleet.view().per_shard_seq(), vec![3, 2, 3]);
        fleet.validate().unwrap();
        // The parked updates landed on their new owners: residue 0 mod 4
        // stayed on slot 0, residue 2 mod 4 moved to slot 2.
        assert_eq!(fleet.shard_of(&update(0, 8, 0.0)), 0);
        assert_eq!(fleet.shard_of(&update(2, 10, 0.0)), 2);
    }

    #[test]
    fn persistent_split_rebuilds_from_snapshot_and_wal_slice() {
        let dir = std::env::temp_dir().join(format!("dyndens-reb-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(3)
        };
        let updates = skewed_updates();
        let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        reference.apply_batch(&updates);
        let want = sorted_bits(reference.dense_subgraphs());

        let mut fleet = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(),
        )
        .unwrap();
        let (head, tail) = updates.split_at(2 * updates.len() / 3);
        // Flush per chunk so each chunk is its own micro-batch and the
        // checkpoint cadence (every 3 micro-batches) actually fires.
        for chunk in head.chunks(4) {
            fleet.apply_batch(chunk);
            fleet.flush();
        }
        let report = fleet.split_shard(0).unwrap();
        // The rebuild really was checkpoint + WAL slice: a checkpoint existed
        // (cadence 3) and the tail past it was replayed.
        assert!(report.snapshot_seq > 0, "expected a checkpoint base");
        assert_eq!(
            report.snapshot_seq + report.replayed_updates,
            report.parent_seq
        );
        fleet.apply_batch(tail);
        assert_eq!(sorted_bits(fleet.dense_subgraphs()), want);
        assert_eq!(fleet.stats().updates, updates.len() as u64);
        // The parent's directory is retired; the children's exist.
        assert!(!recovery::shard_dir(&dir, report.parent_engine).exists());
        assert!(recovery::shard_dir(&dir, report.child_engines.0).exists());
        assert!(recovery::shard_dir(&dir, report.child_engines.1).exists());

        // Crash + reopen: the manifest's refined topology recovers all three
        // shards and the identical answer.
        drop(fleet);
        let reopened = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(),
        )
        .unwrap();
        assert_eq!(reopened.n_shards(), 3);
        assert_eq!(reopened.recovery_reports().len(), 3);
        assert_eq!(sorted_bits(reopened.dense_subgraphs()), want);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn split_rejects_unknown_slots() {
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        assert!(matches!(
            fleet.split_shard(7),
            Err(RebalanceError::UnknownShard(7))
        ));
        assert_eq!(fleet.n_shards(), 2);
    }

    #[test]
    fn in_memory_merge_is_the_splits_inverse() {
        let updates = skewed_updates();
        let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        reference.apply_batch(&updates);
        let want = sorted_bits(reference.dense_subgraphs());

        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        let third = updates.len() / 3;
        fleet.apply_batch(&updates[..third]);
        let split = fleet.split_shard(0).unwrap();
        fleet.apply_batch(&updates[third..2 * third]);
        let mut phases = Vec::new();
        let report = fleet
            .merge_shards_with(split.new_slot, 0, |p| phases.push(p))
            .unwrap();
        assert_eq!(
            phases,
            vec![
                MergePhase::Parked,
                MergePhase::Rebuilt,
                MergePhase::Committed
            ]
        );
        assert_eq!(report.slot, 0);
        assert_eq!(report.freed_slot, 2);
        assert_eq!(report.moved_slot, None);
        assert_eq!(report.merged_seq, report.child_seqs.0 + report.child_seqs.1);
        assert_eq!(report.generation, 2);
        assert_eq!(fleet.n_shards(), 2);
        fleet.apply_batch(&updates[2 * third..]);
        fleet.validate().unwrap();
        assert_eq!(sorted_bits(fleet.dense_subgraphs()), want);
        // The ledger survives the round trip: every update counted once.
        assert_eq!(fleet.stats().updates, updates.len() as u64);
        assert_eq!(fleet.view().per_shard_seq().len(), 2);
        // Pollers of the merged slot resync (its delta ring restarted empty
        // at the merge point); the untouched slot's ring is unaffected.
        assert_eq!(
            fleet
                .view()
                .deltas_since(0, report.merged_seq.saturating_sub(1)),
            crate::view::DeltaCatchUp::Resync
        );
    }

    #[test]
    fn merge_renumbers_the_displaced_last_slot() {
        let updates = skewed_updates();
        let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        reference.apply_batch(&updates);
        let want = sorted_bits(reference.dense_subgraphs());

        // Split both base slots: workers 0..=3 with sibling pairs (0, 2)
        // and (1, 3). Merging (0, 2) frees the middle slot 2, so worker 3
        // is renumbered into it without a respawn.
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        let (head, tail) = updates.split_at(updates.len() / 2);
        fleet.apply_batch(head);
        fleet.split_shard(0).unwrap();
        fleet.split_shard(1).unwrap();
        assert_eq!(fleet.n_shards(), 4);
        let report = fleet.merge_shards(0, 2).unwrap();
        assert_eq!(report.moved_slot, Some(3));
        assert_eq!(fleet.n_shards(), 3);
        // The moved worker keeps applying updates under its new number.
        fleet.apply_batch(tail);
        fleet.flush();
        fleet.validate().unwrap();
        assert_eq!(sorted_bits(fleet.dense_subgraphs()), want);
        assert_eq!(fleet.stats().updates, updates.len() as u64);
        // Ingest routed to the renumbered slot reaches it: slot 2 now owns
        // the slice worker 3 served (residue 3 mod 4 under the map).
        let depths = fleet.queue_depths();
        assert_eq!(depths.len(), 3);
        assert_eq!(fleet.queue_depths(), vec![0, 0, 0]);
    }

    #[test]
    fn merge_rejects_non_sibling_pairs() {
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        assert!(matches!(
            fleet.merge_shards(0, 1),
            Err(RebalanceError::NotSiblings(0, 1))
        ));
        assert_eq!(fleet.n_shards(), 2);
    }

    #[test]
    fn persistent_merge_commits_durably() {
        let dir = std::env::temp_dir().join(format!("dyndens-merge-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(3)
        };
        let updates = skewed_updates();
        let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        reference.apply_batch(&updates);
        let want = sorted_bits(reference.dense_subgraphs());

        let mut fleet = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(),
        )
        .unwrap();
        let (head, tail) = updates.split_at(updates.len() / 2);
        for chunk in head.chunks(4) {
            fleet.apply_batch(chunk);
            fleet.flush();
        }
        let split = fleet.split_shard(0).unwrap();
        let report = fleet.merge_shards(0, split.new_slot).unwrap();
        assert_eq!(report.child_engines, split.child_engines);
        fleet.apply_batch(tail);
        assert_eq!(sorted_bits(fleet.dense_subgraphs()), want);
        // The children's directories are retired; the merged one exists.
        assert!(!recovery::shard_dir(&dir, report.child_engines.0).exists());
        assert!(!recovery::shard_dir(&dir, report.child_engines.1).exists());
        assert!(recovery::shard_dir(&dir, report.merged_engine).exists());

        // Crash + reopen: the manifest's coarsened topology recovers two
        // shards and the identical answer.
        drop(fleet);
        let reopened = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(),
        )
        .unwrap();
        assert_eq!(reopened.n_shards(), 2);
        assert_eq!(sorted_bits(reopened.dense_subgraphs()), want);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebalancer_merges_cold_siblings() {
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        fleet.split_shard(0).unwrap();
        assert_eq!(fleet.n_shards(), 3);
        let mut rebalancer = Rebalancer::new(RebalancePolicy {
            min_queue_depth: u64::MAX,
            min_share: 1.0,
            min_total_updates: 10,
            merge_max_queue_depth: 16,
            merge_max_share: 0.1,
        });
        // First call only establishes the cold window.
        assert_eq!(rebalancer.pick_merge(&fleet), None, "no window yet");
        // An idle fleet must not merge: cold is indistinguishable from dead.
        assert_eq!(rebalancer.pick_merge(&fleet), None, "idle fleet");

        // All traffic lands on slot 1; the siblings (0, 2) sit cold.
        let updates: Vec<EdgeUpdate> = (0..40).map(|i| update(1, 5 + 2 * (i % 5), 0.1)).collect();
        fleet.apply_batch(&updates);
        fleet.flush();
        assert_eq!(rebalancer.pick_merge(&fleet), Some((0, 2)));
        // Each pick consumes the window, so feed another hot round before
        // letting the driver act on the signal.
        fleet.apply_batch(&updates);
        fleet.flush();
        let report = rebalancer.maybe_merge(&mut fleet).unwrap().unwrap();
        assert_eq!((report.slot, report.freed_slot), (0, 2));
        assert_eq!(fleet.n_shards(), 2);
        // The topology change resets the window; no further merge fires.
        assert_eq!(rebalancer.pick_merge(&fleet), None);
    }

    #[test]
    fn rebalancer_picks_the_skewed_shard_by_rate() {
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        let mut relaxed = Rebalancer::new(RebalancePolicy {
            min_queue_depth: u64::MAX,
            min_share: 0.9,
            min_total_updates: 10,
            ..RebalancePolicy::default()
        });
        // The first pick only establishes the share window.
        assert_eq!(relaxed.pick(&fleet), None, "no window yet");

        // Everything in this window lands on slot 0.
        let updates: Vec<EdgeUpdate> = (0..40).map(|i| update(0, 2 + 2 * (i % 5), 0.1)).collect();
        fleet.apply_batch(&updates);
        fleet.flush();
        let mut strict = Rebalancer::default();
        strict.pick(&fleet); // establish the strict window too
        assert_eq!(strict.pick(&fleet), None, "below the default thresholds");
        let report = relaxed.maybe_split(&mut fleet).unwrap().unwrap();
        assert_eq!(report.slot, 0);
        assert_eq!(fleet.n_shards(), 3);

        // The split invalidated the window (slot count changed) and child
        // zero adopted the parent's cumulative ledger: the rate-based signal
        // must NOT keep splitting the historically-hot slot while the fleet
        // is now idle.
        assert_eq!(relaxed.pick(&fleet), None, "topology change resets window");
        assert_eq!(relaxed.pick(&fleet), None, "idle fleet stays un-split");

        // But fresh skew inside a new window fires again.
        let more: Vec<EdgeUpdate> = (0..40).map(|i| update(1, 3 + 2 * (i % 5), 0.1)).collect();
        fleet.apply_batch(&more);
        fleet.flush();
        assert_eq!(relaxed.pick(&fleet), Some(1));
    }
}
