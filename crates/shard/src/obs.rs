//! Internal instrumentation bundles: pre-registered metric handles for the
//! shard subsystem's hot paths.
//!
//! All registration (name interning, label formatting) happens once, at
//! worker spawn or at a slot renumber; the hot paths then touch only the
//! `Arc`'d atomic handles inside these bundles. Every site is gated on the
//! deployment's [`ObsHandle`](dyndens_obs::ObsHandle) being enabled, so the
//! uninstrumented fast path stays a branch on `None`.

use std::sync::Arc;
use std::time::Duration;

use dyndens_core::EngineStats;
use dyndens_obs::{names, Counter, Gauge, Histogram, ObsEvent, Registry};

/// One row of the engine-gauge table: a metric name plus the `EngineStats`
/// field it mirrors.
type EngineGaugeRow = (&'static str, fn(&EngineStats) -> u64);

/// Per-shard gauges mirroring every [`EngineStats`] counter into the
/// registry, name-for-name. Destructuring in `set_from` would not survive a
/// field addition silently, so the table is the single list to extend.
const ENGINE_GAUGES: &[EngineGaugeRow] = &[
    ("dyndens_engine_updates", |s| s.updates),
    ("dyndens_engine_positive_updates", |s| s.positive_updates),
    ("dyndens_engine_negative_updates", |s| s.negative_updates),
    ("dyndens_engine_explorations", |s| s.explorations),
    ("dyndens_engine_cheap_explorations", |s| {
        s.cheap_explorations
    }),
    ("dyndens_engine_candidates_examined", |s| {
        s.candidates_examined
    }),
    ("dyndens_engine_subgraphs_inserted", |s| {
        s.subgraphs_inserted
    }),
    ("dyndens_engine_subgraphs_evicted", |s| s.subgraphs_evicted),
    ("dyndens_engine_explore_all_invocations", |s| {
        s.explore_all_invocations
    }),
    ("dyndens_engine_star_markers_created", |s| {
        s.star_markers_created
    }),
    ("dyndens_engine_star_markers_removed", |s| {
        s.star_markers_removed
    }),
    ("dyndens_engine_max_explore_skips", |s| s.max_explore_skips),
    ("dyndens_engine_degree_prioritize_skips", |s| {
        s.degree_prioritize_skips
    }),
];

/// A worker's pre-registered handles: batch/apply metrics plus the engine
/// gauge block. Rebuilt (cheaply) if a merge renumbers the worker's slot.
#[derive(Debug)]
pub(crate) struct ShardObs {
    pub registry: Arc<Registry>,
    pub slot: u32,
    batches: Counter,
    updates: Counter,
    apply_us: Histogram,
    batch_size: Histogram,
    checkpoints: Counter,
    checkpoint_us: Histogram,
    checkpoint_bytes: Gauge,
    engine_gauges: Vec<Gauge>,
}

impl ShardObs {
    pub(crate) fn for_slot(registry: &Arc<Registry>, slot: u32) -> Self {
        let label = slot.to_string();
        let labels: &[(&str, &str)] = &[("shard", label.as_str())];
        ShardObs {
            registry: Arc::clone(registry),
            slot,
            batches: registry.counter(names::SHARD_BATCHES_APPLIED_TOTAL, labels),
            updates: registry.counter(names::SHARD_UPDATES_APPLIED_TOTAL, labels),
            apply_us: registry.histogram(names::SHARD_APPLY_LATENCY_US, labels),
            batch_size: registry.histogram(names::SHARD_BATCH_SIZE, labels),
            checkpoints: registry.counter(names::CHECKPOINTS_TOTAL, labels),
            checkpoint_us: registry.histogram(names::CHECKPOINT_LATENCY_US, labels),
            checkpoint_bytes: registry.gauge(names::CHECKPOINT_BYTES, labels),
            engine_gauges: ENGINE_GAUGES
                .iter()
                .map(|(name, _)| registry.gauge(name, labels))
                .collect(),
        }
    }

    /// Records one applied micro-batch: counters, latency/size histograms
    /// and a chatty `WorkerBatch` journal record.
    pub(crate) fn record_batch(&self, batch: usize, apply: Duration) {
        let apply_us = apply.as_micros().min(u64::MAX as u128) as u64;
        self.batches.inc();
        self.updates.add(batch as u64);
        self.apply_us.record(apply_us);
        self.batch_size.record(batch as u64);
        self.registry.emit(ObsEvent::WorkerBatch {
            shard: self.slot,
            batch: batch.min(u32::MAX as usize) as u32,
            apply_us,
        });
    }

    /// Records one engine checkpoint written to disk.
    pub(crate) fn record_checkpoint(&self, seq: u64, bytes: u64, elapsed: Duration) {
        self.checkpoints.inc();
        self.checkpoint_us.record_micros(elapsed);
        self.checkpoint_bytes.set(bytes);
        self.registry.emit(ObsEvent::Checkpoint {
            shard: self.slot,
            seq,
            bytes,
        });
    }

    /// Mirrors the engine's merged-ready counters into per-shard gauges.
    pub(crate) fn set_engine_gauges(&self, stats: &EngineStats) {
        for ((_, extract), gauge) in ENGINE_GAUGES.iter().zip(&self.engine_gauges) {
            gauge.set(extract(stats));
        }
    }
}

/// The WAL writer's pre-registered handles.
#[derive(Debug)]
pub(crate) struct WalObs {
    pub registry: Arc<Registry>,
    pub slot: u32,
    pub appends: Counter,
    pub append_bytes: Counter,
    pub append_us: Histogram,
    pub fsyncs: Counter,
    pub fsync_us: Histogram,
    pub rotations: Counter,
    pub segments_pruned: Counter,
    pub segments: Gauge,
    pub segment_bytes: Gauge,
}

impl WalObs {
    pub(crate) fn for_slot(registry: &Arc<Registry>, slot: u32) -> Self {
        let label = slot.to_string();
        let labels: &[(&str, &str)] = &[("shard", label.as_str())];
        WalObs {
            registry: Arc::clone(registry),
            slot,
            appends: registry.counter(names::WAL_APPENDS_TOTAL, labels),
            append_bytes: registry.counter(names::WAL_APPEND_BYTES_TOTAL, labels),
            append_us: registry.histogram(names::WAL_APPEND_LATENCY_US, labels),
            fsyncs: registry.counter(names::WAL_FSYNCS_TOTAL, labels),
            fsync_us: registry.histogram(names::WAL_FSYNC_LATENCY_US, labels),
            rotations: registry.counter(names::WAL_ROTATIONS_TOTAL, labels),
            segments_pruned: registry.counter(names::WAL_SEGMENTS_PRUNED_TOTAL, labels),
            segments: registry.gauge(names::WAL_SEGMENTS, labels),
            segment_bytes: registry.gauge(names::WAL_SEGMENT_BYTES, labels),
        }
    }
}
