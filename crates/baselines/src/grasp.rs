//! A Greedy Randomized Adaptive Search Procedure (GRASP) for dense subgraphs,
//! adapted to the streaming Engagement setting (Section 5.2 of the paper).
//!
//! The original procedure targets large quasi-cliques in unweighted graphs.
//! Each iteration has two phases:
//!
//! 1. **Construction** — grow a vertex set greedily but with randomisation:
//!    at every step the candidate vertices are ranked by how much weight they
//!    add to the current set, a restricted candidate list (RCL) keeps those
//!    within `alpha` of the best, and a random RCL member is added, as long as
//!    the set stays dense and within the cardinality budget.
//! 2. **Local search** — attempt single-vertex swaps that increase the score
//!    while keeping the set dense.
//!
//! Unlike DynDens, GRASP discovers *some* dense subgraphs per invocation; to
//! use it for Engagement it is re-run (`iterations` times) after every edge
//! weight update and the subgraphs it discovers (plus their dense subsets) are
//! accumulated. The benchmark harness measures its recall against the exact
//! answer, reproducing Figures 4(h) and 4(i).

use dyndens_density::{DensityMeasure, ThresholdFamily};
use dyndens_graph::{DynamicGraph, EdgeUpdate, FxHashSet, VertexId, VertexSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the GRASP baseline.
#[derive(Debug, Clone)]
pub struct GraspConfig {
    /// Number of construction + local-search iterations per update.
    pub iterations_per_update: usize,
    /// Greediness / randomness trade-off in `[0, 1]`: `0` is purely greedy,
    /// `1` is purely random. The paper uses `0.5`.
    pub alpha: f64,
    /// Maximum cardinality of reported subgraphs.
    pub n_max: usize,
    /// RNG seed (the procedure is randomised; a fixed seed keeps benchmarks
    /// reproducible).
    pub seed: u64,
}

impl Default for GraspConfig {
    fn default() -> Self {
        GraspConfig {
            iterations_per_update: 4,
            alpha: 0.5,
            n_max: 5,
            seed: 42,
        }
    }
}

/// The GRASP baseline engine: maintains the graph, and accumulates the dense
/// subgraphs discovered by repeated randomised searches.
#[derive(Debug, Clone)]
pub struct Grasp<D: DensityMeasure> {
    graph: DynamicGraph,
    thresholds: ThresholdFamily<D>,
    config: GraspConfig,
    rng: StdRng,
    found: FxHashSet<VertexSet>,
}

impl<D: DensityMeasure> Grasp<D> {
    /// Creates a GRASP engine reporting subgraphs with density at least
    /// `threshold` under `measure`.
    pub fn new(measure: D, threshold: f64, config: GraspConfig) -> Self {
        // GRASP does not need the T_n family; we reuse ThresholdFamily with a
        // tiny delta_it purely for its output-density checks.
        let thresholds =
            ThresholdFamily::with_delta_it_fraction(measure, threshold, config.n_max, 0.01);
        let rng = StdRng::seed_from_u64(config.seed);
        Grasp {
            graph: DynamicGraph::new(),
            thresholds,
            config,
            rng,
            found: FxHashSet::default(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The accumulated set of discovered output-dense subgraphs.
    pub fn found(&self) -> &FxHashSet<VertexSet> {
        &self.found
    }

    /// Applies an edge weight update and runs the configured number of GRASP
    /// iterations seeded at the updated edge. Returns the number of *new*
    /// output-dense subgraphs discovered.
    pub fn apply_update(&mut self, update: EdgeUpdate) -> usize {
        self.graph.apply_update(&update);
        // Discoveries that are no longer dense are dropped lazily here so the
        // accumulated set reflects the current graph.
        self.prune_stale();
        if update.delta <= 0.0 {
            return 0;
        }
        let mut new = 0;
        for _ in 0..self.config.iterations_per_update {
            if let Some(set) = self.construct(update.a, update.b) {
                let improved = self.local_search(set);
                new += self.record_with_subsets(&improved);
            }
        }
        new
    }

    /// Runs `iterations` stand-alone searches from random seed edges (used for
    /// offline recall measurements).
    pub fn search(&mut self, iterations: usize) -> usize {
        let edges: Vec<(VertexId, VertexId)> = self.graph.edges().map(|(a, b, _)| (a, b)).collect();
        if edges.is_empty() {
            return 0;
        }
        let mut new = 0;
        for _ in 0..iterations {
            let (a, b) = edges[self.rng.gen_range(0..edges.len())];
            if let Some(set) = self.construct(a, b) {
                let improved = self.local_search(set);
                new += self.record_with_subsets(&improved);
            }
        }
        new
    }

    /// Construction phase: grow a subgraph starting from the seed edge.
    fn construct(&mut self, a: VertexId, b: VertexId) -> Option<VertexSet> {
        if self.graph.weight(a, b) <= 0.0 {
            return None;
        }
        let mut set = VertexSet::pair(a, b);
        let mut score = self.graph.weight(a, b);
        loop {
            if set.len() >= self.config.n_max {
                break;
            }
            let gamma = self.graph.neighborhood_scores(&set);
            let candidates: Vec<(VertexId, f64)> = gamma
                .iter()
                .filter(|(&v, _)| !set.contains(v))
                .map(|(&v, &g)| (v, g))
                .filter(|&(_, g)| self.thresholds.is_output_dense(score + g, set.len() + 1))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let best = candidates.iter().map(|&(_, g)| g).fold(f64::MIN, f64::max);
            let worst = candidates.iter().map(|&(_, g)| g).fold(f64::MAX, f64::min);
            let cutoff = best - self.config.alpha * (best - worst);
            let rcl: Vec<(VertexId, f64)> = candidates
                .into_iter()
                .filter(|&(_, g)| g >= cutoff)
                .collect();
            let (chosen, gain) = rcl[self.rng.gen_range(0..rcl.len())];
            set.insert(chosen);
            score += gain;
        }
        if self.thresholds.is_output_dense(score, set.len()) && set.len() >= 2 {
            Some(set)
        } else {
            None
        }
    }

    /// Local search: single-vertex swaps that increase the score while
    /// preserving output-density.
    fn local_search(&mut self, mut set: VertexSet) -> VertexSet {
        let mut improved = true;
        while improved {
            improved = false;
            let score = self.graph.score(&set);
            let members: Vec<VertexId> = set.iter().collect();
            'swap: for &out in &members {
                let without = set.without(out);
                let without_score = score - self.graph.degree_into(out, &without);
                let gamma = self.graph.neighborhood_scores(&without);
                for (&inp, &gain) in &gamma {
                    if set.contains(inp) {
                        continue;
                    }
                    let new_score = without_score + gain;
                    if new_score > score + 1e-12
                        && self.thresholds.is_output_dense(new_score, set.len())
                    {
                        set = without.with(inp);
                        improved = true;
                        break 'swap;
                    }
                }
            }
        }
        set
    }

    /// Records a discovered subgraph together with its output-dense subsets
    /// (the Engagement answer includes every dense subset, not just the
    /// largest one found). Returns how many of them were new.
    fn record_with_subsets(&mut self, set: &VertexSet) -> usize {
        let members: Vec<VertexId> = set.iter().collect();
        let mut new = 0;
        let mut current = Vec::new();
        self.record_subsets(&members, 0, &mut current, &mut new);
        new
    }

    fn record_subsets(
        &mut self,
        members: &[VertexId],
        start: usize,
        current: &mut Vec<VertexId>,
        new: &mut usize,
    ) {
        if current.len() >= 2 && current.len() <= self.config.n_max {
            let candidate = VertexSet::from_vertices(current.iter().copied());
            let score = self.graph.score(&candidate);
            if self.thresholds.is_output_dense(score, candidate.len())
                && self.found.insert(candidate)
            {
                *new += 1;
            }
        }
        if current.len() == self.config.n_max {
            return;
        }
        for i in start..members.len() {
            current.push(members[i]);
            self.record_subsets(members, i + 1, current, new);
            current.pop();
        }
    }

    fn prune_stale(&mut self) {
        let graph = &self.graph;
        let thresholds = &self.thresholds;
        self.found
            .retain(|set| thresholds.is_output_dense(graph.score(set), set.len()));
    }

    /// Recall of the accumulated discoveries against an exact answer
    /// (typically produced by DynDens or the brute-force oracle), ignoring
    /// disconnected subgraphs which GRASP by construction cannot produce.
    pub fn recall_against(&self, truth: &[VertexSet]) -> f64 {
        let relevant: Vec<&VertexSet> = truth
            .iter()
            .filter(|s| self.graph.is_connected(s))
            .collect();
        if relevant.is_empty() {
            return 1.0;
        }
        let hit = relevant.iter().filter(|s| self.found.contains(**s)).count();
        hit as f64 / relevant.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use dyndens_density::AvgWeight;

    fn clique_updates(members: &[u32], w: f64) -> Vec<EdgeUpdate> {
        let mut v = Vec::new();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                v.push(EdgeUpdate::new(VertexId(a), VertexId(b), w));
            }
        }
        v
    }

    #[test]
    fn finds_a_planted_clique() {
        let mut grasp = Grasp::new(
            AvgWeight,
            1.0,
            GraspConfig {
                n_max: 4,
                ..Default::default()
            },
        );
        for u in clique_updates(&[0, 1, 2, 3], 1.5) {
            grasp.apply_update(u);
        }
        // The full clique and all its subsets are output-dense.
        assert!(grasp.found().contains(&VertexSet::from_ids(&[0, 1, 2, 3])));
        assert!(grasp.found().contains(&VertexSet::from_ids(&[0, 2])));
    }

    #[test]
    fn precision_is_perfect() {
        // Everything GRASP reports must genuinely be output-dense.
        let mut grasp = Grasp::new(
            AvgWeight,
            0.9,
            GraspConfig {
                n_max: 4,
                ..Default::default()
            },
        );
        let mut updates = clique_updates(&[0, 1, 2], 1.2);
        updates.extend(clique_updates(&[3, 4, 5, 6], 0.95));
        updates.push(EdgeUpdate::new(VertexId(2), VertexId(3), 0.4));
        for u in updates {
            grasp.apply_update(u);
        }
        let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 0.9, 4, 0.01);
        for set in grasp.found() {
            let score = grasp.graph().score(set);
            assert!(
                fam.is_output_dense(score, set.len()),
                "false positive {set}"
            );
        }
    }

    #[test]
    fn recall_improves_with_more_iterations() {
        let build = |iters: usize| {
            let mut grasp = Grasp::new(
                AvgWeight,
                0.9,
                GraspConfig {
                    iterations_per_update: iters,
                    n_max: 4,
                    alpha: 0.5,
                    seed: 11,
                },
            );
            let mut updates = clique_updates(&[0, 1, 2, 3], 1.0);
            updates.extend(clique_updates(&[2, 4, 5], 1.1));
            updates.extend(clique_updates(&[6, 7, 8], 0.95));
            for u in updates {
                grasp.apply_update(u);
            }
            grasp
        };
        let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 0.9, 4, 0.01);
        let sparse_run = build(1);
        let heavy_run = build(16);
        let truth: Vec<VertexSet> = BruteForce::output_dense_subgraphs(sparse_run.graph(), &fam)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let r1 = sparse_run.recall_against(&truth);
        let r2 = heavy_run.recall_against(&truth);
        assert!(
            r2 >= r1,
            "recall should not degrade with more iterations ({r1} vs {r2})"
        );
        assert!(r2 > 0.5);
    }

    #[test]
    fn negative_updates_prune_stale_discoveries() {
        let mut grasp = Grasp::new(
            AvgWeight,
            1.0,
            GraspConfig {
                n_max: 3,
                ..Default::default()
            },
        );
        for u in clique_updates(&[0, 1, 2], 1.2) {
            grasp.apply_update(u);
        }
        assert!(grasp.found().contains(&VertexSet::from_ids(&[0, 1, 2])));
        grasp.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), -1.0));
        assert!(!grasp.found().contains(&VertexSet::from_ids(&[0, 1, 2])));
    }

    #[test]
    fn offline_search_discovers_subgraphs() {
        let mut grasp = Grasp::new(
            AvgWeight,
            1.0,
            GraspConfig {
                n_max: 4,
                ..Default::default()
            },
        );
        // Load the graph without running per-update searches (negative deltas
        // first so apply_update skips the search, then raise them).
        for u in clique_updates(&[0, 1, 2, 3], 1.5) {
            grasp.graph.apply_update(&u);
        }
        assert!(grasp.found().is_empty());
        let found = grasp.search(20);
        assert!(found > 0);
        assert!(grasp.found().contains(&VertexSet::from_ids(&[0, 1, 2, 3])));
        // Searching an empty graph is a no-op.
        let mut empty = Grasp::new(AvgWeight, 1.0, GraspConfig::default());
        assert_eq!(empty.search(5), 0);
    }
}
