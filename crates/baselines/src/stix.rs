//! Incremental maintenance of all maximal cliques in a dynamic unweighted
//! graph, in the spirit of the Stix algorithm (Section 5.2 of the paper).
//!
//! The paper compares DynDens (configured with `AvgWeight`, `T = 1` on an
//! unweighted graph, i.e. maintaining *all* cliques up to `Nmax`) against an
//! algorithm that maintains *maximal* cliques of unconstrained cardinality
//! under edge insertions and deletions. This module implements that baseline
//! from scratch:
//!
//! * on **edge insertion** `(u, v)`, every new maximal clique containing the
//!   edge has the form `(C ∩ N(v)) ∪ {u, v}` for some previous maximal clique
//!   `C` containing `u` (or symmetrically `v`); candidates are generated that
//!   way, filtered for maximality, and previous cliques that became
//!   non-maximal are discarded;
//! * on **edge deletion**, every clique containing both endpoints is split
//!   into its two "one endpoint removed" halves, which are retained only if
//!   still maximal.
//!
//! Correctness is validated against a Bron–Kerbosch oracle in the tests and in
//! the integration suite.

use dyndens_graph::{DynamicGraph, FxHashMap, FxHashSet, VertexId, VertexSet};

/// Maintains the set of all maximal cliques (of cardinality `>= 2`) of an
/// unweighted dynamic graph.
#[derive(Debug, Clone, Default)]
pub struct StixCliques {
    graph: DynamicGraph,
    /// All maximal cliques, keyed by an arbitrary id.
    cliques: FxHashMap<u64, VertexSet>,
    /// For every vertex, the ids of the maximal cliques containing it.
    member_of: FxHashMap<VertexId, FxHashSet<u64>>,
    next_id: u64,
}

impl StixCliques {
    /// Creates an empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying unweighted graph (edge present iff weight `> 0`).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Number of maximal cliques currently maintained.
    pub fn clique_count(&self) -> usize {
        self.cliques.len()
    }

    /// The current set of maximal cliques (sorted for deterministic output).
    pub fn cliques(&self) -> Vec<VertexSet> {
        let mut v: Vec<VertexSet> = self.cliques.values().cloned().collect();
        v.sort();
        v
    }

    /// Inserts the edge `(u, v)`. No-op if the edge already exists.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v || self.graph.weight(u, v) > 0.0 {
            return;
        }
        self.graph.set_weight(u, v, 1.0);

        // Candidate new cliques: extend the intersection of an existing clique
        // around one endpoint with the other endpoint's neighbourhood.
        let mut candidates: FxHashSet<VertexSet> = FxHashSet::default();
        for (anchor, other) in [(u, v), (v, u)] {
            let clique_ids: Vec<u64> = self
                .member_of
                .get(&anchor)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            if clique_ids.is_empty() {
                candidates.insert(VertexSet::pair(u, v));
            }
            for id in clique_ids {
                let clique = &self.cliques[&id];
                let mut base: Vec<VertexId> = clique
                    .iter()
                    .filter(|&w| w != anchor && self.graph.weight(w, other) > 0.0)
                    .collect();
                base.push(u);
                base.push(v);
                candidates.insert(VertexSet::from_vertices(base));
            }
        }
        if candidates.is_empty() {
            candidates.insert(VertexSet::pair(u, v));
        }

        // Keep only candidates that are maximal: not contained in another
        // candidate and not extendable... candidates built from maximal
        // cliques are maximal unless contained in another candidate or in an
        // existing clique (possible when u and v already share a clique
        // context through different anchors).
        let candidate_vec: Vec<VertexSet> = candidates.into_iter().collect();
        let mut new_cliques: Vec<VertexSet> = Vec::new();
        'outer: for (i, cand) in candidate_vec.iter().enumerate() {
            for (j, other) in candidate_vec.iter().enumerate() {
                if i != j && cand.is_subset_of(other) && (cand != other || i > j) {
                    continue 'outer;
                }
            }
            // Also drop candidates already covered by an existing clique.
            if self.contained_in_existing(cand) {
                continue;
            }
            new_cliques.push(cand.clone());
        }

        // Existing cliques that became non-maximal (subsets of a new clique)
        // are removed.
        let mut to_remove: Vec<u64> = Vec::new();
        for new_clique in &new_cliques {
            // Only cliques sharing a vertex with the new clique can be subsumed.
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            for w in new_clique.iter() {
                if let Some(ids) = self.member_of.get(&w) {
                    for &id in ids {
                        if seen.insert(id) && self.cliques[&id].is_subset_of(new_clique) {
                            to_remove.push(id);
                        }
                    }
                }
            }
        }
        for id in to_remove {
            self.remove_clique(id);
        }
        for clique in new_cliques {
            self.add_clique(clique);
        }
    }

    /// Deletes the edge `(u, v)`. No-op if the edge does not exist.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v || self.graph.weight(u, v) <= 0.0 {
            return;
        }
        self.graph.set_weight(u, v, 0.0);

        let affected: Vec<u64> = self
            .member_of
            .get(&u)
            .map(|s| {
                s.iter()
                    .copied()
                    .filter(|id| self.cliques[id].contains(v))
                    .collect()
            })
            .unwrap_or_default();
        let mut candidates: Vec<VertexSet> = Vec::new();
        for id in affected {
            let clique = self.cliques[&id].clone();
            self.remove_clique(id);
            for drop in [u, v] {
                let half = clique.without(drop);
                if half.len() >= 2 {
                    candidates.push(half);
                }
            }
        }
        // Retain candidate halves that are still maximal.
        for cand in candidates {
            if !self.contained_in_existing(&cand) && !self.is_extendable(&cand) {
                self.add_clique(cand);
            }
        }
    }

    /// Applies an unweighted interpretation of a signed update: positive delta
    /// inserts the edge, non-positive delta deletes it.
    pub fn apply_unweighted_update(&mut self, u: VertexId, v: VertexId, positive: bool) {
        if positive {
            self.insert_edge(u, v);
        } else {
            self.delete_edge(u, v);
        }
    }

    fn contained_in_existing(&self, set: &VertexSet) -> bool {
        let Some(first) = set.as_slice().first() else {
            return false;
        };
        let Some(ids) = self.member_of.get(first) else {
            return false;
        };
        ids.iter()
            .any(|id| set.is_subset_of(&self.cliques[id]) && &self.cliques[id] != set)
            || ids.iter().any(|id| &self.cliques[id] == set)
    }

    /// `true` if some vertex outside `set` is adjacent to every member of
    /// `set` (i.e. `set` is not maximal).
    fn is_extendable(&self, set: &VertexSet) -> bool {
        let Some(first) = set.as_slice().first() else {
            return false;
        };
        for (cand, _) in self.graph.neighbors(*first) {
            if set.contains(cand) {
                continue;
            }
            if set.iter().all(|w| self.graph.weight(w, cand) > 0.0) {
                return true;
            }
        }
        false
    }

    fn add_clique(&mut self, clique: VertexSet) {
        let id = self.next_id;
        self.next_id += 1;
        for v in clique.iter() {
            self.member_of.entry(v).or_default().insert(id);
        }
        self.cliques.insert(id, clique);
    }

    fn remove_clique(&mut self, id: u64) {
        if let Some(clique) = self.cliques.remove(&id) {
            for v in clique.iter() {
                if let Some(set) = self.member_of.get_mut(&v) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.member_of.remove(&v);
                    }
                }
            }
        }
    }

    /// Enumerates all cliques (not just maximal ones) of cardinality
    /// `2..=n_max` by expanding the maintained maximal cliques. This is the
    /// post-processing step the paper describes as necessary to use a maximal
    /// clique maintainer for Engagement (whose output are *all* cliques under
    /// a cardinality constraint).
    pub fn all_cliques_up_to(&self, n_max: usize) -> Vec<VertexSet> {
        let mut out: FxHashSet<VertexSet> = FxHashSet::default();
        for clique in self.cliques.values() {
            let members: Vec<VertexId> = clique.iter().collect();
            let mut current = Vec::new();
            Self::subsets(&members, 0, &mut current, n_max, &mut out);
        }
        let mut v: Vec<VertexSet> = out.into_iter().collect();
        v.sort();
        v
    }

    fn subsets(
        members: &[VertexId],
        start: usize,
        current: &mut Vec<VertexId>,
        n_max: usize,
        out: &mut FxHashSet<VertexSet>,
    ) {
        if current.len() >= 2 {
            out.insert(VertexSet::from_vertices(current.iter().copied()));
        }
        if current.len() == n_max {
            return;
        }
        for i in start..members.len() {
            current.push(members[i]);
            Self::subsets(members, i + 1, current, n_max, out);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;

    fn check_against_oracle(stix: &StixCliques) {
        let mut expected = BruteForce::maximal_cliques(stix.graph());
        expected.sort();
        assert_eq!(stix.cliques(), expected);
    }

    #[test]
    fn builds_triangle_incrementally() {
        let mut s = StixCliques::new();
        s.insert_edge(VertexId(0), VertexId(1));
        check_against_oracle(&s);
        s.insert_edge(VertexId(1), VertexId(2));
        check_against_oracle(&s);
        s.insert_edge(VertexId(0), VertexId(2));
        check_against_oracle(&s);
        assert_eq!(s.cliques(), vec![VertexSet::from_ids(&[0, 1, 2])]);
    }

    #[test]
    fn insertion_merges_overlapping_cliques() {
        let mut s = StixCliques::new();
        // Two triangles sharing the edge (1,2), then connect 0 and 3.
        for (a, b) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            s.insert_edge(VertexId(a), VertexId(b));
            check_against_oracle(&s);
        }
        s.insert_edge(VertexId(0), VertexId(3));
        check_against_oracle(&s);
        assert_eq!(s.cliques(), vec![VertexSet::from_ids(&[0, 1, 2, 3])]);
    }

    #[test]
    fn deletion_splits_cliques() {
        let mut s = StixCliques::new();
        for (a, b) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3)] {
            s.insert_edge(VertexId(a), VertexId(b));
        }
        assert_eq!(s.clique_count(), 1);
        s.delete_edge(VertexId(0), VertexId(3));
        check_against_oracle(&s);
        s.delete_edge(VertexId(1), VertexId(2));
        check_against_oracle(&s);
        s.delete_edge(VertexId(0), VertexId(1));
        check_against_oracle(&s);
    }

    #[test]
    fn duplicate_operations_are_no_ops() {
        let mut s = StixCliques::new();
        s.insert_edge(VertexId(0), VertexId(1));
        s.insert_edge(VertexId(0), VertexId(1));
        s.insert_edge(VertexId(1), VertexId(1));
        assert_eq!(s.clique_count(), 1);
        s.delete_edge(VertexId(0), VertexId(1));
        s.delete_edge(VertexId(0), VertexId(1));
        assert_eq!(s.clique_count(), 0);
        check_against_oracle(&s);
    }

    #[test]
    fn random_stream_matches_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = StixCliques::new();
        for _ in 0..300 {
            let a = rng.gen_range(0..8u32);
            let mut b = rng.gen_range(0..8u32);
            if a == b {
                b = (b + 1) % 8;
            }
            if rng.gen_bool(0.7) {
                s.insert_edge(VertexId(a), VertexId(b));
            } else {
                s.delete_edge(VertexId(a), VertexId(b));
            }
            check_against_oracle(&s);
        }
    }

    #[test]
    fn all_cliques_expansion() {
        let mut s = StixCliques::new();
        for (a, b) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            s.insert_edge(VertexId(a), VertexId(b));
        }
        let all = s.all_cliques_up_to(3);
        assert!(all.contains(&VertexSet::from_ids(&[0, 1])));
        assert!(all.contains(&VertexSet::from_ids(&[0, 1, 2])));
        assert!(all.contains(&VertexSet::from_ids(&[2, 3])));
        assert!(!all.contains(&VertexSet::from_ids(&[1, 3])));
        // With n_max = 2 the triangle itself is excluded.
        let pairs = s.all_cliques_up_to(2);
        assert!(!pairs.contains(&VertexSet::from_ids(&[0, 1, 2])));
    }
}
