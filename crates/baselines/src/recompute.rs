//! `DynDensRecompute`: rebuilding a DynDens index from scratch.
//!
//! Section 6.2 of the paper compares the incremental threshold-adjustment
//! procedure against rebuilding the index by treating every final edge weight
//! of the graph as a single positive update with the threshold already set to
//! the new value. This module provides that reference implementation; it is
//! also a convenient way to bootstrap an engine from a static graph.

use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::DensityMeasure;
use dyndens_graph::{DynamicGraph, EdgeUpdate};

/// Builds a fresh [`DynDens`] engine with the given configuration by replaying
/// every edge of `graph` (in ascending `(a, b)` order, one positive update per
/// edge). The resulting engine maintains exactly the dense subgraphs of the
/// final graph under the configured thresholds.
pub fn recompute<D: DensityMeasure>(
    measure: D,
    config: DynDensConfig,
    graph: &DynamicGraph,
) -> DynDens<D> {
    // Pre-declare the vertex universe (the paper's fixed-N data model): with
    // lazy vertex creation, a subgraph that becomes too-dense before some of
    // its future neighbours exist could not materialise those extensions at
    // explore-all time.
    let mut engine = DynDens::with_vertex_capacity(measure, config, graph.vertex_count());
    let mut edges: Vec<(u32, u32, f64)> = graph.edges().map(|(a, b, w)| (a.0, b.0, w)).collect();
    edges.sort_unstable_by_key(|x| (x.0, x.1));
    for (a, b, w) in edges {
        if w > 0.0 {
            engine.apply_update(EdgeUpdate::new(a.into(), b.into(), w));
        }
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;
    use dyndens_graph::{VertexId, VertexSet};

    #[test]
    fn recompute_matches_incremental_final_state() {
        // Build a graph incrementally with positive and negative updates, then
        // check that recomputing from the final weights yields the same
        // output-dense set.
        let config = DynDensConfig::new(0.9, 4).with_delta_it_fraction(0.4);
        let mut incremental = DynDens::new(AvgWeight, config.clone());
        let updates = [
            (0u32, 1u32, 1.0),
            (1, 2, 1.2),
            (0, 2, 0.8),
            (2, 3, 1.5),
            (0, 1, -0.4),
            (1, 3, 0.9),
            (0, 2, 0.3),
        ];
        for (a, b, d) in updates {
            incremental.apply_update(EdgeUpdate::new(VertexId(a), VertexId(b), d));
        }
        let rebuilt = recompute(AvgWeight, config, incremental.graph());

        let mut a: Vec<VertexSet> = incremental
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let mut b: Vec<VertexSet> = rebuilt
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        rebuilt.validate().unwrap();
    }

    #[test]
    fn recompute_of_empty_graph_is_empty() {
        let graph = DynamicGraph::with_vertices(4);
        let engine = recompute(AvgWeight, DynDensConfig::new(1.0, 4), &graph);
        assert_eq!(engine.dense_count(), 0);
    }
}
