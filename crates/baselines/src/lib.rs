//! # dyndens-baselines
//!
//! Baselines and oracles for the Engagement problem, used both as comparison
//! points in the benchmark harness (Section 5.2 of the paper) and as
//! correctness oracles in the test suites:
//!
//! * [`brute_force`] — exhaustive enumeration of dense subgraphs (and of
//!   maximal cliques); the ground truth for property tests.
//! * [`recompute`](mod@recompute) — `DynDensRecompute`: rebuild a DynDens index from scratch
//!   by replaying every final edge weight as an update (the reference point of
//!   the threshold-adjustment experiments, Section 6.2).
//! * [`stix`] — incremental maintenance of all maximal cliques in a dynamic
//!   unweighted graph, an adaptation of the Stix algorithm (Section 5.2).
//! * [`grasp`] — a Greedy Randomized Adaptive Search Procedure for large
//!   quasi-cliques, adapted to the streaming setting (Section 5.2).
//! * [`flow`] / [`goldberg`] — a Dinic max-flow solver and Goldberg's
//!   max-density subgraph algorithm, used for the offline Top-1 variant
//!   discussed in Section 4.2.2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brute_force;
pub mod flow;
pub mod goldberg;
pub mod grasp;
pub mod recompute;
pub mod stix;

pub use brute_force::BruteForce;
pub use goldberg::densest_subgraph;
pub use grasp::{Grasp, GraspConfig};
pub use recompute::recompute;
pub use stix::StixCliques;
