//! # dyndens-baselines
//!
//! Baselines and oracles for the Engagement problem, used both as comparison
//! points in the benchmark harness (Section 5.2 of the paper) and as
//! correctness oracles in the test suites:
//!
//! * [`brute_force`] — exhaustive enumeration of dense subgraphs (and of
//!   maximal cliques); the ground truth for property tests.
//! * [`recompute`](mod@recompute) — `DynDensRecompute`: rebuild a DynDens index from scratch
//!   by replaying every final edge weight as an update (the reference point of
//!   the threshold-adjustment experiments, Section 6.2).
//! * [`stix`] — incremental maintenance of all maximal cliques in a dynamic
//!   unweighted graph, an adaptation of the Stix algorithm (Section 5.2).
//! * [`grasp`] — a Greedy Randomized Adaptive Search Procedure for large
//!   quasi-cliques, adapted to the streaming setting (Section 5.2).
//! * [`flow`] / [`goldberg`] — a Dinic max-flow solver and Goldberg's
//!   max-density subgraph algorithm, used for the offline Top-1 variant
//!   discussed in Section 4.2.2.
//!
//! Two of the baselines are additionally packaged as pluggable
//! [`MaintenanceEngine`](dyndens_core::MaintenanceEngine) backends, runnable
//! under the full sharded/WAL/rebalance stack and the cross-backend
//! differential oracle (see `docs/BACKENDS.md`):
//!
//! * [`backend`] — [`RecomputeEngine`]: periodic full rebuild by log replay
//!   (bit-exact with DynDens at rebuild boundaries).
//! * [`topk_peeling`] — [`TopKPeelingEngine`]: read-time greedy peeling in
//!   the style of fully-dynamic top-k densest maintenance (approximate,
//!   gated on a density-ratio bound).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod brute_force;
pub mod flow;
pub mod goldberg;
pub mod grasp;
pub mod recompute;
pub mod stix;
pub mod topk_peeling;

pub use backend::{RecomputeBlueprint, RecomputeEngine};
pub use brute_force::BruteForce;
pub use goldberg::densest_subgraph;
pub use grasp::{Grasp, GraspConfig};
pub use recompute::recompute;
pub use stix::StixCliques;
pub use topk_peeling::{TopKPeelingBlueprint, TopKPeelingEngine};
