//! The `TopKPeeling` maintenance backend: fully-dynamic top-k densest
//! subgraph maintenance in the style of Nasir et al. (PAPERS.md), behind the
//! [`MaintenanceEngine`] seam.
//!
//! The engine keeps only the weighted graph during ingest (`O(1)` per
//! update) and answers reads by **greedy peeling**: per connected component,
//! repeatedly remove the vertex of minimum weighted degree, score every
//! suffix of the peeling order with cardinality in `2..=Nmax`, and extract
//! the densest suffix if it clears the output threshold — then remove its
//! vertices and repeat, up to `k` extractions per component. This is the
//! classic 2-approximation charging argument applied top-k-wise; against the
//! exact DynDens referee the extracted family is a *subset* of the exact
//! output-dense family (every extracted set has density `>= T` and
//! cardinality `<= Nmax`), so the oracle's top-k density-ratio quality
//! metric is at most 1 and the backend is gated on a declared lower bound
//! instead of bit-exactness.
//!
//! ## Determinism
//!
//! Every floating-point accumulation is canonically ordered so answers are
//! a pure function of the applied update sequence (the seam's contract, and
//! what makes a sharded deployment bit-identical to a single engine under
//! partition-aligned workloads):
//!
//! * components are discovered in ascending minimum-vertex order and peeled
//!   independently — a partition-aligned shard split never splits a
//!   component, so per-component answers survive sharding unchanged;
//! * weighted degrees are summed over the component's members in ascending
//!   vertex order (never in adjacency-map iteration order);
//! * ties in the peel choice break toward the smaller vertex id, and suffix
//!   scores come from [`DynamicGraph::score`]'s canonical summation.

use dyndens_core::{
    encode_config_params, DenseEvent, DynDensConfig, EngineBlueprint, EngineStats, EvictionReport,
    MaintenanceEngine, SnapshotError,
};
use dyndens_density::{score_meets, DensityMeasure};
use dyndens_graph::codec::{crc32, put_f64, put_u32, put_u64, verify_crc_trailer, ByteReader};
use dyndens_graph::{DynamicGraph, EdgeUpdate, FxHashMap, VertexId, VertexSet};

use crate::backend::graph_edges_below;

/// Snapshot magic for [`TopKPeelingEngine`] checkpoints (`"DDTK"`).
pub const TOPK_SNAPSHOT_MAGIC: [u8; 4] = *b"DDTK";
const TOPK_SNAPSHOT_VERSION: u32 = 1;

/// The read-time greedy-peeling backend (kind `"topk-peeling"`).
///
/// One shard's worth of state: the live weighted graph plus a peeled-answer
/// cache keyed by an update version. See the [module docs](self) for the
/// extraction rule and determinism argument.
#[derive(Debug, Clone)]
pub struct TopKPeelingEngine<D: DensityMeasure> {
    measure: D,
    config: DynDensConfig,
    k: usize,
    graph: DynamicGraph,
    stats: EngineStats,
    recovering: bool,
    version: u64,
    cache: Option<(u64, Vec<(VertexSet, f64)>)>,
}

impl<D: DensityMeasure> TopKPeelingEngine<D> {
    fn empty(measure: D, config: DynDensConfig, k: usize) -> Self {
        TopKPeelingEngine {
            measure,
            config,
            k: k.max(1),
            graph: DynamicGraph::new(),
            stats: EngineStats::default(),
            recovering: false,
            version: 0,
            cache: None,
        }
    }

    /// Connected components over positive-weight edges, each sorted
    /// ascending, in ascending minimum-vertex order.
    fn components(&self) -> Vec<Vec<VertexId>> {
        let n = self.graph.vertex_count();
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let v = VertexId(start as u32);
            if !self.graph.neighbors(v).any(|(_, w)| w > 0.0) {
                continue;
            }
            let mut component = vec![v];
            let mut stack = vec![v];
            visited[start] = true;
            while let Some(u) = stack.pop() {
                for (next, w) in self.graph.neighbors(u) {
                    if w > 0.0 && !visited[next.index()] {
                        visited[next.index()] = true;
                        component.push(next);
                        stack.push(next);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Greedily peels one component, extracting up to `k` output-dense
    /// suffixes. `members` must be sorted ascending.
    fn peel_component(&self, mut members: Vec<VertexId>, out: &mut Vec<(VertexSet, f64)>) {
        for _round in 0..self.k {
            if members.len() < 2 {
                return;
            }
            let Some((set, score)) = self.densest_suffix(&members) else {
                return;
            };
            out.push((set.clone(), score));
            members.retain(|v| !set.contains(*v));
        }
    }

    /// Runs one peeling pass over `members` (sorted ascending) and returns
    /// the densest suffix with cardinality in `2..=Nmax` that clears the
    /// output threshold, with its canonical score.
    fn densest_suffix(&self, members: &[VertexId]) -> Option<(VertexSet, f64)> {
        // Canonical weighted degrees: summed over members in ascending order.
        let mut degree: FxHashMap<VertexId, f64> = FxHashMap::default();
        for &u in members {
            let mut d = 0.0;
            for &v in members {
                if v != u {
                    d += self.graph.weight(u, v);
                }
            }
            degree.insert(u, d);
        }
        let mut working: Vec<VertexId> = members.to_vec();
        let mut best: Option<(VertexSet, f64, f64)> = None;
        loop {
            if working.len() <= self.config.n_max {
                let set = VertexSet::from_vertices(working.iter().copied());
                let score = self.graph.score(&set);
                let density = self.measure.density(score, set.len());
                let better = match &best {
                    Some((_, _, best_density)) => density > *best_density,
                    None => true,
                };
                if better {
                    best = Some((set, score, density));
                }
            }
            if working.len() <= 2 {
                break;
            }
            // Min weighted degree, ties toward the smaller id: `working`
            // stays ascending, so a strict `<` scan keeps the first minimum.
            let (peel_idx, _) = working
                .iter()
                .enumerate()
                .fold(None::<(usize, f64)>, |acc, (i, v)| {
                    let d = degree[v];
                    match acc {
                        Some((_, min)) if d >= min => acc,
                        _ => Some((i, d)),
                    }
                })
                .expect("working set is non-empty");
            let peeled = working.remove(peel_idx);
            for &v in &working {
                let w = self.graph.weight(peeled, v);
                if w != 0.0 {
                    *degree.get_mut(&v).expect("degree map covers members") -= w;
                }
            }
        }
        let (set, score, _) = best?;
        // Score-space acceptance, identical to DynDens's output-dense test:
        // every extracted set is therefore a member of the exact referee's
        // output family, which caps the oracle's quality ratio at 1.
        let bound = self.measure.s(set.len()) * self.config.threshold;
        score_meets(score, bound).then_some((set, score))
    }

    /// The cached peeled answer, recomputed when updates have arrived since
    /// the last read.
    fn answer(&mut self) -> &Vec<(VertexSet, f64)> {
        let fresh = self.cache.as_ref().map(|(v, _)| *v) != Some(self.version);
        if fresh {
            let mut out = Vec::new();
            for component in self.components() {
                self.peel_component(component, &mut out);
            }
            self.cache = Some((self.version, out));
        }
        &self.cache.as_ref().expect("cache filled above").1
    }
}

impl<D: DensityMeasure> MaintenanceEngine for TopKPeelingEngine<D> {
    fn apply_update_into(&mut self, update: EdgeUpdate, _events: &mut Vec<DenseEvent>) {
        self.graph.apply_update(&update);
        self.version += 1;
        if !self.recovering {
            self.stats.updates += 1;
            if update.is_positive() {
                self.stats.positive_updates += 1;
            } else {
                self.stats.negative_updates += 1;
            }
        }
    }

    fn output_dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)> {
        // Like `DynDens`, the output family carries *densities*; the
        // internal family below carries raw scores.
        let measure = self.measure.clone();
        self.answer()
            .iter()
            .map(|(set, score)| (set.clone(), measure.density(*score, set.len())))
            .collect()
    }

    fn dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)> {
        self.answer().clone()
    }

    fn validate(&mut self) -> Result<(), String> {
        let answer = self.answer().clone();
        let mut claimed = VertexSet::new();
        for (set, score) in &answer {
            if set.len() < 2 || set.len() > self.config.n_max {
                return Err(format!("extracted set of cardinality {}", set.len()));
            }
            let canonical = self.graph.score(set);
            if canonical.to_bits() != score.to_bits() {
                return Err(format!(
                    "stored score {score} disagrees with canonical score {canonical}"
                ));
            }
            let bound = self.measure.s(set.len()) * self.config.threshold;
            if !score_meets(*score, bound) {
                return Err(format!(
                    "extracted set has score {score} below bound {bound}"
                ));
            }
            for v in set.iter() {
                if !claimed.insert(v) {
                    return Err(format!("vertex {} extracted twice", v.0));
                }
            }
        }
        Ok(())
    }

    fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn adopt_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }

    fn set_recovering(&mut self, recovering: bool) {
        self.recovering = recovering;
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut edges: Vec<(VertexId, VertexId, f64)> = self.graph.edges().collect();
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut buf = Vec::with_capacity(64 + edges.len() * 16);
        buf.extend_from_slice(&TOPK_SNAPSHOT_MAGIC);
        put_u32(&mut buf, TOPK_SNAPSHOT_VERSION);
        put_u64(&mut buf, self.graph.vertex_count() as u64);
        self.stats.encode_into(&mut buf);
        put_u64(&mut buf, edges.len() as u64);
        for (a, b, w) in edges {
            put_u32(&mut buf, a.0);
            put_u32(&mut buf, b.0);
            put_f64(&mut buf, w);
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    fn partition_by(&self, keep: &mut dyn FnMut(VertexId) -> bool) -> (Self, Self) {
        let mut kept = TopKPeelingEngine::empty(self.measure.clone(), self.config.clone(), self.k);
        let mut other = TopKPeelingEngine::empty(self.measure.clone(), self.config.clone(), self.k);
        for (a, b, w) in self.graph.edges() {
            let child = if keep(a.min(b)) {
                &mut kept
            } else {
                &mut other
            };
            child.graph.set_weight(a, b, w);
        }
        (kept, other)
    }

    fn absorb(&mut self, other: Self) {
        for (a, b, w) in other.graph.edges() {
            self.graph.set_weight(a, b, w);
        }
        self.stats.merge(&other.stats);
        self.version += other.version + 1;
        self.cache = None;
    }

    fn edges_below(&self, min_weight: f64) -> Vec<EdgeUpdate> {
        graph_edges_below(&self.graph, min_weight)
    }

    fn evict_below(&mut self, min_weight: f64, events: &mut Vec<DenseEvent>) -> EvictionReport {
        let victims = self.edges_below(min_weight);
        let mut report = EvictionReport {
            edges_evicted: victims.len() as u64,
            weight_evicted: victims.iter().map(|u| -u.delta).sum(),
            ..EvictionReport::default()
        };
        let isolated_before = self.graph.reclaim_isolated();
        for u in victims {
            self.apply_update_into(u, events);
        }
        let isolated_after = self.graph.reclaim_isolated();
        report.vertices_orphaned = (isolated_after - isolated_before) as u64;
        report
    }
}

/// [`EngineBlueprint`] for [`TopKPeelingEngine`]: density measure, engine
/// configuration (threshold and `Nmax` bound the extraction rule) and the
/// per-component extraction budget `k`.
#[derive(Debug, Clone)]
pub struct TopKPeelingBlueprint<D: DensityMeasure> {
    measure: D,
    config: DynDensConfig,
    k: usize,
}

impl<D: DensityMeasure> TopKPeelingBlueprint<D> {
    /// A blueprint building [`TopKPeelingEngine`]s over `measure` with
    /// `config`, extracting up to `k` subgraphs per connected component
    /// (clamped to at least 1).
    pub fn new(measure: D, config: DynDensConfig, k: usize) -> Self {
        TopKPeelingBlueprint {
            measure,
            config,
            k: k.max(1),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DynDensConfig {
        &self.config
    }

    /// The per-component extraction budget.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl<D: DensityMeasure> EngineBlueprint for TopKPeelingBlueprint<D> {
    type Engine = TopKPeelingEngine<D>;

    fn kind(&self) -> &'static str {
        "topk-peeling"
    }

    fn measure_name(&self) -> &'static str {
        self.measure.name()
    }

    fn params(&self) -> Vec<u8> {
        let mut out = encode_config_params(&self.config);
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out
    }

    fn fresh(&self) -> TopKPeelingEngine<D> {
        TopKPeelingEngine::empty(self.measure.clone(), self.config.clone(), self.k)
    }

    fn restore(&self, bytes: &[u8]) -> Result<TopKPeelingEngine<D>, SnapshotError> {
        let payload = verify_crc_trailer(bytes)?;
        let mut r = ByteReader::new(payload);
        if r.take(4)? != TOPK_SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != TOPK_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let mut engine = self.fresh();
        let vertices = r.u64()? as usize;
        if vertices > 0 {
            engine.graph.ensure_vertex(VertexId(vertices as u32 - 1));
        }
        engine.stats = EngineStats::decode(&mut r)?;
        let n = r.u64()? as usize;
        for _ in 0..n {
            let a = VertexId(r.u32()?);
            let b = VertexId(r.u32()?);
            let w = r.f64()?;
            engine.graph.set_weight(a, b, w);
        }
        if !r.is_empty() {
            return Err(SnapshotError::Invalid("trailing bytes after edge list"));
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn config() -> DynDensConfig {
        DynDensConfig::new(1.0, 4).with_delta_it(0.25)
    }

    fn blueprint() -> TopKPeelingBlueprint<AvgWeight> {
        TopKPeelingBlueprint::new(AvgWeight, config(), 4)
    }

    /// Two strong triangles in one component joined by a weak bridge, plus
    /// an isolated strong pair in another component.
    fn workload() -> Vec<EdgeUpdate> {
        let mut updates = Vec::new();
        for base in [0u32, 10u32] {
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                updates.push(update(base + a, base + b, 1.25));
            }
        }
        updates.push(update(2, 10, 0.125));
        updates.push(update(20, 21, 1.375));
        updates
    }

    fn drive(engine: &mut TopKPeelingEngine<AvgWeight>, updates: &[EdgeUpdate]) {
        let mut sink = Vec::new();
        for u in updates {
            engine.apply_update_into(*u, &mut sink);
        }
    }

    fn sorted(mut sets: Vec<(VertexSet, f64)>) -> Vec<(Vec<u32>, u64)> {
        sets.sort_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
        sets.into_iter()
            .map(|(s, score)| (s.iter().map(|v| v.0).collect(), score.to_bits()))
            .collect()
    }

    #[test]
    fn extracts_disjoint_dense_suffixes_per_component() {
        let mut engine = blueprint().fresh();
        drive(&mut engine, &workload());
        let answer = engine.output_dense_subgraphs();
        engine.validate().unwrap();
        // Both triangles and the isolated pair are found despite sharing a
        // component (the bridge is too weak to merge the triangles' density).
        let sets: Vec<Vec<u32>> = sorted(answer).into_iter().map(|(s, _)| s).collect();
        assert!(sets.contains(&vec![0, 1, 2]));
        assert!(sets.contains(&vec![10, 11, 12]));
        assert!(sets.contains(&vec![20, 21]));
    }

    #[test]
    fn answers_are_a_pure_function_of_the_update_sequence() {
        let mut a = blueprint().fresh();
        let mut b = blueprint().fresh();
        drive(&mut a, &workload());
        // Read mid-stream on one engine only: the caches diverge but the
        // final answers may not.
        let updates = workload();
        drive(&mut b, &updates[..4]);
        let _ = b.output_dense_subgraphs();
        drive(&mut b, &updates[4..]);
        assert_eq!(
            sorted(a.output_dense_subgraphs()),
            sorted(b.output_dense_subgraphs())
        );
    }

    #[test]
    fn snapshot_round_trips_byte_stably() {
        let mut engine = blueprint().fresh();
        drive(&mut engine, &workload());
        let bytes = engine.snapshot();
        let mut restored = blueprint().restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        assert_eq!(
            sorted(restored.output_dense_subgraphs()),
            sorted(engine.output_dense_subgraphs())
        );
        assert_eq!(restored.stats().updates, engine.stats().updates);
    }

    #[test]
    fn partition_union_matches_single_engine() {
        let mut whole = blueprint().fresh();
        drive(&mut whole, &workload());
        // The bridge edge (2, 10) follows its minimum vertex into the kept
        // child; splitting at 20 keeps components intact.
        let (mut kept, mut other) = whole.partition_by(&mut |v| v.0 < 20);
        let mut union = kept.output_dense_subgraphs();
        union.extend(other.output_dense_subgraphs());
        assert_eq!(sorted(union), sorted(whole.output_dense_subgraphs()));
        kept.absorb(other);
        assert_eq!(
            sorted(kept.output_dense_subgraphs()),
            sorted(whole.output_dense_subgraphs())
        );
    }

    #[test]
    fn eviction_removes_decayed_bridges() {
        let mut engine = blueprint().fresh();
        drive(&mut engine, &workload());
        let report = engine.evict_below(0.2, &mut Vec::new());
        assert_eq!(report.edges_evicted, 1);
        assert!(engine.edges_below(0.2).is_empty());
        engine.validate().unwrap();
    }
}
