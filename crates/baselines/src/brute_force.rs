//! Exhaustive enumeration oracles: all dense subgraphs of a weighted graph and
//! all maximal cliques of an unweighted graph.
//!
//! These are the reference implementations ("Threshold" offline variant of
//! Engagement, Section 4.2.2) against which the streaming algorithms are
//! validated. They are exponential in the worst case and intended for small
//! graphs (tests) and for the scaled-down recall measurements of the GRASP
//! comparison.

use dyndens_density::{DensityMeasure, ThresholdFamily};
use dyndens_graph::{DynamicGraph, VertexId, VertexSet};

/// Exhaustive enumeration of dense / output-dense subgraphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForce;

impl BruteForce {
    /// Enumerates every subgraph of cardinality `2..=Nmax` whose score clears
    /// the *dense* bound `S_n T_n` of the given threshold family. Returns
    /// `(vertices, score)` pairs.
    ///
    /// Candidate generation only grows sets by neighbouring vertices or (when
    /// the current set's score alone already clears the next cardinality's
    /// bound, i.e. it is "too dense") by any vertex, mirroring the growth
    /// property the thresholds guarantee; this keeps the oracle usable on the
    /// moderately sized graphs of the recall experiments while remaining
    /// exhaustive.
    pub fn dense_subgraphs<D: DensityMeasure>(
        graph: &DynamicGraph,
        thresholds: &ThresholdFamily<D>,
    ) -> Vec<(VertexSet, f64)> {
        Self::enumerate(graph, |score, n| thresholds.is_dense(score, n), thresholds)
    }

    /// Enumerates every subgraph of cardinality `2..=Nmax` whose density
    /// clears the *output* threshold `T`.
    pub fn output_dense_subgraphs<D: DensityMeasure>(
        graph: &DynamicGraph,
        thresholds: &ThresholdFamily<D>,
    ) -> Vec<(VertexSet, f64)> {
        Self::enumerate(
            graph,
            |score, n| thresholds.is_output_dense(score, n),
            thresholds,
        )
    }

    fn enumerate<D: DensityMeasure>(
        graph: &DynamicGraph,
        accept: impl Fn(f64, usize) -> bool,
        thresholds: &ThresholdFamily<D>,
    ) -> Vec<(VertexSet, f64)> {
        let n_max = thresholds.n_max();
        let n = graph.vertex_count();
        let mut out = Vec::new();
        if n < 2 || n_max < 2 {
            return out;
        }
        // Enumerate all subsets of cardinality 2..=n_max via combinations over
        // the vertex ids. We prune nothing except the cardinality cap: the
        // oracle must remain exhaustive (dense subgraphs can be disconnected
        // when smaller subsets are sufficiently heavy).
        let vertices: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let mut current: Vec<VertexId> = Vec::with_capacity(n_max);
        Self::combinations(graph, &vertices, 0, &mut current, n_max, &accept, &mut out);
        out
    }

    fn combinations(
        graph: &DynamicGraph,
        vertices: &[VertexId],
        start: usize,
        current: &mut Vec<VertexId>,
        n_max: usize,
        accept: &impl Fn(f64, usize) -> bool,
        out: &mut Vec<(VertexSet, f64)>,
    ) {
        if current.len() >= 2 {
            let set = VertexSet::from_vertices(current.iter().copied());
            let score = graph.score(&set);
            if accept(score, set.len()) {
                out.push((set, score));
            }
        }
        if current.len() == n_max {
            return;
        }
        for i in start..vertices.len() {
            current.push(vertices[i]);
            Self::combinations(graph, vertices, i + 1, current, n_max, accept, out);
            current.pop();
        }
    }

    /// Enumerates all maximal cliques of the graph's unweighted skeleton
    /// (edges with weight `> 0`), using the Bron–Kerbosch algorithm with
    /// pivoting. Used as the oracle for the Stix baseline.
    pub fn maximal_cliques(graph: &DynamicGraph) -> Vec<VertexSet> {
        let n = graph.vertex_count();
        let mut cliques = Vec::new();
        let all: Vec<VertexId> = (0..n as u32)
            .map(VertexId)
            .filter(|&v| graph.degree(v) > 0)
            .collect();
        let mut r = Vec::new();
        let mut p = all;
        let mut x = Vec::new();
        Self::bron_kerbosch(graph, &mut r, &mut p, &mut x, &mut cliques);
        cliques
    }

    fn bron_kerbosch(
        graph: &DynamicGraph,
        r: &mut Vec<VertexId>,
        p: &mut Vec<VertexId>,
        x: &mut Vec<VertexId>,
        out: &mut Vec<VertexSet>,
    ) {
        if p.is_empty() && x.is_empty() {
            if r.len() >= 2 {
                out.push(VertexSet::from_vertices(r.iter().copied()));
            }
            return;
        }
        // Pivot: vertex from P ∪ X with the most neighbours in P.
        let pivot = p
            .iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|&u| p.iter().filter(|&&v| graph.weight(u, v) > 0.0).count());
        let candidates: Vec<VertexId> = match pivot {
            Some(u) => p
                .iter()
                .copied()
                .filter(|&v| graph.weight(u, v) <= 0.0)
                .collect(),
            None => p.clone(),
        };
        for v in candidates {
            let neighbours = |set: &[VertexId]| -> Vec<VertexId> {
                set.iter()
                    .copied()
                    .filter(|&u| graph.weight(u, v) > 0.0)
                    .collect()
            };
            let mut new_p = neighbours(p);
            let mut new_x = neighbours(x);
            r.push(v);
            Self::bron_kerbosch(graph, r, &mut new_p, &mut new_x, out);
            r.pop();
            p.retain(|&u| u != v);
            x.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::{AvgWeight, ThresholdFamily};
    use dyndens_graph::EdgeUpdate;

    fn triangle_plus_edge() -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(5);
        for (a, b, w) in [(0, 1, 1.0), (0, 2, 1.2), (1, 2, 1.1), (3, 4, 0.8)] {
            g.apply_update(&EdgeUpdate::new(VertexId(a), VertexId(b), w));
        }
        g
    }

    #[test]
    fn enumerates_dense_and_output_dense() {
        let g = triangle_plus_edge();
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 3, 0.15);
        let dense = BruteForce::dense_subgraphs(&g, &fam);
        let output = BruteForce::output_dense_subgraphs(&g, &fam);
        let dense_sets: Vec<String> = dense.iter().map(|(s, _)| s.to_string()).collect();
        // T_2 = 0.85: {0,1}, {0,2}, {1,2} qualify, {3,4} (0.8) does not.
        assert!(dense_sets.contains(&"{0, 1}".to_string()));
        assert!(dense_sets.contains(&"{0, 2}".to_string()));
        assert!(dense_sets.contains(&"{1, 2}".to_string()));
        assert!(dense_sets.contains(&"{0, 1, 2}".to_string()));
        assert!(!dense_sets.contains(&"{3, 4}".to_string()));
        // Output-dense needs average weight >= 1: {0,1} (1.0), {0,2}, {1,2},
        // and the triangle (avg 1.1).
        assert_eq!(output.len(), 4);
        // output-dense is a subset of dense
        assert!(output.len() <= dense.len());
    }

    #[test]
    fn cardinality_cap_is_respected() {
        let mut g = DynamicGraph::with_vertices(6);
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                g.apply_update(&EdgeUpdate::new(VertexId(a), VertexId(b), 2.0));
            }
        }
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 3, 0.1);
        let dense = BruteForce::dense_subgraphs(&g, &fam);
        assert!(dense.iter().all(|(s, _)| s.len() <= 3));
        // C(6,2) + C(6,3) = 15 + 20
        assert_eq!(dense.len(), 35);
    }

    #[test]
    fn disconnected_subgraphs_are_found_when_heavy_enough() {
        let mut g = DynamicGraph::with_vertices(3);
        g.apply_update(&EdgeUpdate::new(VertexId(0), VertexId(1), 10.0));
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 3, 0.15);
        let dense = BruteForce::dense_subgraphs(&g, &fam);
        // {0,1,2} has score 10 over S_3 = 3: dense even though vertex 2 is
        // disconnected.
        assert!(dense
            .iter()
            .any(|(s, _)| *s == VertexSet::from_ids(&[0, 1, 2])));
    }

    #[test]
    fn empty_graph_has_no_dense_subgraphs() {
        let g = DynamicGraph::with_vertices(1);
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 4, 0.1);
        assert!(BruteForce::dense_subgraphs(&g, &fam).is_empty());
        assert!(BruteForce::maximal_cliques(&g).is_empty());
    }

    #[test]
    fn maximal_cliques_match_expectation() {
        let g = triangle_plus_edge();
        let mut cliques = BruteForce::maximal_cliques(&g);
        cliques.sort();
        assert_eq!(
            cliques,
            vec![
                VertexSet::from_ids(&[0, 1, 2]),
                VertexSet::from_ids(&[3, 4])
            ]
        );
    }

    #[test]
    fn maximal_cliques_on_a_path() {
        let mut g = DynamicGraph::with_vertices(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            g.apply_update(&EdgeUpdate::new(VertexId(a), VertexId(b), 1.0));
        }
        let mut cliques = BruteForce::maximal_cliques(&g);
        cliques.sort();
        assert_eq!(
            cliques,
            vec![
                VertexSet::from_ids(&[0, 1]),
                VertexSet::from_ids(&[1, 2]),
                VertexSet::from_ids(&[2, 3]),
            ]
        );
    }
}
