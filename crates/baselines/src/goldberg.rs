//! Goldberg's maximum-density subgraph algorithm (offline Top-1 variant of
//! Engagement for `S_n = n`, discussed in Section 4.2.2 of the paper).
//!
//! The density maximised here is the classical `score(S) / |S|` (up to a
//! constant factor this is the paper's `AvgDegree` measure). The algorithm
//! performs a binary search over candidate densities `g`; each decision "is
//! there a subgraph with density > g?" is answered by a minimum-cut
//! computation on an auxiliary network:
//!
//! * source `s` connects to every vertex `v` with capacity `deg_w(v)` (its
//!   weighted degree);
//! * every vertex connects to the sink `t` with capacity `2 g`;
//! * every graph edge `(u, v, w)` becomes an undirected arc of capacity `w`.
//!
//! The source side of the minimum cut (minus `s`) is non-empty exactly when a
//! subgraph of density greater than `g` exists, and in that case it *is* such
//! a subgraph.

use crate::flow::FlowNetwork;
use dyndens_graph::{DynamicGraph, VertexId, VertexSet};

/// Result of the densest subgraph computation.
#[derive(Debug, Clone, PartialEq)]
pub struct DensestSubgraph {
    /// The vertex set achieving (approximately) maximum density.
    pub vertices: VertexSet,
    /// Its density `score / |S|`.
    pub density: f64,
}

/// Computes the subgraph maximising `score(S) / |S|` over all non-empty vertex
/// subsets, via Goldberg's min-cut reduction with a binary search over the
/// density value. `tolerance` bounds the absolute error on the reported
/// density (the returned vertex set is an actual subgraph whose exact density
/// is recomputed and reported).
///
/// Returns `None` for graphs without edges.
pub fn densest_subgraph(graph: &DynamicGraph, tolerance: f64) -> Option<DensestSubgraph> {
    let n = graph.vertex_count();
    if n == 0 || graph.edge_count() == 0 {
        return None;
    }
    let total_weight: f64 = graph.total_weight();
    let degrees: Vec<f64> = (0..n)
        .map(|v| graph.neighbors(VertexId(v as u32)).map(|(_, w)| w).sum())
        .collect();

    let mut lo = 0.0_f64;
    let mut hi = total_weight.max(1.0);
    let mut best: Option<VertexSet> = None;

    // Each iteration halves the interval; stop when within tolerance.
    while hi - lo > tolerance.max(1e-12) {
        let guess = (lo + hi) / 2.0;
        match cut_side_for_guess(graph, &degrees, guess) {
            Some(candidate) if !candidate.is_empty() => {
                best = Some(candidate);
                lo = guess;
            }
            _ => hi = guess,
        }
    }

    let vertices = match best {
        Some(v) => v,
        // Even density 0 was not exceeded by the search resolution; fall back
        // to the heaviest single edge.
        None => {
            let (a, b, _) = graph
                .edges()
                .max_by(|x, y| x.2.partial_cmp(&y.2).unwrap())?;
            VertexSet::pair(a, b)
        }
    };
    let density = graph.score(&vertices) / vertices.len() as f64;
    Some(DensestSubgraph { vertices, density })
}

/// Builds the auxiliary network for density guess `g`, computes the min cut
/// and returns the source-side vertex set (possibly empty).
fn cut_side_for_guess(graph: &DynamicGraph, degrees: &[f64], guess: f64) -> Option<VertexSet> {
    let n = graph.vertex_count();
    let source = n;
    let sink = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    for (v, &deg) in degrees.iter().enumerate() {
        if deg > 0.0 {
            net.add_edge(source, v, deg);
        }
        net.add_edge(v, sink, 2.0 * guess);
    }
    for (a, b, w) in graph.edges() {
        net.add_undirected_edge(a.index(), b.index(), w);
    }
    net.max_flow(source, sink);
    let side = net.min_cut_source_side(source);
    let vertices: Vec<VertexId> = (0..n)
        .filter(|&v| side[v])
        .map(|v| VertexId(v as u32))
        .collect();
    Some(VertexSet::from_vertices(vertices))
}

/// Brute-force densest subgraph (maximising `score / |S|`) for validation on
/// small graphs.
pub fn densest_subgraph_brute_force(graph: &DynamicGraph) -> Option<DensestSubgraph> {
    let n = graph.vertex_count();
    if n == 0 || graph.edge_count() == 0 {
        return None;
    }
    let mut best: Option<DensestSubgraph> = None;
    // Enumerate all non-empty subsets (exponential; tests only).
    assert!(
        n <= 20,
        "brute force densest subgraph is for small graphs only"
    );
    for mask in 1u32..(1 << n) {
        let vertices: Vec<VertexId> = (0..n)
            .filter(|&v| mask & (1 << v) != 0)
            .map(|v| VertexId(v as u32))
            .collect();
        if vertices.len() < 2 {
            continue;
        }
        let set = VertexSet::from_vertices(vertices);
        let density = graph.score(&set) / set.len() as f64;
        if best.as_ref().is_none_or(|b| density > b.density) {
            best = Some(DensestSubgraph {
                vertices: set,
                density,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::EdgeUpdate;

    fn graph_from(edges: &[(u32, u32, f64)]) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for &(a, b, w) in edges {
            g.apply_update(&EdgeUpdate::new(VertexId(a), VertexId(b), w));
        }
        g
    }

    #[test]
    fn empty_graph_has_no_densest_subgraph() {
        let g = DynamicGraph::with_vertices(3);
        assert!(densest_subgraph(&g, 1e-6).is_none());
        assert!(densest_subgraph_brute_force(&g).is_none());
    }

    #[test]
    fn single_edge() {
        let g = graph_from(&[(0, 1, 2.0)]);
        let d = densest_subgraph(&g, 1e-6).unwrap();
        assert_eq!(d.vertices, VertexSet::from_ids(&[0, 1]));
        assert!((d.density - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clique_beats_pendant_edges() {
        // A 4-clique with unit weights (density 6/4 = 1.5) plus light pendant
        // edges that would dilute it.
        let mut edges = vec![];
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                edges.push((a, b, 1.0));
            }
        }
        edges.push((3, 4, 0.1));
        edges.push((4, 5, 0.1));
        let g = graph_from(&edges);
        let d = densest_subgraph(&g, 1e-6).unwrap();
        assert_eq!(d.vertices, VertexSet::from_ids(&[0, 1, 2, 3]));
        assert!((d.density - 1.5).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.gen_range(3..8usize);
            let mut edges = vec![];
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        // Dyadic weights keep the arithmetic exact.
                        edges.push((a, b, rng.gen_range(1..16) as f64 / 8.0));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let g = graph_from(&edges);
            let fast = densest_subgraph(&g, 1e-7).unwrap();
            let slow = densest_subgraph_brute_force(&g).unwrap();
            assert!(
                (fast.density - slow.density).abs() < 1e-4,
                "density mismatch: {} vs {} on {:?}",
                fast.density,
                slow.density,
                edges
            );
        }
    }

    #[test]
    fn weighted_density_prefers_heavy_pair_over_light_clique() {
        let mut edges = vec![(0u32, 1u32, 10.0)];
        for a in 2..6u32 {
            for b in (a + 1)..6u32 {
                edges.push((a, b, 0.5));
            }
        }
        let g = graph_from(&edges);
        let d = densest_subgraph(&g, 1e-6).unwrap();
        assert_eq!(d.vertices, VertexSet::from_ids(&[0, 1]));
        assert!((d.density - 5.0).abs() < 1e-6);
    }
}
