//! A Dinic maximum-flow / minimum-cut solver over real-valued capacities.
//!
//! Goldberg's max-density subgraph algorithm (see [`crate::goldberg`]) reduces
//! the densest-subgraph decision problem to a sequence of min-cut computations
//! on a small flow network; this module provides the flow substrate. It is a
//! textbook Dinic implementation (level graph BFS + blocking-flow DFS) with an
//! epsilon guard for floating point capacities.

/// Capacities below this value are treated as saturated/zero.
pub const FLOW_EPSILON: f64 = 1e-9;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    capacity: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network with a fixed number of nodes.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from -> to` with the given capacity (and a
    /// zero-capacity reverse edge).
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: f64) {
        assert!(capacity >= 0.0, "capacities must be non-negative");
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            capacity,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            capacity: 0.0,
            rev: rev_to,
        });
    }

    /// Adds an undirected edge (capacity in both directions).
    pub fn add_undirected_edge(&mut self, a: usize, b: usize, capacity: f64) {
        assert!(capacity >= 0.0, "capacities must be non-negative");
        let rev_a = self.graph[b].len();
        let rev_b = self.graph[a].len();
        self.graph[a].push(Edge {
            to: b,
            capacity,
            rev: rev_a,
        });
        self.graph[b].push(Edge {
            to: a,
            capacity,
            rev: rev_b,
        });
    }

    fn bfs_levels(&self, source: usize, sink: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.graph.len()];
        level[source] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for e in &self.graph[u] {
                if e.capacity > FLOW_EPSILON && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        if level[sink] < 0 {
            None
        } else {
            Some(level)
        }
    }

    fn dfs_augment(
        &mut self,
        u: usize,
        sink: usize,
        pushed: f64,
        level: &[i32],
        iter: &mut [usize],
    ) -> f64 {
        if u == sink {
            return pushed;
        }
        while iter[u] < self.graph[u].len() {
            let (to, cap, rev) = {
                let e = &self.graph[u][iter[u]];
                (e.to, e.capacity, e.rev)
            };
            if cap > FLOW_EPSILON && level[to] == level[u] + 1 {
                let d = self.dfs_augment(to, sink, pushed.min(cap), level, iter);
                if d > FLOW_EPSILON {
                    self.graph[u][iter[u]].capacity -= d;
                    self.graph[to][rev].capacity += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `source` to `sink`, mutating the
    /// residual capacities in place.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> f64 {
        assert!(source != sink);
        let mut flow = 0.0;
        while let Some(level) = self.bfs_levels(source, sink) {
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let pushed = self.dfs_augment(source, sink, f64::INFINITY, &level, &mut iter);
                if pushed <= FLOW_EPSILON {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`max_flow`](Self::max_flow), returns the source side of a
    /// minimum cut (the nodes reachable from `source` in the residual graph).
    pub fn min_cut_source_side(&self, source: usize) -> Vec<bool> {
        let mut reachable = vec![false; self.graph.len()];
        reachable[source] = true;
        let mut stack = vec![source];
        while let Some(u) = stack.pop() {
            for e in &self.graph[u] {
                if e.capacity > FLOW_EPSILON && !reachable[e.to] {
                    reachable[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        reachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 1.5);
        assert!((net.max_flow(0, 2) - 1.5).abs() < 1e-9);
        let cut = net.min_cut_source_side(0);
        assert!(cut[0] && cut[1] && !cut[2]);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 2.0);
        net.add_edge(1, 2, 10.0);
        assert!((net.max_flow(0, 3) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_network() {
        // A 6-node network with a known max flow of 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert!((net.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn undirected_edge_carries_flow_both_ways() {
        let mut net = FlowNetwork::new(3);
        net.add_undirected_edge(0, 1, 1.0);
        net.add_undirected_edge(1, 2, 1.0);
        assert!((net.max_flow(0, 2) - 1.0).abs() < 1e-9);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        assert_eq!(net.max_flow(0, 3), 0.0);
        let cut = net.min_cut_source_side(0);
        assert!(cut[0] && cut[1] && !cut[2] && !cut[3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1.0);
    }
}
