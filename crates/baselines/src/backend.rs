//! The `Recompute` maintenance backend: the paper's recompute-from-scratch
//! reference point, packaged behind the [`MaintenanceEngine`] seam so it can
//! run under live sharded ingest, WAL checkpointing, crash recovery and
//! rebalancing — the deployment legs DynDens runs through.
//!
//! ## Design: log replay, not graph rebuild
//!
//! The free function [`recompute`](fn@crate::recompute) rebuilds a [`DynDens`] engine from the
//! *final* graph weights, which recovers the same output-dense **sets** but
//! not necessarily the same score **bits** — DynDens accumulates scores
//! incrementally, so the summation order differs. The differential oracle's
//! headline comparison mode for this backend is *bit-exactness at rebuild
//! boundaries*, so [`RecomputeEngine`] instead journals the raw update log
//! and rebuilds by replaying it through a fresh [`DynDens`]: determinism of
//! the reference engine then makes every rebuilt answer bit-identical to an
//! incremental engine that saw the same stream.
//!
//! Between rebuilds the engine serves the (possibly stale) cached answer,
//! which is what makes the cost profile honest: ingest is `O(1)` per update
//! (append + graph bump), reads pay the full replay every
//! [`rebuild_every`](RecomputeBlueprint::new) updates. With a cadence of `1`
//! every read lands on a rebuild boundary, which is how the oracle drives it.

use dyndens_core::{
    encode_config_params, DenseEvent, DynDens, DynDensConfig, EngineBlueprint, EngineStats,
    EvictionReport, MaintenanceEngine, SnapshotError,
};
use dyndens_density::DensityMeasure;
use dyndens_graph::codec::{crc32, put_u32, put_u64, verify_crc_trailer, ByteReader};
use dyndens_graph::{DynamicGraph, EdgeUpdate, VertexId, VertexSet};

/// Snapshot magic for [`RecomputeEngine`] checkpoints (`"DDRC"`).
pub const RECOMPUTE_SNAPSHOT_MAGIC: [u8; 4] = *b"DDRC";
const RECOMPUTE_SNAPSHOT_VERSION: u32 = 1;

/// The cancelling updates for every stored edge whose weight has decayed to
/// `min_weight` or below, in canonical ascending `(a, b)` order — the shared
/// victim-set definition of every graph-backed backend, kept identical to
/// [`DynDens::edges_below`] so WAL compaction journals agree across
/// backends.
pub(crate) fn graph_edges_below(graph: &DynamicGraph, min_weight: f64) -> Vec<EdgeUpdate> {
    let mut victims: Vec<(VertexId, VertexId, f64)> =
        graph.edges().filter(|&(_, _, w)| w <= min_weight).collect();
    victims.sort_unstable_by_key(|&(a, b, _)| (a, b));
    victims
        .into_iter()
        .map(|(a, b, w)| EdgeUpdate::new(a, b, -w))
        .collect()
}

/// The periodic-full-rebuild maintenance backend (kind `"recompute"`).
///
/// One shard's worth of state: the live weighted graph, the raw update log,
/// and a lazily rebuilt [`DynDens`] answer cache keyed by log length. See
/// the [module docs](self) for why the rebuild replays the log.
#[derive(Debug, Clone)]
pub struct RecomputeEngine<D: DensityMeasure> {
    measure: D,
    config: DynDensConfig,
    rebuild_every: u64,
    graph: DynamicGraph,
    log: Vec<EdgeUpdate>,
    stats: EngineStats,
    recovering: bool,
    cache: Option<(u64, DynDens<D>)>,
}

impl<D: DensityMeasure> RecomputeEngine<D> {
    fn empty(measure: D, config: DynDensConfig, rebuild_every: u64) -> Self {
        RecomputeEngine {
            measure,
            config,
            rebuild_every: rebuild_every.max(1),
            graph: DynamicGraph::new(),
            log: Vec::new(),
            stats: EngineStats::default(),
            recovering: false,
            cache: None,
        }
    }

    /// Number of updates applied since the answer cache was last rebuilt
    /// (`None` means no rebuild has happened yet).
    pub fn pending_since_rebuild(&self) -> Option<u64> {
        self.cache.as_ref().map(|(v, _)| self.log.len() as u64 - v)
    }

    /// Whether the next read lands on a rebuild boundary (the answer will be
    /// recomputed from the log rather than served stale).
    pub fn at_rebuild_boundary(&self) -> bool {
        match &self.cache {
            Some((v, _)) => self.log.len() as u64 - v >= self.rebuild_every,
            None => true,
        }
    }

    /// Rebuilds the cached [`DynDens`] answer if the read lands on a rebuild
    /// boundary, then returns it (stale or fresh).
    fn answer(&mut self) -> &mut DynDens<D> {
        if self.at_rebuild_boundary() {
            let mut engine = DynDens::new(self.measure.clone(), self.config.clone());
            engine.set_recovering(true);
            let mut sink = Vec::new();
            for u in &self.log {
                engine.apply_update_into(*u, &mut sink);
                sink.clear();
            }
            engine.set_recovering(false);
            self.cache = Some((self.log.len() as u64, engine));
        }
        &mut self.cache.as_mut().expect("cache rebuilt above").1
    }
}

impl<D: DensityMeasure> MaintenanceEngine for RecomputeEngine<D> {
    fn apply_update_into(&mut self, update: EdgeUpdate, _events: &mut Vec<DenseEvent>) {
        self.graph.apply_update(&update);
        self.log.push(update);
        if !self.recovering {
            self.stats.updates += 1;
            if update.is_positive() {
                self.stats.positive_updates += 1;
            } else {
                self.stats.negative_updates += 1;
            }
        }
    }

    fn output_dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)> {
        self.answer().output_dense_subgraphs()
    }

    fn dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)> {
        self.answer().dense_subgraphs()
    }

    fn validate(&mut self) -> Result<(), String> {
        let live_edges = self.graph.edge_count();
        let rebuilt = self.answer();
        rebuilt.validate()?;
        if rebuilt.graph().edge_count() != live_edges {
            return Err(format!(
                "log replay disagrees with live graph: {} edges vs {}",
                rebuilt.graph().edge_count(),
                live_edges
            ));
        }
        Ok(())
    }

    fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn adopt_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }

    fn set_recovering(&mut self, recovering: bool) {
        self.recovering = recovering;
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.log.len() * 16);
        buf.extend_from_slice(&RECOMPUTE_SNAPSHOT_MAGIC);
        put_u32(&mut buf, RECOMPUTE_SNAPSHOT_VERSION);
        put_u64(&mut buf, self.rebuild_every);
        self.stats.encode_into(&mut buf);
        put_u64(&mut buf, self.log.len() as u64);
        for u in &self.log {
            u.encode_into(&mut buf);
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    fn partition_by(&self, keep: &mut dyn FnMut(VertexId) -> bool) -> (Self, Self) {
        let mut kept = RecomputeEngine::empty(
            self.measure.clone(),
            self.config.clone(),
            self.rebuild_every,
        );
        let mut other = RecomputeEngine::empty(
            self.measure.clone(),
            self.config.clone(),
            self.rebuild_every,
        );
        // Each edge's full update history follows its minimum vertex, so the
        // child replays the identical delta sequence the parent saw for it —
        // bit-for-bit equal accumulated weights.
        for u in &self.log {
            let child = if keep(u.a.min(u.b)) {
                &mut kept
            } else {
                &mut other
            };
            child.graph.apply_update(u);
            child.log.push(*u);
        }
        (kept, other)
    }

    fn absorb(&mut self, other: Self) {
        // The sibling's edges are disjoint from ours, so replaying its log
        // reproduces its weight bits on top of zeros.
        for u in &other.log {
            self.graph.apply_update(u);
        }
        self.log.extend_from_slice(&other.log);
        self.stats.merge(&other.stats);
        self.cache = None;
    }

    fn edges_below(&self, min_weight: f64) -> Vec<EdgeUpdate> {
        graph_edges_below(&self.graph, min_weight)
    }

    fn evict_below(&mut self, min_weight: f64, events: &mut Vec<DenseEvent>) -> EvictionReport {
        let victims = self.edges_below(min_weight);
        let mut report = EvictionReport {
            edges_evicted: victims.len() as u64,
            weight_evicted: victims.iter().map(|u| -u.delta).sum(),
            ..EvictionReport::default()
        };
        let isolated_before = self.graph.reclaim_isolated();
        for u in victims {
            self.apply_update_into(u, events);
        }
        let isolated_after = self.graph.reclaim_isolated();
        report.vertices_orphaned = (isolated_after - isolated_before) as u64;
        report
    }
}

/// [`EngineBlueprint`] for [`RecomputeEngine`]: density measure, engine
/// configuration and the rebuild cadence (reads rebuild the answer once this
/// many updates have accumulated since the last rebuild; `1` means every
/// read that follows new data is a rebuild boundary).
#[derive(Debug, Clone)]
pub struct RecomputeBlueprint<D: DensityMeasure> {
    measure: D,
    config: DynDensConfig,
    rebuild_every: u64,
}

impl<D: DensityMeasure> RecomputeBlueprint<D> {
    /// A blueprint building [`RecomputeEngine`]s over `measure` with
    /// `config`, rebuilding every `rebuild_every` updates (clamped to at
    /// least 1).
    pub fn new(measure: D, config: DynDensConfig, rebuild_every: u64) -> Self {
        RecomputeBlueprint {
            measure,
            config,
            rebuild_every: rebuild_every.max(1),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DynDensConfig {
        &self.config
    }

    /// The rebuild cadence.
    pub fn rebuild_every(&self) -> u64 {
        self.rebuild_every
    }
}

impl<D: DensityMeasure> EngineBlueprint for RecomputeBlueprint<D> {
    type Engine = RecomputeEngine<D>;

    fn kind(&self) -> &'static str {
        "recompute"
    }

    fn measure_name(&self) -> &'static str {
        self.measure.name()
    }

    fn params(&self) -> Vec<u8> {
        let mut out = encode_config_params(&self.config);
        out.extend_from_slice(&self.rebuild_every.to_le_bytes());
        out
    }

    fn fresh(&self) -> RecomputeEngine<D> {
        RecomputeEngine::empty(
            self.measure.clone(),
            self.config.clone(),
            self.rebuild_every,
        )
    }

    fn restore(&self, bytes: &[u8]) -> Result<RecomputeEngine<D>, SnapshotError> {
        let payload = verify_crc_trailer(bytes)?;
        let mut r = ByteReader::new(payload);
        if r.take(4)? != RECOMPUTE_SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != RECOMPUTE_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let rebuild_every = r.u64()?;
        if rebuild_every != self.rebuild_every {
            return Err(SnapshotError::Invalid(
                "snapshot was written under a different rebuild cadence",
            ));
        }
        let mut engine = self.fresh();
        engine.stats = EngineStats::decode(&mut r)?;
        let n = r.u64()? as usize;
        engine.log.reserve(n);
        for _ in 0..n {
            let u = EdgeUpdate::decode(&mut r)?;
            engine.graph.apply_update(&u);
            engine.log.push(u);
        }
        if !r.is_empty() {
            return Err(SnapshotError::Invalid("trailing bytes after update log"));
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_core::DynDensBlueprint;
    use dyndens_density::AvgWeight;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn config() -> DynDensConfig {
        DynDensConfig::new(1.0, 4).with_delta_it(0.25)
    }

    fn workload() -> Vec<EdgeUpdate> {
        let mut updates = Vec::new();
        for base in [0u32, 10u32] {
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                updates.push(update(base + a, base + b, 1.25));
            }
        }
        updates.push(update(2, 10, 0.125));
        updates.push(update(0, 1, -0.5));
        updates
    }

    fn sorted(mut sets: Vec<(VertexSet, f64)>) -> Vec<(Vec<u32>, u64)> {
        sets.sort_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
        sets.into_iter()
            .map(|(s, score)| (s.iter().map(|v| v.0).collect(), score.to_bits()))
            .collect()
    }

    #[test]
    fn rebuild_boundary_answers_are_bit_exact_with_dyndens() {
        let blueprint = RecomputeBlueprint::new(AvgWeight, config(), 1);
        let reference = DynDensBlueprint::new(AvgWeight, config());
        let mut engine = blueprint.fresh();
        let mut exact = reference.fresh();
        let mut sink = Vec::new();
        for u in workload() {
            engine.apply_update_into(u, &mut sink);
            exact.apply_update_into(u, &mut sink);
            sink.clear();
            assert!(engine.at_rebuild_boundary());
            assert_eq!(
                sorted(engine.output_dense_subgraphs()),
                sorted(MaintenanceEngine::output_dense_subgraphs(&mut exact)),
            );
        }
        engine.validate().unwrap();
        assert_eq!(engine.stats().updates, workload().len() as u64);
    }

    #[test]
    fn stale_reads_wait_for_the_cadence() {
        let blueprint = RecomputeBlueprint::new(AvgWeight, config(), 4);
        let mut engine = blueprint.fresh();
        let mut sink = Vec::new();
        engine.apply_update_into(update(0, 1, 1.25), &mut sink);
        assert!(engine.at_rebuild_boundary(), "first read always rebuilds");
        let first = engine.output_dense_subgraphs();
        engine.apply_update_into(update(0, 1, -1.0), &mut sink);
        assert!(!engine.at_rebuild_boundary());
        assert_eq!(
            sorted(engine.output_dense_subgraphs()),
            sorted(first),
            "below the cadence the cached answer is served unchanged"
        );
        assert_eq!(engine.pending_since_rebuild(), Some(1));
    }

    #[test]
    fn snapshot_round_trips_byte_stably() {
        let blueprint = RecomputeBlueprint::new(AvgWeight, config(), 3);
        let mut engine = blueprint.fresh();
        let mut sink = Vec::new();
        for u in workload() {
            engine.apply_update_into(u, &mut sink);
        }
        let bytes = engine.snapshot();
        let mut restored = blueprint.restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        assert_eq!(
            sorted(restored.output_dense_subgraphs()),
            sorted(engine.output_dense_subgraphs())
        );
        assert_eq!(restored.stats().updates, engine.stats().updates);

        let mismatched = RecomputeBlueprint::new(AvgWeight, config(), 7);
        assert!(matches!(
            mismatched.restore(&bytes),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn partition_and_absorb_round_trip() {
        let blueprint = RecomputeBlueprint::new(AvgWeight, config(), 1);
        let mut engine = blueprint.fresh();
        let mut sink = Vec::new();
        for u in workload() {
            engine.apply_update_into(u, &mut sink);
        }
        let before = sorted(engine.output_dense_subgraphs());
        let (mut kept, other) = engine.partition_by(&mut |v| v.0 < 10);
        kept.absorb(other);
        assert_eq!(sorted(kept.output_dense_subgraphs()), before);
        assert_eq!(kept.graph().edge_count(), engine.graph().edge_count());
    }

    #[test]
    fn evict_below_runs_through_the_update_path() {
        let blueprint = RecomputeBlueprint::new(AvgWeight, config(), 1);
        let mut engine = blueprint.fresh();
        let mut sink = Vec::new();
        for u in workload() {
            engine.apply_update_into(u, &mut sink);
        }
        let victims = engine.edges_below(0.2);
        assert_eq!(victims.len(), 1, "only the weak bridge decays out");
        let report = engine.evict_below(0.2, &mut sink);
        assert_eq!(report.edges_evicted, 1);
        assert!(report.weight_evicted > 0.0);
        assert!(engine.edges_below(0.2).is_empty());
        engine.validate().unwrap();
    }
}
