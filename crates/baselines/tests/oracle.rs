//! Property tests: the DynDens engine against the brute-force oracle.
//!
//! These are the central correctness tests of the reproduction. Random update
//! streams (with positive and negative deltas) are applied both to a DynDens
//! engine (in several configurations: optimisations on/off) and, after every
//! update, the resulting dense / output-dense sets are compared against
//! exhaustive enumeration over the final graph.

use dyndens_baselines::BruteForce;
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::{AvgDegree, AvgWeight, DensityMeasure, SqrtDens, ThresholdFamily};
use dyndens_graph::{DynamicGraph, EdgeUpdate, VertexId, VertexSet};
use proptest::prelude::*;

/// A raw update: edge endpoints and a signed dyadic delta. Deltas are clamped
/// during replay so edge weights never go negative (association strengths are
/// non-negative by construction in the application).
#[derive(Debug, Clone, Copy)]
struct RawUpdate {
    a: u32,
    b: u32,
    /// delta in units of 1/32, in [-64, 96] (i.e. [-2.0, 3.0]).
    delta_32: i32,
}

fn raw_update_strategy(n_vertices: u32) -> impl Strategy<Value = RawUpdate> {
    (0..n_vertices, 0..n_vertices, -64i32..96i32).prop_filter_map(
        "self loops are not allowed",
        |(a, b, delta_32)| {
            if a == b {
                None
            } else {
                Some(RawUpdate { a, b, delta_32 })
            }
        },
    )
}

/// Materialises the raw updates into well-formed edge updates (clamping so
/// weights stay non-negative, dropping no-ops).
fn materialise(raws: &[RawUpdate]) -> Vec<EdgeUpdate> {
    let mut graph = DynamicGraph::new();
    let mut out = Vec::new();
    for raw in raws {
        let a = VertexId(raw.a.min(raw.b));
        let b = VertexId(raw.a.max(raw.b));
        let current = graph.weight(a, b);
        let mut delta = raw.delta_32 as f64 / 32.0;
        if current + delta < 0.0 {
            delta = -current;
        }
        if delta == 0.0 {
            continue;
        }
        let update = EdgeUpdate::new(a, b, delta);
        graph.apply_update(&update);
        out.push(update);
    }
    out
}

/// Checks a single engine state against brute force over its current graph.
fn check_against_oracle<D: DensityMeasure>(engine: &DynDens<D>, context: &str) {
    engine
        .validate()
        .unwrap_or_else(|e| panic!("validate failed ({context}): {e}"));
    let thresholds = engine.thresholds();
    let truth: Vec<(VertexSet, f64)> = BruteForce::dense_subgraphs(engine.graph(), thresholds);
    let truth_sets: std::collections::BTreeSet<VertexSet> =
        truth.iter().map(|(s, _)| s.clone()).collect();

    // Soundness: everything stored is genuinely dense (validate() already
    // checked scores); also everything stored must appear in the oracle.
    for (set, _) in engine.dense_subgraphs() {
        assert!(
            truth_sets.contains(&set),
            "{context}: engine stores {set} which the oracle does not consider dense"
        );
    }
    // Completeness: every dense subgraph is tracked, explicitly or via a star.
    for set in &truth_sets {
        assert!(
            engine.is_tracked_dense(set),
            "{context}: oracle-dense subgraph {set} is not tracked by the engine \
             (explicit: {}, stars: {})",
            engine.dense_count(),
            engine.index().star_count(),
        );
    }
    // Without the implicit representation, the explicit set must be exact.
    if !engine.config().implicit_too_dense {
        let explicit: std::collections::BTreeSet<VertexSet> = engine
            .dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(
            explicit, truth_sets,
            "{context}: explicit dense set differs from the oracle"
        );
    }
    // Output-dense answers are sound.
    let output_truth: std::collections::BTreeSet<VertexSet> =
        BruteForce::output_dense_subgraphs(engine.graph(), thresholds)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
    for (set, _) in engine.output_dense_subgraphs() {
        assert!(
            output_truth.contains(&set),
            "{context}: engine reports {set} as output-dense, oracle disagrees"
        );
    }
    // And complete up to star coverage.
    for set in &output_truth {
        assert!(
            engine.is_tracked_dense(set),
            "{context}: output-dense subgraph {set} is not tracked"
        );
    }
}

fn run_stream<D: DensityMeasure>(
    measure: D,
    config: DynDensConfig,
    updates: &[EdgeUpdate],
    label: &str,
) {
    // Pre-declare the vertex universe, matching the paper's fixed-N model (and
    // the oracle, which enumerates over the graph's full vertex set).
    let universe = 1 + updates.iter().map(|u| u.b.index()).max().unwrap_or(0);
    let mut engine = DynDens::with_vertex_capacity(measure, config, universe);
    for (i, u) in updates.iter().enumerate() {
        engine.apply_update(*u);
        check_against_oracle(&engine, &format!("{label}, after update {i} ({u:?})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// AvgWeight, all optimisations enabled (the paper's default setup).
    #[test]
    fn avg_weight_all_optimisations(raws in prop::collection::vec(raw_update_strategy(7), 1..32)) {
        let updates = materialise(&raws);
        let config = DynDensConfig::new(1.0, 4).with_delta_it_fraction(0.4);
        run_stream(AvgWeight, config, &updates, "AvgWeight/all-on");
    }

    /// AvgWeight with every optimisation disabled: the explicit index must
    /// match the oracle exactly.
    #[test]
    fn avg_weight_plain(raws in prop::collection::vec(raw_update_strategy(7), 1..32)) {
        let updates = materialise(&raws);
        let config = DynDensConfig::plain(1.0, 4).with_delta_it_fraction(0.4);
        run_stream(AvgWeight, config, &updates, "AvgWeight/plain");
    }

    /// Small delta_it (many exploration iterations) without heuristics.
    #[test]
    fn avg_weight_small_delta_it(raws in prop::collection::vec(raw_update_strategy(6), 1..28)) {
        let updates = materialise(&raws);
        let config = DynDensConfig::plain(0.8, 5).with_delta_it_fraction(0.05);
        run_stream(AvgWeight, config, &updates, "AvgWeight/small-delta-it");
    }

    /// AvgDegree (S_n = n), favouring larger subgraphs, all optimisations on.
    #[test]
    fn avg_degree_all_optimisations(raws in prop::collection::vec(raw_update_strategy(6), 1..28)) {
        let updates = materialise(&raws);
        let config = DynDensConfig::new(1.2, 4).with_delta_it_fraction(0.3);
        run_stream(AvgDegree, config, &updates, "AvgDegree/all-on");
    }

    /// SqrtDens, mixed configuration (implicit on, heuristics off).
    #[test]
    fn sqrt_dens_implicit_only(raws in prop::collection::vec(raw_update_strategy(6), 1..28)) {
        let updates = materialise(&raws);
        let config = DynDensConfig::new(0.9, 4)
            .with_delta_it_fraction(0.5)
            .with_max_explore(false)
            .with_degree_prioritize(false);
        run_stream(SqrtDens, config, &updates, "SqrtDens/implicit-only");
    }

    /// Heuristics enabled but ImplicitTooDense disabled (explicit index must be
    /// exact even with the prunings active).
    #[test]
    fn avg_weight_heuristics_only(raws in prop::collection::vec(raw_update_strategy(6), 1..28)) {
        let updates = materialise(&raws);
        let config = DynDensConfig::new(0.9, 4)
            .with_delta_it_fraction(0.25)
            .with_implicit_too_dense(false);
        run_stream(AvgWeight, config, &updates, "AvgWeight/heuristics-only");
    }

    /// Dynamic threshold adjustment: lowering or raising T mid-stream must
    /// leave the engine equivalent to one that used the final threshold from
    /// the start.
    #[test]
    fn threshold_adjustment_matches_oracle(
        raws in prop::collection::vec(raw_update_strategy(6), 4..24),
        t_start in 2usize..6,
        t_end in 2usize..6,
        split in 0.2f64..0.8,
    ) {
        let thresholds = [0.6, 0.8, 0.9, 1.0, 1.1, 1.3];
        let t_start = thresholds[t_start];
        let t_end = thresholds[t_end];
        let updates = materialise(&raws);
        let cut = ((updates.len() as f64) * split) as usize;

        let universe = 1 + updates.iter().map(|u| u.b.index()).max().unwrap_or(0);
        // Use the fully explicit representation so the final set comparison
        // against the reference engine is exact (with ImplicitTooDense the two
        // engines may legitimately differ in *which* subgraphs are explicit
        // versus star-covered).
        let config = DynDensConfig::new(t_start, 4)
            .with_delta_it_fraction(0.3)
            .with_implicit_too_dense(false);
        let mut engine = DynDens::with_vertex_capacity(AvgWeight, config, universe);
        for u in &updates[..cut] {
            engine.apply_update(*u);
        }
        engine.set_output_threshold(t_end);
        check_against_oracle(&engine, "threshold-adjustment, right after change");
        for u in &updates[cut..] {
            engine.apply_update(*u);
        }
        check_against_oracle(&engine, "threshold-adjustment, end of stream");

        // The reported output-dense set must equal that of an engine that ran
        // with t_end from the beginning.
        let reference_cfg = DynDensConfig::new(t_end, 4)
            .with_delta_it_fraction(0.3)
            .with_implicit_too_dense(false);
        let mut reference = DynDens::with_vertex_capacity(AvgWeight, reference_cfg, universe);
        for u in &updates {
            reference.apply_update(*u);
        }
        let mut got: Vec<VertexSet> =
            engine.output_dense_subgraphs().into_iter().map(|(s, _)| s).collect();
        let mut want: Vec<VertexSet> =
            reference.output_dense_subgraphs().into_iter().map(|(s, _)| s).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }
}

/// Deterministic regression: a hand-crafted stream that exercises eviction,
/// star creation and star demotion in one run.
#[test]
fn star_lifecycle_regression() {
    let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
    let mut engine = DynDens::with_vertex_capacity(AvgWeight, config, 4);
    let updates = [
        (0u32, 1u32, 4.0), // {0,1} becomes too-dense immediately
        (2, 3, 1.0),       // unrelated dense edge
        (1, 2, 0.5),       // connects the two regions
        (0, 1, -3.2),      // {0,1} stops being too-dense
        (1, 2, 0.6),       // strengthens the bridge
        (0, 1, -0.9),      // {0,1} barely dense / evicted depending on bounds
    ];
    for (i, &(a, b, d)) in updates.iter().enumerate() {
        engine.apply_update(EdgeUpdate::new(VertexId(a), VertexId(b), d));
        check_against_oracle(&engine, &format!("star lifecycle step {i}"));
    }
}

/// Deterministic regression with the ThresholdFamily used directly, ensuring
/// the oracle and engine agree on the dense bound at every cardinality.
#[test]
fn oracle_and_engine_share_bounds() {
    let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 1.0, 5, 0.3);
    let mut graph = DynamicGraph::new();
    for (a, b, w) in [(0u32, 1u32, 1.5), (1, 2, 1.0), (0, 2, 0.9), (2, 3, 1.4)] {
        graph.apply_update(&EdgeUpdate::new(VertexId(a), VertexId(b), w));
    }
    let dense = BruteForce::dense_subgraphs(&graph, &fam);
    for (set, score) in dense {
        assert!(fam.is_dense(score, set.len()));
    }
}
