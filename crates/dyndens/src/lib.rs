//! # dyndens
//!
//! Facade crate for the DynDens dense subgraph maintenance library — a Rust
//! reproduction of *"Dense Subgraph Maintenance under Streaming Edge Weight
//! Updates for Real-time Story Identification"* (VLDB 2012).
//!
//! This crate simply re-exports the individual workspace crates under one
//! roof, so applications only need a single dependency:
//!
//! * [`graph`] — the dynamic weighted entity graph substrate.
//! * [`density`] — density measures `S_n` and threshold families `T_n`.
//! * [`core`] — the [`prelude::DynDens`] engine, dense subgraph index,
//!   heuristics and dynamic threshold adjustment.
//! * [`shard`] — the scale-out subsystem: sharded parallel ingest across
//!   worker threads and non-blocking merged story serving.
//! * [`serve`] — the network serving layer: the versioned wire protocol, the
//!   TCP story server over a `StoryView`, and the polling client/follower.
//! * [`stream`] — entity-annotated post streams, association measures and the
//!   post → edge-weight-update pipeline.
//! * [`workloads`] — synthetic update generators and the planted-story social
//!   media simulator.
//! * [`baselines`] — brute force, Stix, GRASP, recompute and Goldberg
//!   baselines.
//!
//! ## Quick start
//!
//! ```
//! use dyndens::prelude::*;
//!
//! let mut engine = DynDens::new(AvgWeight, DynDensConfig::new(1.0, 5));
//! engine.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), 1.5));
//! assert_eq!(engine.output_dense_count(), 1);
//! ```
//!
//! See the `examples/` directory at the repository root for complete,
//! runnable scenarios (quick start, end-to-end story identification,
//! community detection, and threshold tuning).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use dyndens_baselines as baselines;
pub use dyndens_core as core;
pub use dyndens_density as density;
pub use dyndens_graph as graph;
pub use dyndens_serve as serve;
pub use dyndens_shard as shard;
pub use dyndens_stream as stream;
pub use dyndens_workloads as workloads;

/// Commonly used items, importable with `use dyndens::prelude::*`.
pub mod prelude {
    pub use dyndens_baselines::{RecomputeBlueprint, TopKPeelingBlueprint};
    pub use dyndens_core::{
        DenseEvent, DynDens, DynDensBlueprint, DynDensConfig, EngineBlueprint, EngineStats,
        MaintenanceEngine,
    };
    pub use dyndens_density::{AvgDegree, AvgWeight, DensityMeasure, SqrtDens, ThresholdFamily};
    pub use dyndens_graph::{DynamicGraph, EdgeUpdate, VertexId, VertexSet};
    pub use dyndens_shard::{
        FsyncPolicy, IngestHandle, MergePhase, MergeReport, PersistenceConfig, RebalanceError,
        RebalancePolicy, Rebalancer, RecoveryReport, ShardConfig, ShardFn, ShardedDynDens,
        ShardedFleet, SplitPhase, SplitReport, StoryView,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_work_together() {
        let mut engine = DynDens::new(AvgWeight, DynDensConfig::new(1.0, 4));
        let events = engine.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), 2.0));
        assert_eq!(events.len(), 1);
        assert_eq!(engine.dense_count(), 1);
    }
}
