//! Property test: eviction is reversible. Evicting every edge below a
//! threshold with [`DynDens::evict_below`] and then reinserting the evicted
//! weights must land the engine back on the state of an engine that never
//! evicted — same graph (weight bits included) and same maintained family
//! (score bits included).
//!
//! This holds because eviction goes through the ordinary update path (exact
//! cancelling deltas), weights are dyadic rationals (f64 arithmetic on them
//! is exact, so cancel-then-reinsert is a true inverse on the graph), and
//! with the plain configuration the maintained family is an exact function
//! of the graph — not of the path taken to reach it.

use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgWeight;
use dyndens_graph::{DynamicGraph, EdgeUpdate, VertexId, VertexSet};
use proptest::prelude::*;

/// A raw update: edge endpoints and a signed dyadic delta (units of 1/32).
#[derive(Debug, Clone, Copy)]
struct RawUpdate {
    a: u32,
    b: u32,
    delta_32: i32,
}

fn raw_update_strategy(n_vertices: u32) -> impl Strategy<Value = RawUpdate> {
    (0..n_vertices, 0..n_vertices, -64i32..96i32).prop_filter_map(
        "self loops are not allowed",
        |(a, b, delta_32)| {
            if a == b {
                None
            } else {
                Some(RawUpdate { a, b, delta_32 })
            }
        },
    )
}

/// Materialises raw updates into well-formed edge updates (clamped so
/// weights stay non-negative, no-ops dropped).
fn materialise(raws: &[RawUpdate]) -> Vec<EdgeUpdate> {
    let mut graph = DynamicGraph::new();
    let mut out = Vec::new();
    for raw in raws {
        let a = VertexId(raw.a.min(raw.b));
        let b = VertexId(raw.a.max(raw.b));
        let current = graph.weight(a, b);
        let mut delta = raw.delta_32 as f64 / 32.0;
        if current + delta < 0.0 {
            delta = -current;
        }
        if delta == 0.0 {
            continue;
        }
        let update = EdgeUpdate::new(a, b, delta);
        graph.apply_update(&update);
        out.push(update);
    }
    out
}

fn sorted_bits(mut sets: Vec<(VertexSet, f64)>) -> Vec<(VertexSet, u64)> {
    sets.sort_by(|a, b| a.0.cmp(&b.0));
    sets.into_iter().map(|(s, d)| (s, d.to_bits())).collect()
}

fn edge_bits(graph: &DynamicGraph) -> Vec<(VertexId, VertexId, u64)> {
    let mut edges: Vec<(VertexId, VertexId, u64)> =
        graph.edges().map(|(a, b, w)| (a, b, w.to_bits())).collect();
    edges.sort_unstable();
    edges
}

proptest! {
    #[test]
    fn evict_below_then_reinsert_round_trips_the_engine(
        raws in proptest::collection::vec(raw_update_strategy(8), 1..60),
        threshold_32 in 1i32..10,
    ) {
        let updates = materialise(&raws);
        let threshold = threshold_32 as f64 / 32.0;
        let config = DynDensConfig::new(1.0, 4);

        let mut control = DynDens::new(AvgWeight, config.clone());
        let mut engine = DynDens::new(AvgWeight, config);
        for &u in &updates {
            control.apply_update(u);
            engine.apply_update(u);
        }

        // Evict: victims are exact cancelling updates for every edge whose
        // weight sits below the threshold.
        let victims = engine.edges_below(threshold);
        let mut events = Vec::new();
        let report = engine.evict_below(threshold, &mut events);
        prop_assert_eq!(report.edges_evicted, victims.len() as u64);
        engine.validate().unwrap();
        // Idempotent: a second pass at the same threshold finds nothing.
        prop_assert_eq!(engine.edges_below(threshold).len(), 0);

        // Reinsert the evicted weights (the inverse deltas) and the engine
        // must be back where the never-evicting control is.
        for u in &victims {
            engine.apply_update(EdgeUpdate::new(u.a, u.b, -u.delta));
        }
        engine.validate().unwrap();
        prop_assert_eq!(edge_bits(engine.graph()), edge_bits(control.graph()));
        prop_assert_eq!(
            sorted_bits(engine.dense_subgraphs()),
            sorted_bits(control.dense_subgraphs())
        );
        prop_assert_eq!(engine.dense_count(), control.dense_count());
    }
}
