//! Engine snapshot / restore: the compact, versioned binary image of a
//! [`DynDens`] engine used by the crash-recovery path of `dyndens-shard`.
//!
//! A snapshot captures everything a shard worker needs to resume exactly
//! where it left off: the graph's edge weights, the threshold family's
//! *current* parameters (which may have drifted from the construction-time
//! config through dynamic threshold adjustment), the dense subgraph index
//! with its `*` markers and per-subgraph discovery metadata, the update
//! epoch, and the cumulative [`EngineStats`].
//!
//! Recovery is `restore(snapshot)` followed by replaying the write-ahead-log
//! tail. The engine's update processing is canonicalised (see
//! `DynDens::canonical_order` and `DynamicGraph::DETERMINISTIC_SET_BOUND`)
//! so that this replay is **bit-exact**: every score stored after recovery
//! carries the same `f64` bit pattern as in an engine that never crashed.
//!
//! ## Format (version 1)
//!
//! ```text
//! magic "DDSN" | version u32 | payload | crc32(magic..payload) u32
//!
//! payload :=
//!   config    threshold f64 | n_max u64 | delta_it tag u8 + value f64
//!             | flags u8 (bit0 implicit_too_dense, bit1 max_explore,
//!                         bit2 degree_prioritize)
//!   family    threshold f64 | delta_it f64      (current, post-adjustment)
//!   epoch     u64
//!   stats     13 × u64                           (EngineStats field order)
//!   graph     vertex_count u64 | edge_count u64
//!             | edge_count × (a u32 | b u32 | w f64)   (sorted by (a, b))
//!   index     subgraph_count u64
//!             | per subgraph (sorted by vertex set):
//!               card u32 | card × vertex u32 | score f64
//!               | discovered_epoch u64 | discovered_iteration u32
//!               | star u8
//! ```
//!
//! All integers little-endian, `f64` as IEEE-754 bits (see
//! [`dyndens_graph::codec`]). Everything is length-prefixed and
//! bounds-checked; a corrupt or truncated snapshot yields a
//! [`SnapshotError`], never a panic.

use dyndens_density::{DensityMeasure, ThresholdFamily};
use dyndens_graph::codec::{crc32, put_f64, put_u32, put_u64, ByteReader, CodecError};
use dyndens_graph::{DynamicGraph, VertexId, VertexSet};

use crate::config::{DeltaIt, DynDensConfig};
use crate::engine::DynDens;
use crate::events::EngineStats;
use crate::index::{SubgraphIndex, SubgraphInfo};

/// Magic bytes opening every engine snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"DDSN";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// An error restoring an engine from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// A structural decoding failure (truncation, CRC mismatch, malformed
    /// primitive).
    Codec(CodecError),
    /// The snapshot decoded structurally but violates an engine invariant.
    Invalid(&'static str),
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DynDens snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Codec(e) => write!(f, "snapshot decoding failed: {e}"),
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const FLAG_IMPLICIT_TOO_DENSE: u8 = 1 << 0;
const FLAG_MAX_EXPLORE: u8 = 1 << 1;
const FLAG_DEGREE_PRIORITIZE: u8 = 1 << 2;

const DELTA_IT_ABSOLUTE: u8 = 0;
const DELTA_IT_FRACTION: u8 = 1;

impl<D: DensityMeasure> DynDens<D> {
    /// Serialises the complete engine state to the versioned binary snapshot
    /// format. The inverse is [`restore`](Self::restore).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 24 * self.graph.edge_count());
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut buf, SNAPSHOT_VERSION);

        // Config.
        put_f64(&mut buf, self.config.threshold);
        put_u64(&mut buf, self.config.n_max as u64);
        match self.config.delta_it {
            DeltaIt::Absolute(v) => {
                buf.push(DELTA_IT_ABSOLUTE);
                put_f64(&mut buf, v);
            }
            DeltaIt::FractionOfMax(v) => {
                buf.push(DELTA_IT_FRACTION);
                put_f64(&mut buf, v);
            }
        }
        let mut flags = 0u8;
        if self.config.implicit_too_dense {
            flags |= FLAG_IMPLICIT_TOO_DENSE;
        }
        if self.config.max_explore {
            flags |= FLAG_MAX_EXPLORE;
        }
        if self.config.degree_prioritize {
            flags |= FLAG_DEGREE_PRIORITIZE;
        }
        buf.push(flags);

        // Threshold family: the *current* parameters (dynamic threshold
        // adjustment may have moved them away from the config).
        put_f64(&mut buf, self.thresholds.output_threshold());
        put_f64(&mut buf, self.thresholds.delta_it());

        put_u64(&mut buf, self.epoch);

        // Stats: destructured so a new counter cannot be forgotten here.
        let EngineStats {
            updates,
            positive_updates,
            negative_updates,
            explorations,
            cheap_explorations,
            candidates_examined,
            subgraphs_inserted,
            subgraphs_evicted,
            explore_all_invocations,
            star_markers_created,
            star_markers_removed,
            max_explore_skips,
            degree_prioritize_skips,
        } = self.stats;
        for counter in [
            updates,
            positive_updates,
            negative_updates,
            explorations,
            cheap_explorations,
            candidates_examined,
            subgraphs_inserted,
            subgraphs_evicted,
            explore_all_invocations,
            star_markers_created,
            star_markers_removed,
            max_explore_skips,
            degree_prioritize_skips,
        ] {
            put_u64(&mut buf, counter);
        }

        // Graph: edges in canonical (a, b) order so snapshots of equal state
        // are byte-identical regardless of update history.
        put_u64(&mut buf, self.graph.vertex_count() as u64);
        let mut edges: Vec<(VertexId, VertexId, f64)> = self.graph.edges().collect();
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        put_u64(&mut buf, edges.len() as u64);
        for (a, b, w) in edges {
            put_u32(&mut buf, a.0);
            put_u32(&mut buf, b.0);
            put_f64(&mut buf, w);
        }

        // Index: subgraphs in canonical vertex-set order.
        let mut subgraphs: Vec<(VertexSet, SubgraphInfo, bool)> = self
            .index
            .iter()
            .map(|(id, verts, info)| (verts, *info, self.index.has_star(id)))
            .collect();
        subgraphs.sort_unstable_by(|x, y| x.0.cmp(&y.0));
        put_u64(&mut buf, subgraphs.len() as u64);
        for (verts, info, star) in subgraphs {
            put_u32(&mut buf, verts.len() as u32);
            for v in verts.iter() {
                put_u32(&mut buf, v.0);
            }
            put_f64(&mut buf, info.score);
            put_u64(&mut buf, info.discovered_epoch);
            put_u32(&mut buf, info.discovered_iteration);
            buf.push(star as u8);
        }

        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    /// Reconstructs an engine from a snapshot produced by
    /// [`snapshot`](Self::snapshot).
    ///
    /// The density measure is supplied by the caller (it is a zero-state
    /// strategy type, not data). The restored engine is bit-identical to the
    /// snapshotted one: graph weights, index scores, discovery metadata,
    /// epoch and statistics all round-trip exactly, so continuing the update
    /// stream from the snapshot point reproduces the uninterrupted run.
    pub fn restore(measure: D, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = dyndens_graph::codec::verify_crc_trailer(bytes)?;
        let mut r = ByteReader::new(payload);
        if r.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        // Config.
        let threshold = r.f64()?;
        let n_max = r.u64()? as usize;
        let delta_it = match r.u8()? {
            DELTA_IT_ABSOLUTE => DeltaIt::Absolute(r.f64()?),
            DELTA_IT_FRACTION => DeltaIt::FractionOfMax(r.f64()?),
            _ => return Err(SnapshotError::Invalid("unknown delta_it tag")),
        };
        let flags = r.u8()?;
        let config = DynDensConfig {
            threshold,
            n_max,
            delta_it,
            implicit_too_dense: flags & FLAG_IMPLICIT_TOO_DENSE != 0,
            max_explore: flags & FLAG_MAX_EXPLORE != 0,
            degree_prioritize: flags & FLAG_DEGREE_PRIORITIZE != 0,
        };

        // Threshold family (current parameters). Validate before handing the
        // values to the asserting constructor.
        let fam_threshold = r.f64()?;
        let fam_delta_it = r.f64()?;
        if n_max < 2 {
            return Err(SnapshotError::Invalid("n_max below 2"));
        }
        if !(fam_threshold.is_finite() && fam_threshold > 0.0) {
            return Err(SnapshotError::Invalid("non-positive output threshold"));
        }
        let delta_it_max = ThresholdFamily::delta_it_upper_bound(&measure, fam_threshold, n_max);
        if !(fam_delta_it > 0.0 && fam_delta_it <= delta_it_max) {
            return Err(SnapshotError::Invalid("delta_it outside validity interval"));
        }
        let thresholds = ThresholdFamily::new(measure, fam_threshold, n_max, fam_delta_it);

        let epoch = r.u64()?;

        let mut stats = EngineStats::default();
        // Same destructuring discipline as the writer.
        {
            let EngineStats {
                updates,
                positive_updates,
                negative_updates,
                explorations,
                cheap_explorations,
                candidates_examined,
                subgraphs_inserted,
                subgraphs_evicted,
                explore_all_invocations,
                star_markers_created,
                star_markers_removed,
                max_explore_skips,
                degree_prioritize_skips,
            } = &mut stats;
            for counter in [
                updates,
                positive_updates,
                negative_updates,
                explorations,
                cheap_explorations,
                candidates_examined,
                subgraphs_inserted,
                subgraphs_evicted,
                explore_all_invocations,
                star_markers_created,
                star_markers_removed,
                max_explore_skips,
                degree_prioritize_skips,
            ] {
                *counter = r.u64()?;
            }
        }

        // Graph.
        let vertex_count = r.u64()? as usize;
        let edge_count = r.u64()? as usize;
        if edge_count > r.remaining() / 16 {
            return Err(SnapshotError::Invalid("edge count exceeds payload"));
        }
        let mut graph = DynamicGraph::with_vertices(vertex_count);
        for _ in 0..edge_count {
            let a = VertexId(r.u32()?);
            let b = VertexId(r.u32()?);
            let w = r.f64()?;
            if a >= b {
                return Err(SnapshotError::Invalid("edge endpoints not ascending"));
            }
            if !w.is_finite() {
                return Err(SnapshotError::Invalid("non-finite edge weight"));
            }
            graph.set_weight(a, b, w);
        }

        // Index.
        let subgraph_count = r.u64()? as usize;
        if subgraph_count > r.remaining() / (4 + 8 + 8 + 8 + 4 + 1) {
            return Err(SnapshotError::Invalid("subgraph count exceeds payload"));
        }
        let mut index = SubgraphIndex::new();
        let mut verts: Vec<VertexId> = Vec::new();
        for _ in 0..subgraph_count {
            let card = r.u32()? as usize;
            if card < 2 {
                return Err(SnapshotError::Invalid("subgraph cardinality below 2"));
            }
            verts.clear();
            for _ in 0..card {
                verts.push(VertexId(r.u32()?));
            }
            if !verts.windows(2).all(|w| w[0] < w[1]) {
                return Err(SnapshotError::Invalid("subgraph vertices not sorted"));
            }
            let score = r.f64()?;
            let discovered_epoch = r.u64()?;
            let discovered_iteration = r.u32()?;
            let star = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Invalid("bad star flag")),
            };
            let id = index.insert(
                &verts,
                SubgraphInfo {
                    score,
                    discovered_epoch,
                    discovered_iteration,
                },
            );
            if star {
                index.set_star(id, true);
            }
        }

        if !r.is_empty() {
            return Err(SnapshotError::Invalid("trailing bytes after index"));
        }

        Ok(DynDens {
            graph,
            thresholds,
            config,
            index,
            epoch,
            stats,
            recovering: false,
            order_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;
    use dyndens_graph::EdgeUpdate;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn busy_engine() -> DynDens<AvgWeight> {
        let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let mut engine = DynDens::new(AvgWeight, config);
        for u in [
            update(0, 2, 1.0),
            update(0, 3, 1.0),
            update(2, 3, 1.0),
            update(1, 3, 1.0),
            update(1, 2, 1.1),
            update(0, 1, 0.95),
            update(5, 6, 10.0), // too-dense pair: exercises * markers
            update(0, 2, -0.3),
        ] {
            engine.apply_update(u);
        }
        engine
    }

    fn assert_bit_identical(a: &DynDens<AvgWeight>, b: &DynDens<AvgWeight>) {
        let key = |e: &DynDens<AvgWeight>| {
            let mut v: Vec<(VertexSet, u64)> = e
                .dense_subgraphs()
                .into_iter()
                .map(|(s, score)| (s, score.to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(a), key(b));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.index().star_count(), b.index().star_count());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn snapshot_restore_round_trips_bit_exactly() {
        let engine = busy_engine();
        let bytes = engine.snapshot();
        let restored = DynDens::restore(AvgWeight, &bytes).unwrap();
        restored.validate().unwrap();
        assert_bit_identical(&engine, &restored);
        assert_eq!(restored.epoch, engine.epoch);
        assert_eq!(restored.config(), engine.config());
        // Snapshotting the restored engine reproduces the bytes exactly.
        assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn replay_after_restore_matches_uninterrupted_run() {
        let mut original = busy_engine();
        let bytes = original.snapshot();
        let mut restored = DynDens::restore(AvgWeight, &bytes).unwrap();

        let tail = [
            update(0, 1, 0.15),
            update(2, 4, 1.3),
            update(5, 6, -6.0), // shrink the * coverage radius
            update(1, 3, -0.4),
            update(4, 2, 0.2),
        ];
        for u in tail {
            original.apply_update(u);
            restored.apply_update(u);
        }
        original.validate().unwrap();
        restored.validate().unwrap();
        assert_bit_identical(&original, &restored);
        // Continued snapshots agree byte-for-byte as well.
        assert_eq!(original.snapshot(), restored.snapshot());
    }

    #[test]
    fn recovering_flag_suppresses_stats_but_not_state() {
        let mut engine = busy_engine();
        let stats_before = engine.stats().clone();
        engine.set_recovering(true);
        assert!(engine.is_recovering());
        engine.apply_update(update(0, 1, 0.15));
        assert_eq!(engine.stats(), &stats_before, "replay must not count");
        engine.set_recovering(false);

        // The maintenance state still moved: an uninterrupted engine that
        // counted the update agrees on the dense set.
        let mut reference = busy_engine();
        reference.apply_update(update(0, 1, 0.15));
        let mut a = engine.dense_subgraphs();
        let mut b = reference.dense_subgraphs();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, b);
        // And counting resumes once the flag is cleared.
        engine.apply_update(update(0, 1, 0.01));
        assert_eq!(engine.stats().updates, stats_before.updates + 1);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_cleanly() {
        let engine = busy_engine();
        let bytes = engine.snapshot();

        // Truncation at every prefix length: never a panic.
        for cut in 0..bytes.len() {
            assert!(DynDens::<AvgWeight>::restore(AvgWeight, &bytes[..cut]).is_err());
        }
        // Single-byte corruption is caught by the CRC.
        for pos in [0, 4, 8, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xFF;
            assert!(
                DynDens::<AvgWeight>::restore(AvgWeight, &bad).is_err(),
                "flip at {pos} must be detected"
            );
        }
        // Version from the future.
        let mut future = bytes.clone();
        future[4] = 0xFE;
        let truncated = future.len() - 4;
        future.truncate(truncated);
        let crc = crc32(&future);
        put_u32(&mut future, crc);
        assert!(matches!(
            DynDens::<AvgWeight>::restore(AvgWeight, &future),
            Err(SnapshotError::UnsupportedVersion(0xFE))
        ));
    }

    #[test]
    fn partition_preserves_union_and_future_evolution() {
        // Two vertex-disjoint cliques, one on even ids, one on odd ids: the
        // partition by id parity must reproduce, bit for bit, the engines
        // that only ever saw their own clique's updates.
        let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let even = [
            update(0, 2, 1.1),
            update(0, 4, 1.2),
            update(2, 4, 1.05),
            update(0, 2, -0.2),
        ];
        let odd = [update(1, 3, 1.3), update(1, 5, 0.9), update(3, 5, 1.0)];
        let mut parent = DynDens::new(AvgWeight, config.clone());
        // Interleave the two communities the way a shared shard would see them.
        for pair in even.iter().zip(odd.iter()) {
            parent.apply_update(*pair.0);
            parent.apply_update(*pair.1);
        }
        parent.apply_update(even[3]);

        let (mut zero, one) = parent.partition_by(|v| v.0 % 2 == 0);
        zero.validate().unwrap();
        one.validate().unwrap();

        // The split point: the union of the children equals the parent.
        let mut union: Vec<(VertexSet, u64)> = zero
            .dense_subgraphs()
            .into_iter()
            .chain(one.dense_subgraphs())
            .map(|(s, d)| (s, d.to_bits()))
            .collect();
        union.sort();
        let mut want: Vec<(VertexSet, u64)> = parent
            .dense_subgraphs()
            .into_iter()
            .map(|(s, d)| (s, d.to_bits()))
            .collect();
        want.sort();
        assert_eq!(union, want);
        assert_eq!(zero.epoch, parent.epoch);
        assert_eq!(one.epoch, parent.epoch);
        assert_eq!(
            zero.stats().updates,
            0,
            "children start with a clean ledger"
        );

        // Future evolution: each child continues exactly like a reference
        // engine that only ever ingested its own slice.
        let mut ref_even = DynDens::new(AvgWeight, config.clone());
        for u in even {
            ref_even.apply_update(u);
        }
        let tail = [update(2, 4, -0.3), update(0, 6, 1.4), update(4, 6, 1.15)];
        for u in tail {
            zero.apply_update(u);
            ref_even.apply_update(u);
        }
        let key = |e: &DynDens<AvgWeight>| {
            let mut v: Vec<(VertexSet, u64)> = e
                .dense_subgraphs()
                .into_iter()
                .map(|(s, d)| (s, d.to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&zero), key(&ref_even));
    }

    #[test]
    fn snapshot_survives_threshold_adjustment() {
        let mut engine = busy_engine();
        // Dynamic threshold adjustment drifts the family away from config.
        engine.thresholds_mut().set_output_threshold(0.9);
        let bytes = engine.snapshot();
        let restored = DynDens::restore(AvgWeight, &bytes).unwrap();
        assert_eq!(
            restored.thresholds().output_threshold().to_bits(),
            engine.thresholds().output_threshold().to_bits()
        );
        assert_eq!(
            restored.thresholds().delta_it().to_bits(),
            engine.thresholds().delta_it().to_bits()
        );
    }
}
